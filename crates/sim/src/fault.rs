//! Microarchitecture-level fault injection — the gem5-MARVEL capability
//! the paper folds into its simulation platform (§5): "supports transient
//! and permanent fault injections to all hardware structures", used for
//! the reliability experiments (E8).
//!
//! A campaign runs a golden (fault-free) execution, then re-runs the same
//! workload once per fault, classifying each outcome as *masked* (same
//! result), *SDC* (silent data corruption: halted but wrong result),
//! *crash* (trap) or *hang* (timeout). Campaigns over guarded workloads
//! (see [`crate::guard`]) additionally split the halted cases by the
//! firmware's own fault record: *detected-recovered* (the guard saw a
//! fault and the result is still correct) and *detected-uncorrected*
//! (the guard saw a fault and the result is wrong — detected, not
//! silent).
//!
//! This module holds the fault model and the basic sequential campaign;
//! the checkpointed, parallel, statistical campaign engine is in
//! [`crate::campaign`].

use crate::guard::GuardRecord;
use crate::system::{RunOutcome, System};
use rand::Rng;

/// Default re-assertion period \[cycles\] for [`FaultKind::Permanent`]
/// faults created without an explicit period (e.g. by [`random_faults`]).
pub const DEFAULT_PERMANENT_PERIOD: u64 = 64;

/// Hardware structure targeted by a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// Main memory data word (absolute address).
    Dram {
        /// Word-aligned absolute address.
        addr: u32,
    },
    /// Scratchpad data word (absolute address).
    Spm {
        /// Word-aligned absolute address.
        addr: u32,
    },
    /// CPU architectural register.
    Register {
        /// Register index 1–31. `x0` is hardwired to zero, so injection
        /// into index 0 is a guaranteed no-op at the fault layer, and
        /// out-of-range indices (≥ 32) are rejected as no-ops rather
        /// than corrupting unrelated state.
        index: u8,
    },
}

/// Fault persistence model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Single bit flip at injection time (SEU).
    Transient,
    /// Bit stuck at one: re-applied every [`Fault::period`] cycles to
    /// emulate a permanent defect under this state-based simulator.
    Permanent,
}

/// One fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Where.
    pub target: FaultTarget,
    /// Which bit (0–31).
    pub bit: u8,
    /// When (cycle at which the fault first manifests).
    pub cycle: u64,
    /// Transient or permanent.
    pub kind: FaultKind,
    /// Re-assertion period \[cycles\] for [`FaultKind::Permanent`]: the
    /// stuck-at value is re-applied at least once every `period` cycles
    /// of the remaining run. Ignored for transient faults. A period of 0
    /// is treated as 1 (re-assert every cycle).
    pub period: u64,
}

impl Fault {
    /// A single-event upset: one bit flip at `cycle`.
    pub fn transient(target: FaultTarget, bit: u8, cycle: u64) -> Self {
        Fault {
            target,
            bit,
            cycle,
            kind: FaultKind::Transient,
            period: 0,
        }
    }

    /// A stuck-at-one defect from `cycle` onward, re-asserted every
    /// `period` cycles (0 is treated as 1).
    pub fn permanent(target: FaultTarget, bit: u8, cycle: u64, period: u64) -> Self {
        Fault {
            target,
            bit,
            cycle,
            kind: FaultKind::Permanent,
            period,
        }
    }
}

/// Outcome classification, following the gem5-MARVEL taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// Execution completed with a correct result.
    Masked,
    /// Execution completed but the result differs (silent data corruption).
    SilentDataCorruption,
    /// The CPU trapped.
    Crash,
    /// The run exceeded its cycle budget.
    Hang,
    /// A guarded run detected the fault and still produced the correct
    /// result (retry, recalibration or software fallback succeeded).
    DetectedRecovered,
    /// A guarded run detected the fault but the result is still wrong —
    /// the corruption is flagged rather than silent.
    DetectedUncorrected,
}

/// Aggregate campaign statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignStats {
    /// Faults whose effect was masked.
    pub masked: usize,
    /// Silent data corruptions.
    pub sdc: usize,
    /// Crashes.
    pub crashes: usize,
    /// Hangs.
    pub hangs: usize,
    /// Guard-detected faults that were fully recovered.
    pub detected_recovered: usize,
    /// Guard-detected faults whose result is still wrong.
    pub detected_uncorrected: usize,
}

impl CampaignStats {
    /// Total injections.
    pub fn total(&self) -> usize {
        self.masked
            + self.sdc
            + self.crashes
            + self.hangs
            + self.detected_recovered
            + self.detected_uncorrected
    }

    /// Fraction of injections with any architecturally visible effect
    /// (an AVF-style number). A detected-and-recovered fault is not an
    /// architecturally visible failure — the program produced the right
    /// answer — but a detected-uncorrected one is.
    pub fn vulnerability(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.sdc + self.crashes + self.hangs + self.detected_uncorrected) as f64 / t as f64
        }
    }

    /// Adds one classified outcome to the tallies.
    pub fn record(&mut self, outcome: FaultOutcome) {
        match outcome {
            FaultOutcome::Masked => self.masked += 1,
            FaultOutcome::SilentDataCorruption => self.sdc += 1,
            FaultOutcome::Crash => self.crashes += 1,
            FaultOutcome::Hang => self.hangs += 1,
            FaultOutcome::DetectedRecovered => self.detected_recovered += 1,
            FaultOutcome::DetectedUncorrected => self.detected_uncorrected += 1,
        }
    }
}

/// A fault-injection campaign over a reproducible workload.
///
/// The workload is described by two closures: `setup` builds a fresh
/// [`System`] with firmware and data loaded; `readout` extracts the
/// result signature from a finished system (compared against the golden
/// run for SDC detection).
/// Both closures are `Sync` so a campaign can be shared by the scoped
/// worker threads of the parallel runner in [`crate::campaign`].
pub struct Campaign<'a> {
    pub(crate) setup: Box<dyn Fn() -> System + Sync + 'a>,
    #[allow(clippy::type_complexity)] // one-off callback signature
    pub(crate) readout: Box<dyn Fn(&System) -> Vec<u32> + Sync + 'a>,
    #[allow(clippy::type_complexity)] // one-off callback signature
    pub(crate) guard: Option<Box<dyn Fn(&System) -> GuardRecord + Sync + 'a>>,
    /// Cycle budget per run.
    pub max_cycles: u64,
}

impl<'a> Campaign<'a> {
    /// Creates a campaign from a workload builder and a result extractor.
    pub fn new<S, R>(setup: S, readout: R, max_cycles: u64) -> Self
    where
        S: Fn() -> System + Sync + 'a,
        R: Fn(&System) -> Vec<u32> + Sync + 'a,
    {
        Campaign {
            setup: Box::new(setup),
            readout: Box::new(readout),
            guard: None,
            max_cycles,
        }
    }

    /// Attaches a guard-record extractor (typically
    /// [`crate::guard::read_guard_record`] over the workload's
    /// [`crate::firmware::DramLayout`]). With a guard attached, halted
    /// runs whose firmware reported detections are classified as
    /// [`FaultOutcome::DetectedRecovered`] (correct result) or
    /// [`FaultOutcome::DetectedUncorrected`] (wrong result) instead of
    /// masked/SDC.
    pub fn with_guard_readout<G>(mut self, guard: G) -> Self
    where
        G: Fn(&System) -> GuardRecord + Sync + 'a,
    {
        self.guard = Some(Box::new(guard));
        self
    }

    /// Runs the golden execution and returns its result signature.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt cleanly — the workload
    /// itself must be correct before faults are injected.
    pub fn golden(&self) -> Vec<u32> {
        let mut sys = (self.setup)();
        let report = sys.run(self.max_cycles);
        assert!(
            matches!(report.outcome, RunOutcome::Halted(_)),
            "golden run must halt, got {:?}",
            report.outcome
        );
        if let Some(guard) = &self.guard {
            let rec = guard(&sys);
            assert!(
                !rec.detected(),
                "golden run must be guard-clean, got {rec:?}"
            );
        }
        (self.readout)(&sys)
    }

    /// Injects one fault and classifies the outcome.
    pub fn inject(&self, fault: Fault, golden: &[u32]) -> FaultOutcome {
        let mut sys = (self.setup)();
        // Run up to the injection cycle.
        let pre = sys.run_cycles_bounded(fault.cycle, self.max_cycles);
        if let Some(outcome) = pre {
            // Finished before the fault hit: it can only be masked.
            return self.classify(&sys, outcome, golden);
        }
        self.finish_with_fault(&mut sys, fault, golden)
    }

    /// Maps a final [`RunOutcome`] to the campaign taxonomy, comparing
    /// the readout signature against the golden one for SDC detection.
    pub(crate) fn classify(
        &self,
        sys: &System,
        outcome: RunOutcome,
        golden: &[u32],
    ) -> FaultOutcome {
        match outcome {
            RunOutcome::Halted(_) => {
                let correct = (self.readout)(sys) == golden;
                let detected = self
                    .guard
                    .as_ref()
                    .map(|g| g(sys).detected())
                    .unwrap_or(false);
                match (correct, detected) {
                    (true, false) => FaultOutcome::Masked,
                    (true, true) => FaultOutcome::DetectedRecovered,
                    (false, true) => FaultOutcome::DetectedUncorrected,
                    (false, false) => FaultOutcome::SilentDataCorruption,
                }
            }
            RunOutcome::Trapped(_) => FaultOutcome::Crash,
            RunOutcome::TimedOut => FaultOutcome::Hang,
        }
    }

    /// Applies `fault` to a system already advanced to the injection
    /// point and runs to completion. Shared by the sequential
    /// [`Campaign::inject`] and the checkpointed engine so both follow a
    /// bit-identical code path after the fault lands.
    pub(crate) fn finish_with_fault(
        &self,
        sys: &mut System,
        fault: Fault,
        golden: &[u32],
    ) -> FaultOutcome {
        apply_fault(sys, fault);
        let remaining = self.max_cycles.saturating_sub(fault.cycle).max(1);
        let mut budget = remaining;
        let outcome = loop {
            if fault.kind == FaultKind::Permanent {
                apply_stuck(sys, fault);
            }
            let chunk = match fault.kind {
                FaultKind::Permanent => fault.period.max(1).min(budget),
                FaultKind::Transient => budget,
            };
            let report = sys.run(chunk);
            match report.outcome {
                RunOutcome::TimedOut => {
                    budget = budget.saturating_sub(chunk);
                    if budget == 0 {
                        break RunOutcome::TimedOut;
                    }
                }
                other => break other,
            }
        };
        self.classify(sys, outcome, golden)
    }

    /// Runs a whole campaign of `faults`, returning per-fault outcomes and
    /// aggregate statistics.
    pub fn run(&self, faults: &[Fault]) -> (Vec<FaultOutcome>, CampaignStats) {
        let golden = self.golden();
        let mut stats = CampaignStats::default();
        let outcomes: Vec<FaultOutcome> = faults
            .iter()
            .map(|&f| {
                let o = self.inject(f, &golden);
                stats.record(o);
                o
            })
            .collect();
        (outcomes, stats)
    }
}

/// Generates `count` random faults over the given targets.
pub fn random_faults<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    kind: FaultKind,
    max_cycle: u64,
    targets: &[FaultTarget],
) -> Vec<Fault> {
    (0..count)
        .map(|_| Fault {
            target: targets[rng.gen_range(0..targets.len())],
            bit: rng.gen_range(0..32),
            cycle: rng.gen_range(0..max_cycle.max(1)),
            kind,
            period: DEFAULT_PERMANENT_PERIOD,
        })
        .collect()
}

/// `true` when a register fault target can actually disturb state:
/// `x0` is hardwired to zero and indices ≥ 32 do not exist, so both are
/// no-ops at the fault layer (never a panic, never collateral damage).
fn register_index_effective(index: u8) -> bool {
    (1..32).contains(&index)
}

pub(crate) fn apply_fault(sys: &mut System, fault: Fault) {
    match fault.target {
        FaultTarget::Dram { addr } => {
            let _ = sys.platform.dram.flip_bit(addr, fault.bit);
        }
        FaultTarget::Spm { addr } => {
            let _ = sys.platform.spm.flip_bit(addr, fault.bit);
        }
        FaultTarget::Register { index } => {
            if register_index_effective(index) {
                let v = sys.cpu.reg(index);
                sys.cpu.set_reg(index, v ^ (1 << (fault.bit & 31)));
            }
        }
    }
}

pub(crate) fn apply_stuck(sys: &mut System, fault: Fault) {
    // Stuck-at-one on the chosen bit, re-asserted periodically.
    match fault.target {
        FaultTarget::Dram { addr } => {
            if let Ok(v) = sys.platform.dram.peek(addr) {
                let _ = sys.platform.dram.poke(addr, v | (1 << (fault.bit & 31)));
            }
        }
        FaultTarget::Spm { addr } => {
            if let Ok(v) = sys.platform.spm.peek(addr) {
                let _ = sys.platform.spm.poke(addr, v | (1 << (fault.bit & 31)));
            }
        }
        FaultTarget::Register { index } => {
            if register_index_effective(index) {
                let v = sys.cpu.reg(index);
                sys.cpu.set_reg(index, v | (1 << (fault.bit & 31)));
            }
        }
    }
}

impl System {
    /// Runs for exactly `cycles` (bounded by `max`), returning the final
    /// outcome if the program ended early, else `None`.
    pub fn run_cycles_bounded(&mut self, cycles: u64, max: u64) -> Option<RunOutcome> {
        let budget = cycles.min(max);
        if budget == 0 {
            return None;
        }
        let report = self.run(budget);
        match report.outcome {
            RunOutcome::TimedOut => None,
            other => Some(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::{software_mvm, DramLayout};
    use neuropulsim_linalg::RMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> Campaign<'static> {
        let layout = DramLayout::default();
        let n = 3;
        Campaign::new(
            move || {
                let mut sys = System::new();
                let w = RMatrix::identity(n);
                let flat: Vec<f64> = w.as_slice().to_vec();
                sys.write_fixed_vector(layout.w_addr, &flat);
                sys.write_fixed_vector(layout.x_addr, &[1.0, 2.0, 3.0]);
                sys.load_firmware_source(&software_mvm(n, 1, layout));
                sys
            },
            move |sys| {
                (0..n)
                    .map(|k| {
                        sys.platform
                            .dram
                            .peek(layout.y_addr + 4 * k as u32)
                            .unwrap_or(0)
                    })
                    .collect()
            },
            1_000_000,
        )
    }

    #[test]
    fn golden_run_is_correct() {
        let c = workload();
        let golden = c.golden();
        assert_eq!(golden.len(), 3);
        assert_eq!(golden[0], crate::fixed::to_fixed(1.0) as u32);
    }

    #[test]
    fn fault_in_input_vector_is_sdc() {
        let c = workload();
        let golden = c.golden();
        // Flip a magnitude bit of x[0] before the program reads it.
        let fault = Fault::transient(
            FaultTarget::Dram {
                addr: DramLayout::default().x_addr,
            },
            18,
            1,
        );
        let outcome = c.inject(fault, &golden);
        assert_eq!(outcome, FaultOutcome::SilentDataCorruption);
    }

    #[test]
    fn fault_in_unused_memory_is_masked() {
        let c = workload();
        let golden = c.golden();
        let fault = Fault::transient(FaultTarget::Dram { addr: 0x003F_0000 }, 5, 10);
        assert_eq!(c.inject(fault, &golden), FaultOutcome::Masked);
    }

    #[test]
    fn campaign_statistics_accumulate() {
        let c = workload();
        let mut rng = StdRng::seed_from_u64(1);
        let layout = DramLayout::default();
        let targets: Vec<FaultTarget> = (0..8)
            .map(|k| FaultTarget::Dram {
                addr: layout.w_addr + 4 * k,
            })
            .chain((1..8).map(|r| FaultTarget::Register { index: r }))
            .collect();
        let faults = random_faults(&mut rng, 12, FaultKind::Transient, 500, &targets);
        let (outcomes, stats) = c.run(&faults);
        assert_eq!(outcomes.len(), 12);
        assert_eq!(stats.total(), 12);
        assert!(stats.vulnerability() <= 1.0);
    }

    #[test]
    fn weight_bit_flips_cause_sdc_more_than_masking_high_bits() {
        // Flipping a high bit of a weight early corrupts the result.
        let c = workload();
        let golden = c.golden();
        let fault = Fault::transient(
            FaultTarget::Dram {
                addr: DramLayout::default().w_addr, // W[0][0]
            },
            18, // magnitude bits of Q16.16
            5,
        );
        assert_eq!(c.inject(fault, &golden), FaultOutcome::SilentDataCorruption);
    }

    #[test]
    fn low_bit_weight_flip_is_masked_by_quantization_tolerance() {
        // Bit 0 of Q16.16 is 1.5e-5 — the readout signature is exact
        // words, so even this is SDC; but flipping a bit in W *after* the
        // last use is masked. Use a late cycle.
        let c = workload();
        let golden = c.golden();
        let fault = Fault::transient(
            FaultTarget::Dram {
                addr: DramLayout::default().w_addr,
            },
            0,
            999_000, // beyond program end; applied after halt
        );
        assert_eq!(c.inject(fault, &golden), FaultOutcome::Masked);
    }

    #[test]
    fn permanent_register_fault_disrupts_execution() {
        let c = workload();
        let golden = c.golden();
        // Stuck-at-one on a high bit of the accumulator register t1 (x6).
        let fault = Fault::permanent(
            FaultTarget::Register { index: 6 },
            30,
            20,
            DEFAULT_PERMANENT_PERIOD,
        );
        let outcome = c.inject(fault, &golden);
        assert_ne!(
            outcome,
            FaultOutcome::Masked,
            "stuck accumulator bit must matter"
        );
    }

    #[test]
    fn x0_injection_is_a_guaranteed_noop() {
        // x0 is architecturally immune: transient and permanent faults
        // into register index 0 must be no-ops at the fault layer.
        let c = workload();
        let golden = c.golden();
        let target = FaultTarget::Register { index: 0 };
        for bit in [0u8, 15, 31] {
            assert_eq!(
                c.inject(Fault::transient(target, bit, 3), &golden),
                FaultOutcome::Masked
            );
            assert_eq!(
                c.inject(Fault::permanent(target, bit, 3, 16), &golden),
                FaultOutcome::Masked
            );
        }
        // Direct check that the apply layer leaves the CPU untouched.
        let mut sys = (c.setup)();
        let before = sys.cpu.clone();
        apply_fault(&mut sys, Fault::transient(target, 31, 0));
        apply_stuck(&mut sys, Fault::permanent(target, 31, 0, 1));
        assert_eq!(sys.cpu, before);
    }

    #[test]
    fn out_of_range_register_index_is_rejected() {
        // Indices >= 32 used to index straight into the register file
        // and panic; they must now be rejected as no-ops.
        let c = workload();
        let golden = c.golden();
        for index in [32u8, 40, 255] {
            let target = FaultTarget::Register { index };
            assert_eq!(
                c.inject(Fault::transient(target, 7, 2), &golden),
                FaultOutcome::Masked
            );
            assert_eq!(
                c.inject(Fault::permanent(target, 7, 2, 8), &golden),
                FaultOutcome::Masked
            );
        }
    }

    #[test]
    fn permanent_period_controls_reassertion_across_chunks() {
        // Stuck-at-one on bit 0 of y[0], injected before the program
        // writes its result. With a 1-cycle period the defect is
        // re-asserted after the final store and survives to the readout
        // (SDC). With a period longer than the whole run it is asserted
        // once at injection time only, and the final store overwrites it
        // (masked). The golden y[0] is to_fixed(1.0) = 0x10000: bit 0
        // is clear, so a surviving stuck bit is visible.
        let c = workload();
        let golden = c.golden();
        assert_eq!(golden[0] & 1, 0, "test needs a clear bit 0 in golden");
        let target = FaultTarget::Dram {
            addr: DramLayout::default().y_addr,
        };
        assert_eq!(
            c.inject(Fault::permanent(target, 0, 5, 1), &golden),
            FaultOutcome::SilentDataCorruption,
            "1-cycle period must re-assert past the final store"
        );
        assert_eq!(
            c.inject(Fault::permanent(target, 0, 5, c.max_cycles * 2), &golden),
            FaultOutcome::Masked,
            "a period longer than the run asserts only once"
        );
    }

    #[test]
    fn fault_at_or_beyond_cycle_budget_never_lands() {
        // The same x[0] fault that is SDC at cycle 1 can never land when
        // scheduled at or past the campaign cycle budget.
        let c = workload();
        let golden = c.golden();
        let target = FaultTarget::Dram {
            addr: DramLayout::default().x_addr,
        };
        for cycle in [c.max_cycles, c.max_cycles + 123] {
            assert_eq!(
                c.inject(Fault::transient(target, 18, cycle), &golden),
                FaultOutcome::Masked
            );
        }
    }

    #[test]
    fn fault_exactly_on_halt_cycle_is_masked() {
        let c = workload();
        let golden = c.golden();
        let mut sys = (c.setup)();
        let report = sys.run(c.max_cycles);
        assert!(matches!(report.outcome, RunOutcome::Halted(_)));
        let halt_cycle = report.cycles;
        // The program is already done when the fault would land, so even
        // a flip in the live input vector changes nothing.
        let target = FaultTarget::Dram {
            addr: DramLayout::default().x_addr,
        };
        assert_eq!(
            c.inject(Fault::transient(target, 18, halt_cycle), &golden),
            FaultOutcome::Masked
        );
    }

    #[test]
    fn stats_total_equals_sum_of_all_categories() {
        // Satellite: `total()` must stay in sync with every category,
        // including the guarded-taxonomy additions.
        let mut stats = CampaignStats::default();
        let outcomes = [
            (FaultOutcome::Masked, 3),
            (FaultOutcome::SilentDataCorruption, 2),
            (FaultOutcome::Crash, 4),
            (FaultOutcome::Hang, 1),
            (FaultOutcome::DetectedRecovered, 5),
            (FaultOutcome::DetectedUncorrected, 2),
        ];
        for &(o, count) in &outcomes {
            for _ in 0..count {
                stats.record(o);
            }
        }
        let by_category = stats.masked
            + stats.sdc
            + stats.crashes
            + stats.hangs
            + stats.detected_recovered
            + stats.detected_uncorrected;
        assert_eq!(stats.total(), by_category);
        assert_eq!(stats.total(), 17);
        assert_eq!(stats.detected_recovered, 5);
        assert_eq!(stats.detected_uncorrected, 2);
        // Recovered detections do not count toward vulnerability;
        // uncorrected ones do.
        let expected_vuln = (2 + 4 + 1 + 2) as f64 / 17.0;
        assert!((stats.vulnerability() - expected_vuln).abs() < 1e-12);
    }

    #[test]
    fn guard_readout_reclassifies_halted_outcomes() {
        // A campaign with a guard attached splits halted runs four ways.
        // Use a synthetic guard that reads a DRAM flag the fault flips.
        let layout = DramLayout::default();
        let flag_addr = 0x003E_0000;
        let c = workload().with_guard_readout(move |sys: &System| GuardRecord {
            detections: sys.platform.dram.peek(flag_addr).unwrap_or(0),
            ..GuardRecord::default()
        });
        let golden = c.golden();
        // Flag raised, result untouched: detected + correct.
        let detect_only = Fault::transient(FaultTarget::Dram { addr: flag_addr }, 0, 1);
        assert_eq!(
            c.inject(detect_only, &golden),
            FaultOutcome::DetectedRecovered
        );
        // Result corrupted without the flag: silent corruption.
        let silent = Fault::transient(
            FaultTarget::Dram {
                addr: layout.x_addr,
            },
            18,
            1,
        );
        assert_eq!(
            c.inject(silent, &golden),
            FaultOutcome::SilentDataCorruption
        );
    }

    #[test]
    fn random_fault_generator_respects_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let targets = [FaultTarget::Register { index: 1 }];
        let faults = random_faults(&mut rng, 50, FaultKind::Transient, 100, &targets);
        assert_eq!(faults.len(), 50);
        for f in faults {
            assert!(f.bit < 32);
            assert!(f.cycle < 100);
            assert_eq!(f.period, DEFAULT_PERMANENT_PERIOD);
        }
    }
}

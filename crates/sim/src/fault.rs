//! Microarchitecture-level fault injection — the gem5-MARVEL capability
//! the paper folds into its simulation platform (§5): "supports transient
//! and permanent fault injections to all hardware structures", used for
//! the reliability experiments (E8).
//!
//! A campaign runs a golden (fault-free) execution, then re-runs the same
//! workload once per fault, classifying each outcome as *masked* (same
//! result), *SDC* (silent data corruption: halted but wrong result),
//! *crash* (trap) or *hang* (timeout).

use crate::system::{RunOutcome, System};
use rand::Rng;

/// Hardware structure targeted by a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// Main memory data word (absolute address).
    Dram {
        /// Word-aligned absolute address.
        addr: u32,
    },
    /// Scratchpad data word (absolute address).
    Spm {
        /// Word-aligned absolute address.
        addr: u32,
    },
    /// CPU architectural register.
    Register {
        /// Register index 1–31 (x0 is immune).
        index: u8,
    },
}

/// Fault persistence model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Single bit flip at injection time (SEU).
    Transient,
    /// Bit stuck at the flipped value: re-applied every `period` cycles to
    /// emulate a permanent defect under this state-based simulator.
    Permanent,
}

/// One fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Where.
    pub target: FaultTarget,
    /// Which bit (0–31).
    pub bit: u8,
    /// When (cycle at which the fault first manifests).
    pub cycle: u64,
    /// Transient or permanent.
    pub kind: FaultKind,
}

/// Outcome classification, following the gem5-MARVEL taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// Execution completed with a correct result.
    Masked,
    /// Execution completed but the result differs (silent data corruption).
    SilentDataCorruption,
    /// The CPU trapped.
    Crash,
    /// The run exceeded its cycle budget.
    Hang,
}

/// Aggregate campaign statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignStats {
    /// Faults whose effect was masked.
    pub masked: usize,
    /// Silent data corruptions.
    pub sdc: usize,
    /// Crashes.
    pub crashes: usize,
    /// Hangs.
    pub hangs: usize,
}

impl CampaignStats {
    /// Total injections.
    pub fn total(&self) -> usize {
        self.masked + self.sdc + self.crashes + self.hangs
    }

    /// Fraction of injections with any architecturally visible effect
    /// (an AVF-style number).
    pub fn vulnerability(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.sdc + self.crashes + self.hangs) as f64 / t as f64
        }
    }

    fn record(&mut self, outcome: FaultOutcome) {
        match outcome {
            FaultOutcome::Masked => self.masked += 1,
            FaultOutcome::SilentDataCorruption => self.sdc += 1,
            FaultOutcome::Crash => self.crashes += 1,
            FaultOutcome::Hang => self.hangs += 1,
        }
    }
}

/// A fault-injection campaign over a reproducible workload.
///
/// The workload is described by two closures: `setup` builds a fresh
/// [`System`] with firmware and data loaded; `readout` extracts the
/// result signature from a finished system (compared against the golden
/// run for SDC detection).
pub struct Campaign<'a> {
    setup: Box<dyn Fn() -> System + 'a>,
    #[allow(clippy::type_complexity)] // one-off callback signature
    readout: Box<dyn Fn(&System) -> Vec<u32> + 'a>,
    /// Cycle budget per run.
    pub max_cycles: u64,
}

impl<'a> Campaign<'a> {
    /// Creates a campaign from a workload builder and a result extractor.
    pub fn new<S, R>(setup: S, readout: R, max_cycles: u64) -> Self
    where
        S: Fn() -> System + 'a,
        R: Fn(&System) -> Vec<u32> + 'a,
    {
        Campaign {
            setup: Box::new(setup),
            readout: Box::new(readout),
            max_cycles,
        }
    }

    /// Runs the golden execution and returns its result signature.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt cleanly — the workload
    /// itself must be correct before faults are injected.
    pub fn golden(&self) -> Vec<u32> {
        let mut sys = (self.setup)();
        let report = sys.run(self.max_cycles);
        assert!(
            matches!(report.outcome, RunOutcome::Halted(_)),
            "golden run must halt, got {:?}",
            report.outcome
        );
        (self.readout)(&sys)
    }

    /// Injects one fault and classifies the outcome.
    pub fn inject(&self, fault: Fault, golden: &[u32]) -> FaultOutcome {
        let mut sys = (self.setup)();
        // Run up to the injection cycle.
        let pre = sys.run_cycles_bounded(fault.cycle, self.max_cycles);
        if let Some(outcome) = pre {
            // Finished before the fault hit: it can only be masked.
            return match outcome {
                RunOutcome::Halted(_) => {
                    if (self.readout)(&sys) == golden {
                        FaultOutcome::Masked
                    } else {
                        FaultOutcome::SilentDataCorruption
                    }
                }
                RunOutcome::Trapped(_) => FaultOutcome::Crash,
                RunOutcome::TimedOut => FaultOutcome::Hang,
            };
        }
        apply_fault(&mut sys, fault);
        let remaining = self.max_cycles.saturating_sub(fault.cycle).max(1);
        let mut budget = remaining;
        let outcome = loop {
            if fault.kind == FaultKind::Permanent {
                apply_stuck(&mut sys, fault);
            }
            let chunk = match fault.kind {
                FaultKind::Permanent => 64.min(budget),
                FaultKind::Transient => budget,
            };
            let report = sys.run(chunk);
            match report.outcome {
                RunOutcome::TimedOut => {
                    budget = budget.saturating_sub(chunk);
                    if budget == 0 {
                        break RunOutcome::TimedOut;
                    }
                }
                other => break other,
            }
        };
        match outcome {
            RunOutcome::Halted(_) => {
                if (self.readout)(&sys) == golden {
                    FaultOutcome::Masked
                } else {
                    FaultOutcome::SilentDataCorruption
                }
            }
            RunOutcome::Trapped(_) => FaultOutcome::Crash,
            RunOutcome::TimedOut => FaultOutcome::Hang,
        }
    }

    /// Runs a whole campaign of `faults`, returning per-fault outcomes and
    /// aggregate statistics.
    pub fn run(&self, faults: &[Fault]) -> (Vec<FaultOutcome>, CampaignStats) {
        let golden = self.golden();
        let mut stats = CampaignStats::default();
        let outcomes: Vec<FaultOutcome> = faults
            .iter()
            .map(|&f| {
                let o = self.inject(f, &golden);
                stats.record(o);
                o
            })
            .collect();
        (outcomes, stats)
    }
}

/// Generates `count` random faults over the given targets.
pub fn random_faults<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    kind: FaultKind,
    max_cycle: u64,
    targets: &[FaultTarget],
) -> Vec<Fault> {
    (0..count)
        .map(|_| Fault {
            target: targets[rng.gen_range(0..targets.len())],
            bit: rng.gen_range(0..32),
            cycle: rng.gen_range(0..max_cycle.max(1)),
            kind,
        })
        .collect()
}

fn apply_fault(sys: &mut System, fault: Fault) {
    match fault.target {
        FaultTarget::Dram { addr } => {
            let _ = sys.platform.dram.flip_bit(addr, fault.bit);
        }
        FaultTarget::Spm { addr } => {
            let _ = sys.platform.spm.flip_bit(addr, fault.bit);
        }
        FaultTarget::Register { index } => {
            let v = sys.cpu.reg(index);
            sys.cpu.set_reg(index, v ^ (1 << (fault.bit & 31)));
        }
    }
}

fn apply_stuck(sys: &mut System, fault: Fault) {
    // Stuck-at-one on the chosen bit, re-asserted periodically.
    match fault.target {
        FaultTarget::Dram { addr } => {
            if let Ok(v) = sys.platform.dram.peek(addr) {
                let _ = sys.platform.dram.poke(addr, v | (1 << (fault.bit & 31)));
            }
        }
        FaultTarget::Spm { addr } => {
            if let Ok(v) = sys.platform.spm.peek(addr) {
                let _ = sys.platform.spm.poke(addr, v | (1 << (fault.bit & 31)));
            }
        }
        FaultTarget::Register { index } => {
            let v = sys.cpu.reg(index);
            sys.cpu.set_reg(index, v | (1 << (fault.bit & 31)));
        }
    }
}

impl System {
    /// Runs for exactly `cycles` (bounded by `max`), returning the final
    /// outcome if the program ended early, else `None`.
    pub fn run_cycles_bounded(&mut self, cycles: u64, max: u64) -> Option<RunOutcome> {
        let budget = cycles.min(max);
        if budget == 0 {
            return None;
        }
        let report = self.run(budget);
        match report.outcome {
            RunOutcome::TimedOut => None,
            other => Some(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::{software_mvm, DramLayout};
    use neuropulsim_linalg::RMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> Campaign<'static> {
        let layout = DramLayout::default();
        let n = 3;
        Campaign::new(
            move || {
                let mut sys = System::new();
                let w = RMatrix::identity(n);
                let flat: Vec<f64> = w.as_slice().to_vec();
                sys.write_fixed_vector(layout.w_addr, &flat);
                sys.write_fixed_vector(layout.x_addr, &[1.0, 2.0, 3.0]);
                sys.load_firmware_source(&software_mvm(n, 1, layout));
                sys
            },
            move |sys| {
                (0..n)
                    .map(|k| {
                        sys.platform
                            .dram
                            .peek(layout.y_addr + 4 * k as u32)
                            .unwrap_or(0)
                    })
                    .collect()
            },
            1_000_000,
        )
    }

    #[test]
    fn golden_run_is_correct() {
        let c = workload();
        let golden = c.golden();
        assert_eq!(golden.len(), 3);
        assert_eq!(golden[0], crate::fixed::to_fixed(1.0) as u32);
    }

    #[test]
    fn fault_in_input_vector_is_sdc() {
        let c = workload();
        let golden = c.golden();
        // Flip a magnitude bit of x[0] before the program reads it.
        let fault = Fault {
            target: FaultTarget::Dram {
                addr: DramLayout::default().x_addr,
            },
            bit: 18,
            cycle: 1,
            kind: FaultKind::Transient,
        };
        let outcome = c.inject(fault, &golden);
        assert_eq!(outcome, FaultOutcome::SilentDataCorruption);
    }

    #[test]
    fn fault_in_unused_memory_is_masked() {
        let c = workload();
        let golden = c.golden();
        let fault = Fault {
            target: FaultTarget::Dram { addr: 0x003F_0000 },
            bit: 5,
            cycle: 10,
            kind: FaultKind::Transient,
        };
        assert_eq!(c.inject(fault, &golden), FaultOutcome::Masked);
    }

    #[test]
    fn campaign_statistics_accumulate() {
        let c = workload();
        let mut rng = StdRng::seed_from_u64(1);
        let layout = DramLayout::default();
        let targets: Vec<FaultTarget> = (0..8)
            .map(|k| FaultTarget::Dram {
                addr: layout.w_addr + 4 * k,
            })
            .chain((1..8).map(|r| FaultTarget::Register { index: r }))
            .collect();
        let faults = random_faults(&mut rng, 12, FaultKind::Transient, 500, &targets);
        let (outcomes, stats) = c.run(&faults);
        assert_eq!(outcomes.len(), 12);
        assert_eq!(stats.total(), 12);
        assert!(stats.vulnerability() <= 1.0);
    }

    #[test]
    fn weight_bit_flips_cause_sdc_more_than_masking_high_bits() {
        // Flipping a high bit of a weight early corrupts the result.
        let c = workload();
        let golden = c.golden();
        let fault = Fault {
            target: FaultTarget::Dram {
                addr: DramLayout::default().w_addr, // W[0][0]
            },
            bit: 18, // magnitude bits of Q16.16
            cycle: 5,
            kind: FaultKind::Transient,
        };
        assert_eq!(c.inject(fault, &golden), FaultOutcome::SilentDataCorruption);
    }

    #[test]
    fn low_bit_weight_flip_is_masked_by_quantization_tolerance() {
        // Bit 0 of Q16.16 is 1.5e-5 — the readout signature is exact
        // words, so even this is SDC; but flipping a bit in W *after* the
        // last use is masked. Use a late cycle.
        let c = workload();
        let golden = c.golden();
        let fault = Fault {
            target: FaultTarget::Dram {
                addr: DramLayout::default().w_addr,
            },
            bit: 0,
            cycle: 999_000, // beyond program end; applied after halt
            kind: FaultKind::Transient,
        };
        assert_eq!(c.inject(fault, &golden), FaultOutcome::Masked);
    }

    #[test]
    fn permanent_register_fault_disrupts_execution() {
        let c = workload();
        let golden = c.golden();
        // Stuck-at-one on a high bit of the accumulator register t1 (x6).
        let fault = Fault {
            target: FaultTarget::Register { index: 6 },
            bit: 30,
            cycle: 20,
            kind: FaultKind::Permanent,
        };
        let outcome = c.inject(fault, &golden);
        assert_ne!(
            outcome,
            FaultOutcome::Masked,
            "stuck accumulator bit must matter"
        );
    }

    #[test]
    fn random_fault_generator_respects_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let targets = [FaultTarget::Register { index: 1 }];
        let faults = random_faults(&mut rng, 50, FaultKind::Transient, 100, &targets);
        assert_eq!(faults.len(), 50);
        for f in faults {
            assert!(f.bit < 32);
            assert!(f.cycle < 100);
        }
    }
}

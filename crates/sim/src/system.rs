//! The full-system platform of the paper's Fig. 3: a RISC-V host CPU, a
//! DRAM main memory, a scratchpad, a DMA engine and the memory-mapped
//! photonic accelerator, glued by a bus and level-triggered interrupt
//! lines.
//!
//! Memory map:
//!
//! | region      | base          | size    |
//! |-------------|---------------|---------|
//! | DRAM        | `0x0000_0000` | 4 MiB   |
//! | SPM         | `0x1000_0000` | 256 KiB |
//! | Accel MMRs  | `0x4000_0000` | 0x30    |
//! | DMA MMRs    | `0x4100_0000` | 0x18    |

use crate::accel::AccelDevice;
use crate::cache::DirectMappedCache;
use crate::dma::{DmaDevice, DmaSchedule};
use crate::fixed::{from_fixed, to_fixed};
use crate::ram::Ram;
use neuropulsim_photonics::energy::EnergyLedger;
use neuropulsim_riscv::bus::{Bus, BusFault};
use neuropulsim_riscv::cpu::{Cpu, Halt, Trap};

/// DRAM base address.
pub const DRAM_BASE: u32 = 0x0000_0000;
/// DRAM size in bytes.
pub const DRAM_SIZE: usize = 4 * 1024 * 1024;
/// Scratchpad base address.
pub const SPM_BASE: u32 = 0x1000_0000;
/// Scratchpad size in bytes.
pub const SPM_SIZE: usize = 256 * 1024;
/// Accelerator MMR base address (PE 0).
pub const ACCEL_BASE: u32 = 0x4000_0000;
/// Address stride between processing elements in a cluster.
pub const PE_STRIDE: u32 = 0x1000;
/// DMA MMR base address.
pub const DMA_BASE: u32 = 0x4100_0000;

/// Per-event energy constants of the digital side \[J\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitalEnergy {
    /// CPU energy per retired instruction.
    pub cpu_per_instruction: f64,
    /// DRAM energy per word access.
    pub dram_per_access: f64,
    /// SPM energy per word access.
    pub spm_per_access: f64,
}

impl Default for DigitalEnergy {
    /// 10 pJ/instruction in-order core, 200 pJ/word DRAM, 10 pJ/word SPM.
    fn default() -> Self {
        DigitalEnergy {
            cpu_per_instruction: 10e-12,
            dram_per_access: 200e-12,
            spm_per_access: 10e-12,
        }
    }
}

/// Everything on the bus except the CPU.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Main memory.
    pub dram: Ram,
    /// Scratchpad memory.
    pub spm: Ram,
    /// The photonic MVM accelerator (processing element 0).
    pub accel: AccelDevice,
    /// Additional processing elements in the cluster, mapped at
    /// `ACCEL_BASE + PE_STRIDE * (1 + index)` (paper Fig. 3, right side).
    pub extra_pes: Vec<AccelDevice>,
    /// The DMA engine.
    pub dma: DmaDevice,
    /// Current cycle (synced from the CPU by [`System`]).
    pub now: u64,
    /// DRAM access latency \[cycles\] charged when no cache absorbs it
    /// (0 = the idealized flat-memory model).
    pub dram_latency: u64,
    /// Optional unified L1 cache over DRAM traffic (timing-only).
    pub l1_cache: Option<DirectMappedCache>,
    // pub(crate) so the checkpoint module can capture/restore them.
    pub(crate) stall_cycles: u64,
    pub(crate) accel_irq_enabled: bool,
    pub(crate) extra_irq_enabled: Vec<bool>,
    pub(crate) dma_irq_enabled: bool,
    /// Exclusive end of the current bulk-retire window: the earliest
    /// pending device event (or the budget) when [`System::run`] entered
    /// bulk dispatch. In-span MMIO accesses at `cycles < bulk_until` are
    /// provably inside a no-op device window. Transient scheduler
    /// scratch — set before every span, never snapshotted.
    pub(crate) bulk_until: u64,
}

impl Platform {
    /// Creates the platform with a CPU clock of `cpu_hz`.
    pub fn new(cpu_hz: f64) -> Self {
        Platform {
            dram: Ram::new(DRAM_BASE, DRAM_SIZE),
            spm: Ram::new(SPM_BASE, SPM_SIZE),
            accel: AccelDevice::new(cpu_hz),
            extra_pes: Vec::new(),
            dma: DmaDevice::default(),
            now: 0,
            dram_latency: 0,
            l1_cache: None,
            stall_cycles: 0,
            accel_irq_enabled: false,
            extra_irq_enabled: Vec::new(),
            dma_irq_enabled: false,
            bulk_until: 0,
        }
    }

    /// Adds another processing element to the cluster, returning its MMR
    /// base address.
    pub fn add_pe(&mut self) -> u32 {
        let cpu_hz = self.accel.cpu_hz;
        self.add_pe_with(AccelDevice::new(cpu_hz))
    }

    /// Adds a *pre-configured* processing element — the heterogeneous
    /// fleet hook: the device may carry its own mesh size, WDM channel
    /// count, drift model, and timing parameters. Returns its MMR base
    /// address (`ACCEL_BASE + PE_STRIDE * slot`).
    pub fn add_pe_with(&mut self, device: AccelDevice) -> u32 {
        self.extra_pes.push(device);
        self.extra_irq_enabled.push(false);
        ACCEL_BASE + PE_STRIDE * self.extra_pes.len() as u32
    }

    /// Number of processing elements (PE 0 + extras).
    pub fn pe_count(&self) -> usize {
        1 + self.extra_pes.len()
    }

    /// Shared reference to PE `slot` (0 = the primary accelerator).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= pe_count()`.
    pub fn pe(&self, slot: usize) -> &AccelDevice {
        if slot == 0 {
            &self.accel
        } else {
            &self.extra_pes[slot - 1]
        }
    }

    /// Mutable reference to PE `slot` (0 = the primary accelerator).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= pe_count()`.
    pub fn pe_mut(&mut self, slot: usize) -> &mut AccelDevice {
        if slot == 0 {
            &mut self.accel
        } else {
            &mut self.extra_pes[slot - 1]
        }
    }

    /// Advances all devices one cycle. Returns `true` if any interrupt
    /// line is raised on this cycle.
    pub fn tick(&mut self) -> bool {
        self.now += 1;
        let mut raised = self.accel.tick(self.now);
        for pe in &mut self.extra_pes {
            raised |= pe.tick(self.now);
        }
        raised |= self.dma.tick(&mut self.dram, &mut self.spm);
        raised
    }

    /// Level-triggered interrupt line: high while any enabled device has
    /// an unacknowledged completion. This is what makes the
    /// start-then-`wfi` firmware pattern race-free.
    pub fn irq_level(&self) -> bool {
        (self.accel_irq_enabled && self.accel.is_done())
            || self.accel.error_irq_line()
            || (self.dma_irq_enabled && self.dma.is_done())
            || self
                .extra_pes
                .iter()
                .zip(&self.extra_irq_enabled)
                .any(|(pe, &en)| (en && pe.is_done()) || pe.error_irq_line())
    }

    /// Charges the memory-hierarchy cost of one CPU access to DRAM.
    fn charge_dram(&mut self, addr: u32) {
        if self.dram_latency == 0 {
            return;
        }
        match &mut self.l1_cache {
            Some(cache) => {
                // Cache with its own miss penalty tied to the DRAM latency.
                if cache.access(addr) > 0 {
                    self.stall_cycles += self.dram_latency;
                }
            }
            None => self.stall_cycles += self.dram_latency,
        }
    }

    /// Takes and clears the accumulated stall cycles (consumed by
    /// [`System::run`] after each instruction).
    pub fn take_stalls(&mut self) -> u64 {
        std::mem::take(&mut self.stall_cycles)
    }

    /// `true` when no device has work in flight — every platform tick
    /// would be a no-op.
    pub(crate) fn quiet(&self) -> bool {
        !self.accel.is_busy()
            && !self.dma.is_busy()
            && self.extra_pes.iter().all(|pe| !pe.is_busy())
    }

    /// Earliest pending PE event, clamped to the next tick (`now + 1`):
    /// a zero-setup job can carry `busy_until == now`, but its
    /// completion is still observed on the following tick. Ticks
    /// *strictly before* the returned cycle are provably no-ops for
    /// every PE. `None` when all PEs are idle. (The DMA engine is
    /// deliberately excluded — its ticks move memory words and are
    /// never no-ops.)
    pub(crate) fn earliest_pe_event(&self) -> Option<u64> {
        let mut event: Option<u64> = None;
        let pes = std::iter::once(&self.accel).chain(self.extra_pes.iter());
        for pe in pes {
            if let Some(t) = pe.next_event() {
                let t = t.max(self.now + 1);
                event = Some(event.map_or(t, |cur| cur.min(t)));
            }
        }
        event
    }

    /// Resolves an address to a PE slot (`0` = the primary accelerator).
    fn pe_slot(&self, addr: u32) -> Option<(usize, u32)> {
        if addr < ACCEL_BASE {
            return None;
        }
        let rel = addr - ACCEL_BASE;
        let slot = (rel / PE_STRIDE) as usize;
        if slot < self.pe_count() {
            Some((slot, rel % PE_STRIDE))
        } else {
            None
        }
    }
}

impl Bus for Platform {
    fn load_word(&mut self, addr: u32) -> Result<u32, BusFault> {
        let a = addr & !3;
        if self.dram.contains(a) {
            self.charge_dram(a);
            return self.dram.load(a).map_err(|_| BusFault {
                addr,
                is_store: false,
            });
        }
        if self.spm.contains(a) {
            return self.spm.load(a).map_err(|_| BusFault {
                addr,
                is_store: false,
            });
        }
        if (DMA_BASE..DMA_BASE + crate::dma::mmr::SIZE).contains(&a) {
            return Ok(self.dma.mmr_load(a - DMA_BASE));
        }
        if let Some((slot, offset)) = self.pe_slot(a) {
            return Ok(if slot == 0 {
                self.accel.mmr_load(offset)
            } else {
                self.extra_pes[slot - 1].mmr_load(offset)
            });
        }
        Err(BusFault {
            addr,
            is_store: false,
        })
    }

    fn store_word(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        let a = addr & !3;
        if self.dram.contains(a) {
            self.charge_dram(a);
            return self.dram.store(a, value).map_err(|_| BusFault {
                addr,
                is_store: true,
            });
        }
        if self.spm.contains(a) {
            return self.spm.store(a, value).map_err(|_| BusFault {
                addr,
                is_store: true,
            });
        }
        if (ACCEL_BASE..DMA_BASE).contains(&a) {
            if let Some((slot, offset)) = self.pe_slot(a) {
                if slot == 0 {
                    if offset == crate::accel::mmr::IRQ_ENABLE {
                        self.accel_irq_enabled = value & 1 != 0;
                    }
                    if self.accel.mmr_store(offset, value) {
                        // Doorbell: consume operands, schedule completion.
                        let _ = self.accel.start(self.now, &mut self.spm);
                    }
                    if self.accel.take_recal_request() {
                        self.accel.recalibrate(self.now);
                    }
                } else {
                    if offset == crate::accel::mmr::IRQ_ENABLE {
                        self.extra_irq_enabled[slot - 1] = value & 1 != 0;
                    }
                    if self.extra_pes[slot - 1].mmr_store(offset, value) {
                        let _ = self.extra_pes[slot - 1].start(self.now, &mut self.spm);
                    }
                    if self.extra_pes[slot - 1].take_recal_request() {
                        self.extra_pes[slot - 1].recalibrate(self.now);
                    }
                }
                return Ok(());
            }
            return Err(BusFault {
                addr,
                is_store: true,
            });
        }
        if (DMA_BASE..DMA_BASE + crate::dma::mmr::SIZE).contains(&a) {
            let offset = a - DMA_BASE;
            if offset == crate::dma::mmr::IRQ_ENABLE {
                self.dma_irq_enabled = value & 1 != 0;
            }
            let _ = self.dma.mmr_store(offset, value);
            return Ok(());
        }
        Err(BusFault {
            addr,
            is_store: true,
        })
    }

    fn fetch_word(&mut self, addr: u32) -> Result<u32, BusFault> {
        self.load_word_fast(addr)
    }

    fn peek_word(&self, addr: u32) -> Option<u32> {
        // Side-effect-free: no access counters, no latency charge, no L1
        // state change. MMIO space is uncacheable (`None`).
        let a = addr & !3;
        self.dram.peek_fast(a).or_else(|| self.spm.peek_fast(a))
    }

    fn load_word_fast(&mut self, addr: u32) -> Result<u32, BusFault> {
        let a = addr & !3;
        if self.dram_latency == 0 {
            // Flat-memory model: charge_dram is a no-op, one bounds check.
            if let Some(w) = self.dram.load_fast(a) {
                return Ok(w);
            }
        } else if self.dram.contains(a) {
            self.charge_dram(a);
            return Ok(self.dram.load_fast(a).expect("contains checked"));
        }
        if let Some(w) = self.spm.load_fast(a) {
            return Ok(w);
        }
        // MMIO and faulting addresses take the full dispatch path.
        self.load_word(addr)
    }

    fn store_word_fast(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        let a = addr & !3;
        if self.dram_latency == 0 {
            if self.dram.store_fast(a, value).is_some() {
                return Ok(());
            }
        } else if self.dram.contains(a) {
            self.charge_dram(a);
            self.dram.store_fast(a, value).expect("contains checked");
            return Ok(());
        }
        if self.spm.store_fast(a, value).is_some() {
            return Ok(());
        }
        self.store_word(addr, value)
    }

    fn charge_fetches(&mut self, start: u32, count: u32) -> bool {
        // Only the flat-latency model is bulk-chargeable: a fetch there
        // is one counted RAM read and nothing else. With DRAM latency
        // (and L1 modelling) every fetch has per-access state, so the
        // interpreter must issue real fetches.
        if self.dram_latency != 0 {
            return false;
        }
        let last = start.wrapping_add(4 * count.saturating_sub(1));
        if self.dram.contains(start) && self.dram.contains(last) {
            self.dram.reads += count as u64;
            true
        } else if self.spm.contains(start) && self.spm.contains(last) {
            self.spm.reads += count as u64;
            true
        } else {
            false
        }
    }

    fn mmio_prologue(&mut self, cycles: u64) -> bool {
        // Bulk windows run between device-event horizons, not only under
        // full quiescence: PEs may hold in-flight jobs as long as their
        // earliest event lies at or beyond `bulk_until`, because every
        // device tick strictly before that horizon is a no-op and the
        // clock jump is exact. The DMA engine is the exception (per-tick
        // word movement), so the scheduler never opens a bulk window
        // while it is busy.
        debug_assert!(!self.dma.is_busy(), "bulk window with the DMA active");
        debug_assert!(self.now <= cycles, "device clock ahead of the CPU");
        if cycles >= self.bulk_until {
            return false;
        }
        self.now = cycles;
        true
    }

    fn mmio_epilogue(&mut self) -> bool {
        // Stay in bulk unless this access started device work whose
        // event lands inside the current window (a doorbell), kicked off
        // a DMA transfer, or raised an interrupt.
        if self.dma.is_busy() || self.irq_level() {
            return false;
        }
        self.earliest_pe_event()
            .is_none_or(|event| event >= self.bulk_until)
    }
}

/// Why a [`System`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The firmware finished (`ecall`/`ebreak`).
    Halted(Halt),
    /// The cycle budget was exhausted (possible hang).
    TimedOut,
    /// The CPU trapped (crash).
    Trapped(Trap),
}

/// Statistics of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Total cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Wall-clock time at the CPU clock \[s\].
    pub time_s: f64,
    /// Energy breakdown \[J\].
    pub energy: EnergyLedger,
}

/// The complete system: CPU + platform.
#[derive(Debug, Clone)]
pub struct System {
    /// The RISC-V host.
    pub cpu: Cpu,
    /// Everything else on the bus.
    pub platform: Platform,
    /// CPU clock \[Hz\].
    pub cpu_hz: f64,
    /// Digital energy constants.
    pub digital_energy: DigitalEnergy,
    /// When set (the default), `wfi` sleeps skip straight to the next
    /// device event instead of idling one cycle at a time. Cycle counts
    /// and device state are bit-identical either way; disabling it
    /// reproduces the seed stepping loop for A/B comparison.
    pub wfi_fast_forward: bool,
    /// Sleep cycles crossed in bulk by the `wfi` fast-forward (stats,
    /// accumulated across runs).
    pub fast_forwarded_cycles: u64,
}

impl System {
    /// Creates a 1 GHz system.
    pub fn new() -> Self {
        System::with_clock(1e9)
    }

    /// Creates a system with the given CPU clock.
    pub fn with_clock(cpu_hz: f64) -> Self {
        System {
            cpu: Cpu::new(DRAM_BASE),
            platform: Platform::new(cpu_hz),
            cpu_hz,
            digital_energy: DigitalEnergy::default(),
            wfi_fast_forward: true,
            fast_forwarded_cycles: 0,
        }
    }

    /// Loads firmware words at the reset vector.
    pub fn load_firmware(&mut self, words: &[u32]) {
        self.platform.dram.poke_words(DRAM_BASE, words);
    }

    /// Assembles and loads firmware source.
    ///
    /// # Panics
    ///
    /// Panics on assembly errors (firmware is workspace-internal code).
    pub fn load_firmware_source(&mut self, source: &str) {
        let words = neuropulsim_riscv::asm::assemble(source).expect("firmware must assemble");
        self.load_firmware(&words);
    }

    /// Writes a float vector into DRAM as Q16.16 at `addr`.
    pub fn write_fixed_vector(&mut self, addr: u32, values: &[f64]) {
        for (k, &v) in values.iter().enumerate() {
            self.platform
                .dram
                .poke(addr + 4 * k as u32, to_fixed(v) as u32)
                .expect("vector in DRAM range");
        }
    }

    /// Reads `len` Q16.16 values from DRAM at `addr`.
    pub fn read_fixed_vector(&self, addr: u32, len: usize) -> Vec<f64> {
        (0..len)
            .map(|k| {
                from_fixed(
                    self.platform
                        .dram
                        .peek(addr + 4 * k as u32)
                        .expect("in range") as i32,
                )
            })
            .collect()
    }

    /// Runs until halt, trap or `max_cycles`. Devices advance in lockstep
    /// with CPU cycles; the level-triggered IRQ line wakes `wfi`.
    ///
    /// Two accelerations keep this loop fast without changing a single
    /// observable: instructions dispatch through the decoded-block cache
    /// ([`Cpu::step_cached`]), and `wfi` sleeps across quiet device
    /// windows are crossed in bulk ([`System::wfi_fast_forward`]).
    pub fn run(&mut self, max_cycles: u64) -> RunReport {
        // The host may have rewritten memory since the last run (fault
        // injections, firmware pokes): drop cached decoded code so the
        // bulk path re-reads it.
        self.cpu.invalidate_blocks();
        let start_cycles = self.cpu.cycles;
        let budget_end = start_cycles.saturating_add(max_cycles);
        let spm_end = SPM_BASE + self.platform.spm.size() as u32;
        let outcome = loop {
            if self.cpu.cycles - start_cycles >= max_cycles {
                break RunOutcome::TimedOut;
            }
            if self.platform.irq_level() {
                self.cpu.interrupt();
            }
            if self.wfi_fast_forward
                && self.cpu.waiting_for_interrupt
                && self.platform.now == self.cpu.cycles
            {
                self.sleep_advance(budget_end);
                continue;
            }
            // Bulk retire between device-event horizons: with the DMA
            // idle, every PE tick strictly before the earliest pending
            // event is provably a no-op, so cached instructions (and
            // compiled traces) retire back to back up to that horizon —
            // full quiescence is just the special case with no horizon
            // at all. This is what lets an MMIO polling loop spin in
            // bulk while a PE crunches a job. The DMA engine keeps the
            // per-cycle protocol (its ticks move memory words), as does
            // the DRAM-latency model (each instruction settles its own
            // timing).
            if self.cpu.block_cache_enabled()
                && !self.cpu.waiting_for_interrupt
                && self.platform.dram_latency == 0
                && self.platform.now == self.cpu.cycles
                && !self.platform.dma.is_busy()
            {
                let horizon = self
                    .platform
                    .earliest_pe_event()
                    .map_or(budget_end, |event| event.min(budget_end));
                self.platform.bulk_until = horizon;
                let before = self.cpu.cycles;
                match self
                    .cpu
                    .run_cached_span(&mut self.platform, horizon, ACCEL_BASE)
                {
                    Ok(Some(halt)) => break RunOutcome::Halted(halt),
                    Ok(None) => {}
                    Err(trap) => break RunOutcome::Trapped(trap),
                }
                if self.cpu.cycles != before {
                    // An in-span device doorbell may have deposited
                    // results into the scratchpad (it ends the span, so
                    // this single check covers it); cached SPM code must
                    // go before the next dispatch.
                    self.cpu.note_external_writes(SPM_BASE, spm_end);
                    // While the window stayed quiet this jumps device
                    // time in one assignment (the skipped ticks were
                    // no-ops); after an in-span doorbell it ticks the
                    // now-busy device up to CPU time exactly as the seed
                    // loop did.
                    self.catch_up_devices();
                    continue;
                }
                // No progress (MMIO access or uncacheable entry next):
                // fall through to the precise per-instruction path.
            }
            match self.cpu.step_cached(&mut self.platform) {
                Ok(Some(halt)) => {
                    self.cpu.cycles += self.platform.take_stalls();
                    break RunOutcome::Halted(halt);
                }
                Ok(None) => {
                    self.cpu.cycles += self.platform.take_stalls();
                }
                Err(trap) => break RunOutcome::Trapped(trap),
            }
            // An MMIO store may have made an accelerator deposit results
            // into the scratchpad just now; if code is cached from SPM,
            // drop it.
            self.cpu.note_external_writes(SPM_BASE, spm_end);
            self.catch_up_devices();
        };
        self.report(outcome, start_cycles)
    }

    /// `true` when no device has work in flight — every platform tick
    /// would be a no-op.
    fn devices_quiet(&self) -> bool {
        self.platform.quiet()
    }

    /// Brings device time up to CPU time. When every device is idle the
    /// skipped ticks are provably no-ops (an idle accelerator or DMA
    /// engine ignores its tick), so device time jumps in one assignment;
    /// otherwise devices tick cycle by cycle exactly as the seed loop
    /// did.
    fn catch_up_devices(&mut self) {
        if self.platform.now >= self.cpu.cycles {
            return;
        }
        if self.devices_quiet() {
            self.platform.now = self.cpu.cycles;
            return;
        }
        // With the DMA idle, busy PEs only change state at their next
        // event: jump device time to just short of the earliest one and
        // run only the eventful tail per-cycle. (A bulk span that
        // retired up to its horizon leaves a tail of at most one event
        // tick plus the final instruction's overshoot.)
        if !self.platform.dma.is_busy() {
            if let Some(event) = self.platform.earliest_pe_event() {
                let jump = (event - 1).min(self.cpu.cycles);
                if jump > self.platform.now {
                    self.platform.now = jump;
                }
            }
        }
        // A busy DMA engine writes memory as it ticks; if its target
        // range holds cached code the decoded blocks must go. (The range
        // is fixed for the whole transfer, so capturing it once covers
        // every tick below.)
        let dma_writes = self.platform.dma.active_write_range();
        while self.platform.now < self.cpu.cycles {
            if self.platform.tick() {
                self.cpu.interrupt();
            }
        }
        if let Some((lo, hi)) = dma_writes {
            self.cpu.note_external_writes(lo, hi);
        }
    }

    /// Advances a sleeping CPU across a quiet window without stepping it
    /// one cycle at a time. Bit-identical to the seed loop: CPU cycles
    /// and device time stay in lockstep, only provably no-op device
    /// ticks are skipped, and the first state-changing tick runs for
    /// real so interrupts fire on their exact seed cycle.
    ///
    /// Requires `platform.now == cpu.cycles` (checked by the caller).
    fn sleep_advance(&mut self, budget_end: u64) {
        let now = self.platform.now;
        let event = self.platform.earliest_pe_event();
        match self
            .platform
            .dma
            .schedule(&self.platform.dram, &self.platform.spm)
        {
            DmaSchedule::Opaque => {
                // Possibly-stalling transfer with per-tick observable
                // side effects: one seed-identical sleep cycle.
                let dma_writes = self.platform.dma.active_write_range();
                self.cpu.cycles += 1;
                if self.platform.tick() {
                    self.cpu.interrupt();
                }
                if let Some((lo, hi)) = dma_writes {
                    self.cpu.note_external_writes(lo, hi);
                }
            }
            DmaSchedule::CompletesIn(n) => {
                // The engine moves counted words every tick; the bulk
                // advance applies exactly the per-word accounting of
                // those ticks in one pass, and the final cycle runs as a
                // real platform tick so a completion interrupt (or a
                // coinciding accelerator event) fires on its exact seed
                // cycle.
                let target = event.map_or(now + n, |e| e.min(now + n)).min(budget_end);
                let ticks = target - now;
                let dma_writes = self.platform.dma.active_write_range();
                if ticks > 1 {
                    // Cannot complete early: `target <= now + n` keeps
                    // `ticks - 1` strictly below the completion tick.
                    let p = &mut self.platform;
                    let fired = p.dma.advance_bulk(ticks - 1, &mut p.dram, &mut p.spm);
                    debug_assert!(!fired, "transfer completed before its schedule");
                }
                self.platform.now = target - 1;
                self.cpu.cycles = target;
                if self.platform.tick() {
                    self.cpu.interrupt();
                }
                self.fast_forwarded_cycles += ticks;
                if let Some((lo, hi)) = dma_writes {
                    self.cpu.note_external_writes(lo, hi);
                }
            }
            DmaSchedule::Idle => {
                // Every tick before the event is a no-op: jump.
                let target = event.map_or(budget_end, |e| e.min(budget_end));
                self.fast_forwarded_cycles += target - now;
                if event == Some(target) {
                    // Land one tick short, then run the eventful tick.
                    self.platform.now = target - 1;
                    self.cpu.cycles = target;
                    if self.platform.tick() {
                        self.cpu.interrupt();
                    }
                } else {
                    // No event inside the budget: sleep straight to the
                    // timeout boundary.
                    self.platform.now = target;
                    self.cpu.cycles = target;
                }
            }
        }
    }

    fn report(&self, outcome: RunOutcome, start_cycles: u64) -> RunReport {
        let cycles = self.cpu.cycles - start_cycles;
        let mut energy = EnergyLedger::new();
        let de = &self.digital_energy;
        energy.add("cpu", self.cpu.instret as f64 * de.cpu_per_instruction);
        energy.add(
            "dram",
            (self.platform.dram.reads + self.platform.dram.writes) as f64 * de.dram_per_access,
        );
        energy.add(
            "spm",
            (self.platform.spm.reads + self.platform.spm.writes) as f64 * de.spm_per_access,
        );
        let mut accel_energy = self.platform.accel.energy();
        for pe in &self.platform.extra_pes {
            accel_energy += pe.energy();
        }
        energy.add("photonic-accel", accel_energy);
        RunReport {
            outcome,
            cycles,
            instructions: self.cpu.instret,
            time_s: cycles as f64 / self.cpu_hz,
            energy,
        }
    }
}

impl Default for System {
    fn default() -> Self {
        System::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropulsim_linalg::RMatrix;

    #[test]
    fn plain_program_runs() {
        let mut sys = System::new();
        sys.load_firmware_source("li a0, 7\nli a1, 6\nmul a0, a0, a1\necall");
        let report = sys.run(1000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        assert_eq!(sys.cpu.reg(10), 42);
        assert!(report.energy.get("cpu") > 0.0);
        assert!(report.time_s > 0.0);
    }

    #[test]
    fn cpu_reaches_spm_and_mmrs() {
        let mut sys = System::new();
        sys.platform.accel.load_matrix(&RMatrix::identity(4));
        sys.load_firmware_source(
            "
            li t0, 0x10000000     # SPM
            li t1, 123
            sw t1, 16(t0)
            lw a0, 16(t0)
            li t0, 0x40000000     # accel MMRs
            lw a1, 8(t0)          # DIM
            ecall
            ",
        );
        let report = sys.run(1000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        assert_eq!(sys.cpu.reg(10), 123);
        assert_eq!(sys.cpu.reg(11), 4);
        assert!(report.energy.get("spm") > 0.0);
    }

    #[test]
    fn unmapped_access_traps() {
        let mut sys = System::new();
        sys.load_firmware_source("li t0, 0x70000000\nlw a0, (t0)\necall");
        let report = sys.run(1000);
        assert!(matches!(report.outcome, RunOutcome::Trapped(_)));
    }

    #[test]
    fn timeout_on_infinite_loop() {
        let mut sys = System::new();
        sys.load_firmware_source("spin: j spin");
        let report = sys.run(500);
        assert_eq!(report.outcome, RunOutcome::TimedOut);
    }

    #[test]
    fn dma_transfer_with_wfi() {
        let mut sys = System::new();
        sys.write_fixed_vector(0x1000, &[1.0, 2.0, 3.0, 4.0]);
        sys.load_firmware_source(
            "
            li t0, 0x41000000     # DMA
            li t1, 0x1000
            sw t1, 8(t0)          # SRC
            li t1, 0x10000100
            sw t1, 12(t0)         # DST
            li t1, 16
            sw t1, 16(t0)         # LEN
            li t1, 1
            sw t1, 20(t0)         # IRQ_ENABLE
            sw t1, 0(t0)          # start
            wfi
            li t1, 2
            sw t1, 0(t0)          # ack
            ecall
            ",
        );
        let report = sys.run(10_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        let v = sys.platform.spm.peek(0x1000_0100).unwrap();
        assert_eq!(from_fixed(v as i32), 1.0);
        assert_eq!(sys.platform.dma.bytes_moved, 16);
    }

    #[test]
    fn accel_offload_end_to_end() {
        let mut sys = System::new();
        let w = RMatrix::from_rows(2, 2, &[2.0, 0.0, 0.0, 3.0]);
        sys.platform.accel.load_matrix(&w);
        // Input [1.5, -1.0] directly in SPM at 0x100.
        sys.platform
            .spm
            .poke(SPM_BASE + 0x100, to_fixed(1.5) as u32)
            .unwrap();
        sys.platform
            .spm
            .poke(SPM_BASE + 0x104, to_fixed(-1.0) as u32)
            .unwrap();
        sys.load_firmware_source(
            "
            li t0, 0x40000000
            li t1, 0x10000100
            sw t1, 12(t0)         # IN_ADDR
            li t1, 0x10000200
            sw t1, 16(t0)         # OUT_ADDR
            li t1, 1
            sw t1, 20(t0)         # BATCH
            sw t1, 24(t0)         # IRQ_ENABLE
            sw t1, 0(t0)          # start
            wfi
            li t1, 2
            sw t1, 0(t0)          # ack/clear done
            lw a0, 28(t0)         # LAST_CYCLES
            ecall
            ",
        );
        let report = sys.run(100_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
        let y0 = from_fixed(sys.platform.spm.peek(SPM_BASE + 0x200).unwrap() as i32);
        let y1 = from_fixed(sys.platform.spm.peek(SPM_BASE + 0x204).unwrap() as i32);
        assert!((y0 - 3.0).abs() < 1e-3, "y0 = {y0}");
        assert!((y1 + 3.0).abs() < 1e-3, "y1 = {y1}");
        assert!(sys.cpu.reg(10) > 0, "LAST_CYCLES visible to host");
        assert!(report.energy.get("photonic-accel") > 0.0);
    }

    #[test]
    fn dram_latency_slows_execution_and_cache_recovers() {
        let firmware = "
            li   t0, 0x1000
            li   t1, 200
        loop:
            lw   t2, (t0)
            addi t2, t2, 1
            sw   t2, (t0)
            addi t1, t1, -1
            bnez t1, loop
            ecall
        ";
        let run = |latency: u64, cache: bool| -> u64 {
            let mut sys = System::new();
            sys.platform.dram_latency = latency;
            if cache {
                sys.platform.l1_cache = Some(crate::cache::DirectMappedCache::new(256, 8, latency));
            }
            sys.load_firmware_source(firmware);
            let report = sys.run(10_000_000);
            assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
            report.cycles
        };
        let flat = run(0, false);
        let slow = run(20, false);
        let cached = run(20, true);
        assert!(slow > 2 * flat, "uncached DRAM must hurt: {flat} -> {slow}");
        assert!(
            cached < slow / 2,
            "cache must recover most of it: {slow} -> {cached}"
        );
        assert!(cached >= flat, "cache cannot beat flat memory");
    }

    /// Builds a system in fast (block cache + wfi fast-forward) or
    /// seed-identical slow mode, runs `firmware`, and returns the report
    /// and final system for observability comparison.
    fn run_mode(
        fast: bool,
        setup: impl Fn(&mut System),
        firmware: &str,
        max_cycles: u64,
    ) -> (RunReport, System) {
        let mut sys = System::new();
        sys.cpu.set_block_cache_enabled(fast);
        sys.wfi_fast_forward = fast;
        setup(&mut sys);
        sys.load_firmware_source(firmware);
        let report = sys.run(max_cycles);
        (report, sys)
    }

    #[test]
    fn accel_offload_is_bit_identical_with_fast_paths() {
        let setup = |sys: &mut System| {
            sys.platform
                .accel
                .load_matrix(&RMatrix::from_rows(2, 2, &[2.0, 0.0, 0.0, 3.0]));
            sys.platform
                .spm
                .poke(SPM_BASE + 0x100, to_fixed(1.5) as u32)
                .unwrap();
            sys.platform
                .spm
                .poke(SPM_BASE + 0x104, to_fixed(-1.0) as u32)
                .unwrap();
        };
        let firmware = "
            li t0, 0x40000000
            li t1, 0x10000100
            sw t1, 12(t0)
            li t1, 0x10000200
            sw t1, 16(t0)
            li t1, 1
            sw t1, 20(t0)
            sw t1, 24(t0)
            sw t1, 0(t0)
            wfi
            li t1, 2
            sw t1, 0(t0)
            ecall
            ";
        let (fast_report, fast_sys) = run_mode(true, setup, firmware, 100_000);
        let (slow_report, slow_sys) = run_mode(false, setup, firmware, 100_000);
        assert_eq!(fast_report, slow_report, "reports must be bit-identical");
        assert_eq!(fast_sys.cpu, slow_sys.cpu);
        assert_eq!(fast_sys.platform.dram.reads, slow_sys.platform.dram.reads);
        assert_eq!(fast_sys.platform.spm.reads, slow_sys.platform.spm.reads);
        assert_eq!(fast_sys.platform.spm.writes, slow_sys.platform.spm.writes);
        assert!(
            fast_sys.fast_forwarded_cycles > 0,
            "wfi wait over the accelerator job must fast-forward"
        );
        assert_eq!(slow_sys.fast_forwarded_cycles, 0);
    }

    #[test]
    fn dma_wfi_is_bit_identical_with_fast_paths() {
        let setup = |sys: &mut System| sys.write_fixed_vector(0x1000, &[1.0, 2.0, 3.0, 4.0]);
        let firmware = "
            li t0, 0x41000000
            li t1, 0x1000
            sw t1, 8(t0)
            li t1, 0x10000100
            sw t1, 12(t0)
            li t1, 16
            sw t1, 16(t0)
            li t1, 1
            sw t1, 20(t0)
            sw t1, 0(t0)
            wfi
            li t1, 2
            sw t1, 0(t0)
            ecall
            ";
        let (fast_report, fast_sys) = run_mode(true, setup, firmware, 10_000);
        let (slow_report, slow_sys) = run_mode(false, setup, firmware, 10_000);
        assert_eq!(fast_report, slow_report);
        assert_eq!(fast_sys.cpu, slow_sys.cpu);
        assert_eq!(fast_sys.platform.dma.bytes_moved, 16);
        assert_eq!(
            fast_sys.platform.dram.reads, slow_sys.platform.dram.reads,
            "DMA word moves stay individually counted under fast-forward"
        );
        assert_eq!(fast_sys.platform.spm.writes, slow_sys.platform.spm.writes);
    }

    #[test]
    fn wfi_timeout_fast_forwards_to_budget_boundary() {
        let (fast_report, fast_sys) = run_mode(true, |_| {}, "wfi\necall", 5000);
        let (slow_report, slow_sys) = run_mode(false, |_| {}, "wfi\necall", 5000);
        assert_eq!(fast_report.outcome, RunOutcome::TimedOut);
        assert_eq!(fast_report, slow_report);
        assert_eq!(fast_sys.cpu.cycles, slow_sys.cpu.cycles);
        assert_eq!(fast_sys.platform.now, slow_sys.platform.now);
        assert!(
            fast_sys.fast_forwarded_cycles >= 4000,
            "an eventless sleep jumps straight to the budget: {}",
            fast_sys.fast_forwarded_cycles
        );
    }

    #[test]
    fn irq_race_is_level_triggered() {
        // Device completes before the CPU reaches wfi: the level-triggered
        // line must still wake it (no lost-wakeup hang).
        let mut sys = System::new();
        sys.platform.accel.load_matrix(&RMatrix::identity(2));
        sys.platform.accel.setup_cycles = 0; // completes almost instantly
        sys.load_firmware_source(
            "
            li t0, 0x40000000
            li t1, 0x10000000
            sw t1, 12(t0)
            li t1, 0x10000100
            sw t1, 16(t0)
            li t1, 1
            sw t1, 20(t0)
            sw t1, 24(t0)
            sw t1, 0(t0)
            nop
            nop
            nop
            nop
            wfi
            ecall
            ",
        );
        let report = sys.run(100_000);
        assert_eq!(report.outcome, RunOutcome::Halted(Halt::Ecall));
    }
}

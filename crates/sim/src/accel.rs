//! The memory-mapped photonic MVM accelerator — the "Compute Unit +
//! Communications Interface" of the paper's Fig. 3.
//!
//! The Compute Unit wraps a [`MvmCore`]; the Communications Interface is
//! a bank of memory-mapped registers (MMRs), scratchpad-resident operand
//! buffers, and an interrupt line, exactly the gem5-MARVEL device
//! template: "MMRs consist of configurable status, control, and data
//! registers ... the host can utilize the provided interrupt signals for
//! synchronization without the need for constant polling."

use crate::fixed::{from_fixed, to_fixed};
use crate::ram::Ram;
use neuropulsim_core::mvm::{MvmCore, MvmNoiseConfig, RealizedMvm};
use neuropulsim_linalg::RMatrix;
use neuropulsim_photonics::energy::TechnologyProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// MMR offsets (bytes from the device base).
pub mod mmr {
    /// Write 1 to start; write 2 to clear `done`.
    pub const CTRL: u32 = 0x00;
    /// Bit 0 = busy, bit 1 = done.
    pub const STATUS: u32 = 0x04;
    /// Matrix dimension `n` (read-only, set by the host API).
    pub const DIM: u32 = 0x08;
    /// SPM byte address of the input vectors.
    pub const IN_ADDR: u32 = 0x0C;
    /// SPM byte address for the output vectors.
    pub const OUT_ADDR: u32 = 0x10;
    /// Number of vectors to stream.
    pub const BATCH: u32 = 0x14;
    /// Bit 0 enables the completion interrupt.
    pub const IRQ_ENABLE: u32 = 0x18;
    /// Cycles the last job took (read-only).
    pub const LAST_CYCLES: u32 = 0x1C;
    /// Size of the register bank.
    pub const SIZE: u32 = 0x20;
}

/// Status bits.
pub mod status {
    /// Device is processing a job.
    pub const BUSY: u32 = 1;
    /// A job finished and `done` has not been cleared.
    pub const DONE: u32 = 2;
}

/// The accelerator device state.
#[derive(Debug, Clone)]
pub struct AccelDevice {
    core: Option<MvmCore>,
    instance: Option<RealizedMvm>,
    noise: MvmNoiseConfig,
    rng: StdRng,
    // MMRs
    in_addr: u32,
    out_addr: u32,
    batch: u32,
    irq_enable: bool,
    busy: bool,
    done: bool,
    busy_until: u64,
    last_cycles: u32,
    // Timing parameters.
    /// Host clock frequency \[Hz\].
    pub cpu_hz: f64,
    /// Fixed start-up latency per job \[cycles\] (doorbell, DAC settle).
    pub setup_cycles: u64,
    /// Electro-optic technology profile (for the energy report).
    pub tech: TechnologyProfile,
    // Stats.
    /// Vectors processed in total.
    pub vectors_processed: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
}

impl AccelDevice {
    /// Creates an unconfigured device (host must load a matrix first).
    pub fn new(cpu_hz: f64) -> Self {
        AccelDevice {
            core: None,
            instance: None,
            noise: MvmNoiseConfig::ideal(),
            rng: StdRng::seed_from_u64(0x5EED),
            in_addr: 0,
            out_addr: 0,
            batch: 1,
            irq_enable: false,
            busy: false,
            done: false,
            busy_until: 0,
            last_cycles: 0,
            cpu_hz,
            setup_cycles: 20,
            tech: TechnologyProfile::default(),
            vectors_processed: 0,
            jobs_completed: 0,
        }
    }

    /// Loads (programs) a weight matrix into the photonic core. This is
    /// the host-driver step that burns PCM programming pulses / sets
    /// heaters; it happens out-of-band of the MMR interface.
    pub fn load_matrix(&mut self, w: &RMatrix) {
        let core = MvmCore::new(w);
        self.instance = Some(core.realize(&self.noise, &mut self.rng));
        self.core = Some(core);
    }

    /// Sets the noise configuration for subsequent [`AccelDevice::load_matrix`]
    /// calls (and re-realizes the current matrix if one is loaded).
    pub fn set_noise(&mut self, noise: MvmNoiseConfig) {
        self.noise = noise;
        if let Some(core) = &self.core {
            self.instance = Some(core.realize(&self.noise, &mut self.rng));
        }
    }

    /// The configured dimension, 0 if no matrix loaded.
    pub fn dim(&self) -> u32 {
        self.core.as_ref().map(|c| c.modes() as u32).unwrap_or(0)
    }

    /// `true` while a job is in flight.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// `true` when a completed job's results are ready.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Handles an MMR read at byte offset `offset`.
    pub fn mmr_load(&mut self, offset: u32) -> u32 {
        match offset & !3 {
            mmr::CTRL => 0,
            mmr::STATUS => {
                (if self.busy { status::BUSY } else { 0 })
                    | (if self.done { status::DONE } else { 0 })
            }
            mmr::DIM => self.dim(),
            mmr::IN_ADDR => self.in_addr,
            mmr::OUT_ADDR => self.out_addr,
            mmr::BATCH => self.batch,
            mmr::IRQ_ENABLE => self.irq_enable as u32,
            mmr::LAST_CYCLES => self.last_cycles,
            _ => 0,
        }
    }

    /// Handles an MMR write. Returns `true` if a job start was requested.
    pub fn mmr_store(&mut self, offset: u32, value: u32) -> bool {
        match offset & !3 {
            mmr::CTRL => {
                if value & 2 != 0 {
                    self.done = false;
                }
                if value & 1 != 0 && !self.busy {
                    return true;
                }
                false
            }
            mmr::IN_ADDR => {
                self.in_addr = value;
                false
            }
            mmr::OUT_ADDR => {
                self.out_addr = value;
                false
            }
            mmr::BATCH => {
                self.batch = value.max(1);
                false
            }
            mmr::IRQ_ENABLE => {
                self.irq_enable = value & 1 != 0;
                false
            }
            _ => false,
        }
    }

    /// Job latency in host cycles for `batch` vectors: fixed setup plus
    /// streaming at the electro-optic symbol rate. The optical core
    /// retires one full `n`-element vector per symbol slot — this is the
    /// photonic throughput advantage in cycle form.
    pub fn job_cycles(&self, batch: u32) -> u64 {
        let streaming = (batch as f64 * self.cpu_hz / self.tech.symbol_rate).ceil() as u64;
        self.setup_cycles + streaming.max(1)
    }

    /// Starts a job at time `now`: consumes inputs from SPM, computes, and
    /// schedules completion. Returns `false` if no matrix is loaded or the
    /// operands are out of SPM range (the device sets `done` with garbage
    /// in real hardware; here we fail fast).
    pub fn start(&mut self, now: u64, spm: &mut Ram) -> bool {
        let Some(instance) = &self.instance else {
            return false;
        };
        let n = self.dim() as usize;
        let batch = self.batch;
        let mut in_addr = self.in_addr;
        let mut out_addr = self.out_addr;
        for _ in 0..batch {
            let mut x = vec![0.0f64; n];
            for v in x.iter_mut() {
                let Ok(word) = spm.load(in_addr) else {
                    return false;
                };
                *v = from_fixed(word as i32);
                in_addr += 4;
            }
            let y = instance.multiply_noisy(&x, &mut self.rng);
            for &val in &y {
                if spm.store(out_addr, to_fixed(val) as u32).is_err() {
                    return false;
                }
                out_addr += 4;
            }
            self.vectors_processed += 1;
        }
        let cycles = self.job_cycles(batch);
        self.busy = true;
        self.done = false;
        self.busy_until = now + cycles;
        self.last_cycles = cycles as u32;
        true
    }

    /// Advances device time. Returns `true` when the completion interrupt
    /// fires on this call.
    pub fn tick(&mut self, now: u64) -> bool {
        if self.busy && now >= self.busy_until {
            self.busy = false;
            self.done = true;
            self.jobs_completed += 1;
            return self.irq_enable;
        }
        false
    }

    /// Optical + electro-optic energy consumed so far \[J\], from the
    /// technology profile: per-vector modulator/receiver/DAC work plus
    /// laser power over the streaming time.
    pub fn energy(&self) -> f64 {
        let n = self.dim() as usize;
        let vectors = self.vectors_processed as f64;
        let io = vectors
            * n as f64
            * (self.tech.modulator_energy_per_symbol
                + self.tech.receiver_energy_per_sample
                + self.tech.dac_energy_per_sample);
        let streaming_time = vectors / self.tech.symbol_rate;
        io + self.tech.laser_power(n) * streaming_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_with_identity(n: usize) -> AccelDevice {
        let mut d = AccelDevice::new(1e9);
        d.load_matrix(&RMatrix::identity(n));
        d
    }

    #[test]
    fn mmr_roundtrip() {
        let mut d = device_with_identity(4);
        d.mmr_store(mmr::IN_ADDR, 0x100);
        d.mmr_store(mmr::OUT_ADDR, 0x200);
        d.mmr_store(mmr::BATCH, 3);
        d.mmr_store(mmr::IRQ_ENABLE, 1);
        assert_eq!(d.mmr_load(mmr::IN_ADDR), 0x100);
        assert_eq!(d.mmr_load(mmr::OUT_ADDR), 0x200);
        assert_eq!(d.mmr_load(mmr::BATCH), 3);
        assert_eq!(d.mmr_load(mmr::IRQ_ENABLE), 1);
        assert_eq!(d.mmr_load(mmr::DIM), 4);
    }

    #[test]
    fn start_requires_ctrl_write() {
        let mut d = device_with_identity(2);
        assert!(!d.mmr_store(mmr::BATCH, 1));
        assert!(d.mmr_store(mmr::CTRL, 1), "CTRL=1 requests start");
    }

    #[test]
    fn identity_job_copies_vector() {
        let mut d = device_with_identity(3);
        let mut spm = Ram::new(0, 4096);
        // Input vector [1.5, -2.0, 0.25] at 0x100.
        let inputs = [1.5, -2.0, 0.25];
        for (k, &x) in inputs.iter().enumerate() {
            spm.poke(0x100 + 4 * k as u32, to_fixed(x) as u32).unwrap();
        }
        d.mmr_store(mmr::IN_ADDR, 0x100);
        d.mmr_store(mmr::OUT_ADDR, 0x200);
        d.mmr_store(mmr::BATCH, 1);
        assert!(d.start(0, &mut spm));
        assert!(d.is_busy());
        for (k, &x) in inputs.iter().enumerate() {
            let got = from_fixed(spm.peek(0x200 + 4 * k as u32).unwrap() as i32);
            assert!((got - x).abs() < 1e-3, "element {k}: {got} vs {x}");
        }
    }

    #[test]
    fn completion_and_interrupt() {
        let mut d = device_with_identity(2);
        let mut spm = Ram::new(0, 1024);
        d.mmr_store(mmr::IRQ_ENABLE, 1);
        d.mmr_store(mmr::BATCH, 1);
        assert!(d.start(0, &mut spm));
        let cycles = d.job_cycles(1);
        assert!(!d.tick(cycles - 1), "not done yet");
        assert!(d.tick(cycles), "irq fires at completion");
        assert!(d.is_done());
        assert!(!d.is_busy());
        assert_eq!(d.mmr_load(mmr::STATUS), status::DONE);
        // Clearing done via CTRL bit 1.
        d.mmr_store(mmr::CTRL, 2);
        assert!(!d.is_done());
    }

    #[test]
    fn job_cycles_scale_sublinearly_with_small_batches() {
        let d = device_with_identity(8);
        // 1 GHz host, 10 GS/s optics: 10 vectors per host cycle.
        assert_eq!(d.job_cycles(1), d.setup_cycles + 1);
        assert_eq!(d.job_cycles(100), d.setup_cycles + 10);
    }

    #[test]
    fn start_fails_without_matrix() {
        let mut d = AccelDevice::new(1e9);
        let mut spm = Ram::new(0, 64);
        assert!(!d.start(0, &mut spm));
    }

    #[test]
    fn start_fails_on_bad_addresses() {
        let mut d = device_with_identity(4);
        let mut spm = Ram::new(0, 16); // too small
        d.mmr_store(mmr::IN_ADDR, 0);
        d.mmr_store(mmr::OUT_ADDR, 0x4000);
        assert!(!d.start(0, &mut spm));
    }

    #[test]
    fn energy_grows_with_work() {
        let mut d = device_with_identity(4);
        let mut spm = Ram::new(0, 4096);
        d.mmr_store(mmr::BATCH, 10);
        let e0 = d.energy();
        assert!(d.start(0, &mut spm));
        assert!(d.energy() > e0);
        assert_eq!(d.vectors_processed, 10);
    }
}

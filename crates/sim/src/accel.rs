//! The memory-mapped photonic MVM accelerator — the "Compute Unit +
//! Communications Interface" of the paper's Fig. 3.
//!
//! The Compute Unit wraps a [`MvmCore`]; the Communications Interface is
//! a bank of memory-mapped registers (MMRs), scratchpad-resident operand
//! buffers, and an interrupt line, exactly the gem5-MARVEL device
//! template: "MMRs consist of configurable status, control, and data
//! registers ... the host can utilize the provided interrupt signals for
//! synchronization without the need for constant polling."
//!
//! On top of the PR 1/2 device, this model carries the runtime
//! fault-tolerance surface of the guarded offload protocol:
//!
//! - a sticky [`mmr::ERROR`] register ([`errcode`] bits: checksum-fail
//!   reported by firmware, watchdog timeout, busy-reject, SPM range,
//!   malformed job) mirrored as [`status::ERROR`] and routed to its own
//!   interrupt-enable bit;
//! - a [`mmr::WATCHDOG`] deadline that aborts an overdue job;
//! - a recalibration doorbell (CTRL bit 3) that re-programs the PCM
//!   attenuators and re-realizes the mesh, countering the drift model
//!   ([`PcmDriftModel`]) that ages the weights with simulated time.

use crate::fixed::{from_fixed, to_fixed};
use crate::ram::Ram;
use neuropulsim_core::mvm::{MvmCore, MvmNoiseConfig, RealizedMvm};
use neuropulsim_linalg::RMatrix;
use neuropulsim_photonics::energy::TechnologyProfile;
use neuropulsim_photonics::pcm::{PcmCell, PcmMaterial};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// MMR offsets (bytes from the device base).
pub mod mmr {
    /// Write 1 to start; 2 to clear `done`; 4 to clear `ERROR`; 8 to
    /// request a recalibration (re-program weights, re-realize mesh).
    pub const CTRL: u32 = 0x00;
    /// Bit 0 = busy, bit 1 = done, bit 2 = error pending.
    pub const STATUS: u32 = 0x04;
    /// Matrix dimension `n` (read-only, set by the host API).
    pub const DIM: u32 = 0x08;
    /// SPM byte address of the input vectors.
    pub const IN_ADDR: u32 = 0x0C;
    /// SPM byte address for the output vectors.
    pub const OUT_ADDR: u32 = 0x10;
    /// Number of vectors to stream (a job with batch 0 is rejected).
    pub const BATCH: u32 = 0x14;
    /// Bit 0 enables the completion interrupt; bit 1 the error interrupt.
    pub const IRQ_ENABLE: u32 = 0x18;
    /// Cycles the last job took (read-only).
    pub const LAST_CYCLES: u32 = 0x1C;
    /// Sticky error bits (see [`super::errcode`]). Reads return the
    /// latch; writes OR bits in (firmware reports detections here);
    /// CTRL bit 2 clears.
    pub const ERROR: u32 = 0x20;
    /// Watchdog deadline in cycles from job start (0 disables). An
    /// in-flight job whose deadline passes is aborted with
    /// [`super::errcode::WATCHDOG`].
    pub const WATCHDOG: u32 = 0x24;
    /// Number of recalibrations performed (read-only).
    pub const RECAL_COUNT: u32 = 0x28;
    /// Size of the register bank.
    pub const SIZE: u32 = 0x30;
}

/// Status bits.
pub mod status {
    /// Device is processing a job.
    pub const BUSY: u32 = 1;
    /// A job finished and `done` has not been cleared.
    pub const DONE: u32 = 2;
    /// The `ERROR` register holds unacknowledged bits.
    pub const ERROR: u32 = 4;
}

/// Bits of the [`mmr::ERROR`] register.
pub mod errcode {
    /// ABFT checksum failure (reported by the guarded firmware).
    pub const CHECKSUM: u32 = 1;
    /// Job exceeded the programmed watchdog deadline and was aborted.
    pub const WATCHDOG: u32 = 2;
    /// A start or recalibration doorbell arrived while busy and was
    /// rejected (in-flight state untouched).
    pub const BUSY_REJECT: u32 = 4;
    /// An operand window fell outside the scratchpad.
    pub const SPM_RANGE: u32 = 8;
    /// Malformed job: no matrix programmed, zero dimension, or batch 0.
    pub const BAD_JOB: u32 = 16;
    /// Permanent hardware fault: the device was bricked (injected via
    /// [`super::AccelDevice::inject_hard_fault`]) and rejects every
    /// doorbell until repaired. This is the sticky-ERROR failure mode
    /// the fleet scheduler degrades around.
    pub const HW_FAULT: u32 = 32;
    /// Every defined bit (writes to `ERROR` are masked to these).
    pub const ALL: u32 = 0x3F;
}

/// Retention model for non-volatile PCM weights: amorphous-phase
/// structural relaxation drifts the programmed attenuator states with
/// simulated time (Chakraborty et al., arXiv:1808.01241), degrading MVM
/// accuracy until the host requests a recalibration.
///
/// The device maps each attenuator setting `a` to a crystalline fraction
/// `1 - a`, ages it through [`PcmCell::apply_drift`] with
/// `nu · ln(1 + t/τ)`, and re-realizes the mesh with the drifted
/// attenuations at every job start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcmDriftModel {
    /// PCM material of the attenuator cells.
    pub material: PcmMaterial,
    /// Drift coefficient `nu` (fraction shift per ln-decade of seconds).
    pub nu: f64,
    /// Simulated wall-clock seconds per host cycle.
    pub seconds_per_cycle: f64,
    /// Quantization levels used when (re)programming the cells.
    pub levels: u32,
    /// Age of the programmed weights at simulation start \[s\] — models
    /// non-volatile weights programmed long before boot.
    pub initial_age_s: f64,
}

impl Default for PcmDriftModel {
    fn default() -> Self {
        PcmDriftModel {
            material: PcmMaterial::Gsst,
            nu: 1e-3,
            seconds_per_cycle: 1e-9,
            levels: 32,
            initial_age_s: 0.0,
        }
    }
}

impl PcmDriftModel {
    /// Bridges this device-level drift model into a mesh
    /// calibration-under-drift campaign
    /// ([`neuropulsim_core::calibrate::drift_campaign_all`]): the PCM
    /// coefficients (`nu`, `levels`) carry over, the campaign adds the
    /// mesh-side parameters (fabrication imbalance, step cadence,
    /// recalibration threshold) from
    /// [`DriftCampaignConfig::default`](neuropulsim_core::calibrate::DriftCampaignConfig).
    pub fn campaign_config(
        &self,
        steps: usize,
        seconds_per_step: f64,
        retain_frac: f64,
    ) -> neuropulsim_core::calibrate::DriftCampaignConfig {
        neuropulsim_core::calibrate::DriftCampaignConfig {
            levels: self.levels.max(2),
            nu: self.nu,
            seconds_per_step,
            steps,
            retain_frac,
            ..Default::default()
        }
    }
}

/// The accelerator device state.
#[derive(Debug, Clone)]
pub struct AccelDevice {
    core: Option<MvmCore>,
    instance: Option<RealizedMvm>,
    noise: MvmNoiseConfig,
    rng: StdRng,
    // MMRs
    in_addr: u32,
    out_addr: u32,
    batch: u32,
    irq_mask: u32,
    busy: bool,
    done: bool,
    busy_until: u64,
    last_cycles: u32,
    // Fault-tolerance state.
    error: u32,
    watchdog: u32,
    job_deadline: u64,
    recal_requested: bool,
    recal_in_flight: bool,
    recal_count: u32,
    /// Latency of a recalibration (PCM reprogramming) \[cycles\].
    pub recal_cycles: u64,
    drift: Option<PcmDriftModel>,
    programmed_at: u64,
    age_s: f64,
    programming_energy_j: f64,
    hard_fault: bool,
    // Timing parameters.
    /// Host clock frequency \[Hz\].
    pub cpu_hz: f64,
    /// Fixed start-up latency per job \[cycles\] (doorbell, DAC settle).
    pub setup_cycles: u64,
    /// Dense-WDM channel count: vectors streamed per symbol slot (§4's
    /// TDM/dense-WDM batching axis). `1` reproduces the single-channel
    /// seed timing exactly; `W` lets a batch of `W` vectors ride one
    /// symbol slot on `W` wavelengths, cutting streaming time `W`-fold
    /// at `W`-fold instantaneous laser power (net laser energy
    /// unchanged).
    pub wdm_channels: u32,
    /// Electro-optic technology profile (for the energy report).
    pub tech: TechnologyProfile,
    // Stats.
    /// Vectors processed in total.
    pub vectors_processed: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
}

impl AccelDevice {
    /// Creates an unconfigured device (host must load a matrix first).
    pub fn new(cpu_hz: f64) -> Self {
        AccelDevice {
            core: None,
            instance: None,
            noise: MvmNoiseConfig::ideal(),
            rng: StdRng::seed_from_u64(0x5EED),
            in_addr: 0,
            out_addr: 0,
            batch: 1,
            irq_mask: 0,
            busy: false,
            done: false,
            busy_until: 0,
            last_cycles: 0,
            error: 0,
            watchdog: 0,
            job_deadline: 0,
            recal_requested: false,
            recal_in_flight: false,
            recal_count: 0,
            recal_cycles: 200,
            drift: None,
            programmed_at: 0,
            age_s: 0.0,
            programming_energy_j: 0.0,
            hard_fault: false,
            cpu_hz,
            setup_cycles: 20,
            wdm_channels: 1,
            tech: TechnologyProfile::default(),
            vectors_processed: 0,
            jobs_completed: 0,
        }
    }

    /// Loads (programs) a weight matrix into the photonic core. This is
    /// the host-driver step that burns PCM programming pulses / sets
    /// heaters; it happens out-of-band of the MMR interface.
    pub fn load_matrix(&mut self, w: &RMatrix) {
        let core = MvmCore::new(w);
        self.instance = Some(core.realize(&self.noise, &mut self.rng));
        self.core = Some(core);
    }

    /// Sets the noise configuration for subsequent [`AccelDevice::load_matrix`]
    /// calls (and re-realizes the current matrix if one is loaded).
    pub fn set_noise(&mut self, noise: MvmNoiseConfig) {
        self.noise = noise;
        if let Some(core) = &self.core {
            self.instance = Some(core.realize(&self.noise, &mut self.rng));
        }
    }

    /// The configured dimension, 0 if no matrix loaded.
    pub fn dim(&self) -> u32 {
        self.core.as_ref().map(|c| c.modes() as u32).unwrap_or(0)
    }

    /// `true` while a job is in flight.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// `true` when a completed job's results are ready.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The sticky error bits ([`errcode`]), 0 when clean.
    pub fn error_bits(&self) -> u32 {
        self.error
    }

    /// Number of recalibrations performed so far.
    pub fn recal_count(&self) -> u32 {
        self.recal_count
    }

    /// True while a recalibration (PCM reprogramming) is in flight.
    pub fn is_recalibrating(&self) -> bool {
        self.recal_in_flight
    }

    /// `true` when the error interrupt line is asserted (error-IRQ
    /// enabled and unacknowledged error bits pending).
    pub fn error_irq_line(&self) -> bool {
        self.irq_mask & 2 != 0 && self.error != 0
    }

    /// Bricks the device: every subsequent start or recalibration
    /// doorbell is rejected with the sticky [`errcode::HW_FAULT`] latch.
    /// An in-flight job is aborted (`done` rises so polling hosts do not
    /// deadlock, exactly like a watchdog abort). This is the permanent
    /// device-loss failure mode the fleet scheduler must survive.
    pub fn inject_hard_fault(&mut self) {
        self.hard_fault = true;
        self.error |= errcode::HW_FAULT;
        if self.busy {
            self.busy = false;
            self.done = true;
            self.job_deadline = 0;
            self.recal_in_flight = false;
        }
    }

    /// Repairs an injected hard fault (the error latch stays until the
    /// host acknowledges it through CTRL bit 2).
    pub fn clear_hard_fault(&mut self) {
        self.hard_fault = false;
    }

    /// `true` while a permanent hardware fault is injected.
    pub fn is_hard_faulted(&self) -> bool {
        self.hard_fault
    }

    /// Enables the PCM retention model: subsequent jobs see attenuator
    /// states aged by `nu·ln(1 + t/τ)` since the weights were last
    /// programmed, until a recalibration (CTRL bit 3) re-programs them.
    pub fn enable_drift(&mut self, model: PcmDriftModel) {
        self.age_s = if model.initial_age_s.is_finite() {
            model.initial_age_s.max(0.0)
        } else {
            0.0
        };
        self.drift = Some(model);
    }

    /// The active drift model, if any.
    pub fn drift_model(&self) -> Option<&PcmDriftModel> {
        self.drift.as_ref()
    }

    /// Consumes a pending recalibration request (set by CTRL bit 3). The
    /// platform calls this after every MMR store so it can invoke
    /// [`AccelDevice::recalibrate`] with the current simulation time.
    pub fn take_recal_request(&mut self) -> bool {
        std::mem::take(&mut self.recal_requested)
    }

    /// Handles an MMR read at byte offset `offset`.
    pub fn mmr_load(&mut self, offset: u32) -> u32 {
        match offset & !3 {
            mmr::CTRL => 0,
            mmr::STATUS => {
                (if self.busy { status::BUSY } else { 0 })
                    | (if self.done { status::DONE } else { 0 })
                    | (if self.error != 0 { status::ERROR } else { 0 })
            }
            mmr::DIM => self.dim(),
            mmr::IN_ADDR => self.in_addr,
            mmr::OUT_ADDR => self.out_addr,
            mmr::BATCH => self.batch,
            mmr::IRQ_ENABLE => self.irq_mask,
            mmr::LAST_CYCLES => self.last_cycles,
            mmr::ERROR => self.error,
            mmr::WATCHDOG => self.watchdog,
            mmr::RECAL_COUNT => self.recal_count,
            _ => 0,
        }
    }

    /// Handles an MMR write. Returns `true` if a job start was requested.
    ///
    /// A start or recalibration doorbell while [`AccelDevice::is_busy`]
    /// is *rejected*: the in-flight job is untouched and
    /// [`errcode::BUSY_REJECT`] latches instead.
    pub fn mmr_store(&mut self, offset: u32, value: u32) -> bool {
        match offset & !3 {
            mmr::CTRL => {
                if value & 2 != 0 {
                    self.done = false;
                }
                if value & 4 != 0 {
                    self.error = 0;
                }
                if value & 8 != 0 {
                    if self.busy {
                        self.error |= errcode::BUSY_REJECT;
                    } else {
                        self.recal_requested = true;
                    }
                }
                if value & 1 != 0 {
                    if self.busy {
                        self.error |= errcode::BUSY_REJECT;
                    } else {
                        return true;
                    }
                }
                false
            }
            mmr::IN_ADDR => {
                self.in_addr = value;
                false
            }
            mmr::OUT_ADDR => {
                self.out_addr = value;
                false
            }
            mmr::BATCH => {
                self.batch = value;
                false
            }
            mmr::IRQ_ENABLE => {
                self.irq_mask = value & 3;
                false
            }
            mmr::ERROR => {
                // Firmware reports detections by OR-ing bits in; the
                // latch is cleared through CTRL bit 2 only.
                self.error |= value & errcode::ALL;
                false
            }
            mmr::WATCHDOG => {
                self.watchdog = value;
                false
            }
            _ => false,
        }
    }

    /// Job latency in host cycles for `batch` vectors: fixed setup plus
    /// streaming at the electro-optic symbol rate. The optical core
    /// retires [`AccelDevice::wdm_channels`] full `n`-element vectors per
    /// symbol slot (one per wavelength) — this is the photonic
    /// throughput advantage in cycle form, with dense-WDM batching as
    /// the second axis.
    pub fn job_cycles(&self, batch: u32) -> u64 {
        let slots = (batch as f64 / self.wdm_channels.max(1) as f64).ceil();
        let streaming = (slots * self.cpu_hz / self.tech.symbol_rate).ceil() as u64;
        self.setup_cycles + streaming.max(1)
    }

    /// The attenuator states aged by the drift model at time `now`, or
    /// `None` when drift is disabled / zero time has passed.
    fn drifted_attenuation(&self, now: u64) -> Option<Vec<f64>> {
        let model = self.drift.as_ref()?;
        let core = self.core.as_ref()?;
        let elapsed =
            self.age_s + now.saturating_sub(self.programmed_at) as f64 * model.seconds_per_cycle;
        if elapsed <= 0.0 {
            return None;
        }
        Some(
            core.attenuation()
                .iter()
                .map(|&a| {
                    let mut cell = PcmCell::new(model.material);
                    cell.set_state(1.0 - a);
                    cell.apply_drift(elapsed, model.nu);
                    (1.0 - cell.crystalline_fraction()).clamp(0.0, 1.0)
                })
                .collect(),
        )
    }

    /// Starts a job at time `now`: consumes inputs from SPM, computes, and
    /// schedules completion. Returns `false` — with the matching
    /// [`errcode`] bit latched — when the device is busy, the job is
    /// malformed (no matrix, zero dim, batch 0), or an operand window
    /// falls outside the SPM (the device sets `done` with garbage in real
    /// hardware; here we fail fast and flag it).
    pub fn start(&mut self, now: u64, spm: &mut Ram) -> bool {
        if self.hard_fault {
            self.error |= errcode::HW_FAULT;
            return false;
        }
        if self.busy {
            self.error |= errcode::BUSY_REJECT;
            return false;
        }
        let n = self.dim() as usize;
        let batch = self.batch;
        if self.instance.is_none() || n == 0 || batch == 0 {
            self.error |= errcode::BAD_JOB;
            return false;
        }
        if let Some(att) = self.drifted_attenuation(now) {
            let core = self.core.as_ref().expect("drift requires a core");
            self.instance = Some(core.realize_with_attenuation(&att, &self.noise, &mut self.rng));
        }
        let instance = self.instance.as_ref().expect("checked above");
        let mut in_addr = self.in_addr;
        let mut out_addr = self.out_addr;
        let mut x = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut words = vec![0u32; n];
        for _ in 0..batch {
            // Bulk-streamed operand windows: one counted slice copy per
            // vector instead of a counted word access per element. The
            // per-word loop remains as the fallback so a window that
            // leaves the SPM charges exactly the partial accesses the
            // streaming engine would have issued before faulting.
            if spm.read_words_into(in_addr, &mut words) {
                for (v, &word) in x.iter_mut().zip(&words) {
                    *v = from_fixed(word as i32);
                }
                in_addr += 4 * n as u32;
            } else {
                for v in x.iter_mut() {
                    let Ok(word) = spm.load(in_addr) else {
                        self.error |= errcode::SPM_RANGE;
                        return false;
                    };
                    *v = from_fixed(word as i32);
                    in_addr += 4;
                }
            }
            instance.multiply_noisy_into(&x, &mut y, &mut self.rng);
            for (w, &val) in words.iter_mut().zip(&y) {
                *w = to_fixed(val) as u32;
            }
            if spm.write_words(out_addr, &words) {
                out_addr += 4 * n as u32;
            } else {
                for &w in &words {
                    if spm.store(out_addr, w).is_err() {
                        self.error |= errcode::SPM_RANGE;
                        return false;
                    }
                    out_addr += 4;
                }
            }
            self.vectors_processed += 1;
        }
        let cycles = self.job_cycles(batch);
        self.busy = true;
        self.done = false;
        self.busy_until = now + cycles;
        self.job_deadline = if self.watchdog > 0 {
            now + self.watchdog as u64
        } else {
            0
        };
        self.last_cycles = cycles as u32;
        true
    }

    /// Re-programs the PCM attenuators to their nominal states and
    /// re-realizes the mesh — the drift-recovery path behind CTRL bit 3.
    /// Charges the programming pulses to the energy ledger, resets the
    /// weight age, and occupies the device for
    /// [`AccelDevice::recal_cycles`] (completion raises `done` like a
    /// job). Rejected with [`errcode::BUSY_REJECT`] while busy and
    /// [`errcode::BAD_JOB`] when no matrix is programmed.
    pub fn recalibrate(&mut self, now: u64) {
        if self.hard_fault {
            self.error |= errcode::HW_FAULT;
            return;
        }
        if self.busy {
            self.error |= errcode::BUSY_REJECT;
            return;
        }
        let Some(core) = self.core.as_ref() else {
            self.error |= errcode::BAD_JOB;
            return;
        };
        let mut pulses_energy = 0.0;
        if let Some(model) = &self.drift {
            let levels = model.levels.max(2);
            for &a in core.attenuation() {
                // Iterative write: melt-quench erase, then SET pulses up
                // to the quantized target level.
                let mut cell = PcmCell::new(model.material);
                cell.reset();
                let level = (((1.0 - a) * (levels - 1) as f64).round() as u32).min(levels - 1);
                cell.program_level(level, levels);
                pulses_energy += cell.programming_energy();
            }
        }
        self.instance = Some(core.realize(&self.noise, &mut self.rng));
        self.programming_energy_j += pulses_energy;
        self.programmed_at = now;
        self.age_s = 0.0;
        self.recal_count = self.recal_count.wrapping_add(1);
        self.busy = true;
        self.done = false;
        self.recal_in_flight = true;
        self.job_deadline = 0;
        let cycles = self.recal_cycles.max(1);
        self.busy_until = now + cycles;
        self.last_cycles = cycles as u32;
    }

    /// Advances device time. Returns `true` when an interrupt fires on
    /// this call (completion, or a watchdog abort with the error IRQ
    /// enabled).
    pub fn tick(&mut self, now: u64) -> bool {
        if self.busy && self.job_deadline != 0 && now >= self.job_deadline && now < self.busy_until
        {
            // Watchdog abort: the job is cut short with the error latched;
            // `done` still rises so a polling host cannot deadlock.
            self.busy = false;
            self.done = true;
            self.job_deadline = 0;
            self.error |= errcode::WATCHDOG;
            return self.irq_mask & 1 != 0 || self.error_irq_line();
        }
        if self.busy && now >= self.busy_until {
            self.busy = false;
            self.done = true;
            self.job_deadline = 0;
            if self.recal_in_flight {
                self.recal_in_flight = false;
            } else {
                self.jobs_completed += 1;
            }
            return self.irq_mask & 1 != 0;
        }
        false
    }

    /// The next absolute cycle at which [`AccelDevice::tick`] can change
    /// state: the watchdog deadline when it would cut the job short,
    /// otherwise the completion time. `None` while idle — every tick is
    /// then a no-op, which is what lets the system fast-forward across
    /// quiet windows without losing cycle accuracy.
    pub(crate) fn next_event(&self) -> Option<u64> {
        if !self.busy {
            return None;
        }
        Some(
            if self.job_deadline != 0 && self.job_deadline < self.busy_until {
                self.job_deadline
            } else {
                self.busy_until
            },
        )
    }

    /// Optical + electro-optic energy consumed so far \[J\], from the
    /// technology profile: per-vector modulator/receiver/DAC work plus
    /// laser power over the streaming time, plus any PCM reprogramming
    /// pulses burned by recalibrations.
    pub fn energy(&self) -> f64 {
        let n = self.dim() as usize;
        let vectors = self.vectors_processed as f64;
        let io = vectors
            * n as f64
            * (self.tech.modulator_energy_per_symbol
                + self.tech.receiver_energy_per_sample
                + self.tech.dac_energy_per_sample);
        // WDM cuts streaming time W-fold but burns W comb lines at once,
        // so net laser energy per vector is channel-count-invariant.
        let channels = self.wdm_channels.max(1) as f64;
        let streaming_time = vectors / (self.tech.symbol_rate * channels);
        io + self.tech.laser_power(n) * channels * streaming_time + self.programming_energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_with_identity(n: usize) -> AccelDevice {
        let mut d = AccelDevice::new(1e9);
        d.load_matrix(&RMatrix::identity(n));
        d
    }

    #[test]
    fn mmr_roundtrip() {
        let mut d = device_with_identity(4);
        d.mmr_store(mmr::IN_ADDR, 0x100);
        d.mmr_store(mmr::OUT_ADDR, 0x200);
        d.mmr_store(mmr::BATCH, 3);
        d.mmr_store(mmr::IRQ_ENABLE, 1);
        assert_eq!(d.mmr_load(mmr::IN_ADDR), 0x100);
        assert_eq!(d.mmr_load(mmr::OUT_ADDR), 0x200);
        assert_eq!(d.mmr_load(mmr::BATCH), 3);
        assert_eq!(d.mmr_load(mmr::IRQ_ENABLE), 1);
        assert_eq!(d.mmr_load(mmr::DIM), 4);
    }

    #[test]
    fn start_requires_ctrl_write() {
        let mut d = device_with_identity(2);
        assert!(!d.mmr_store(mmr::BATCH, 1));
        assert!(d.mmr_store(mmr::CTRL, 1), "CTRL=1 requests start");
    }

    #[test]
    fn identity_job_copies_vector() {
        let mut d = device_with_identity(3);
        let mut spm = Ram::new(0, 4096);
        // Input vector [1.5, -2.0, 0.25] at 0x100.
        let inputs = [1.5, -2.0, 0.25];
        for (k, &x) in inputs.iter().enumerate() {
            spm.poke(0x100 + 4 * k as u32, to_fixed(x) as u32).unwrap();
        }
        d.mmr_store(mmr::IN_ADDR, 0x100);
        d.mmr_store(mmr::OUT_ADDR, 0x200);
        d.mmr_store(mmr::BATCH, 1);
        assert!(d.start(0, &mut spm));
        assert!(d.is_busy());
        for (k, &x) in inputs.iter().enumerate() {
            let got = from_fixed(spm.peek(0x200 + 4 * k as u32).unwrap() as i32);
            assert!((got - x).abs() < 1e-3, "element {k}: {got} vs {x}");
        }
    }

    #[test]
    fn completion_and_interrupt() {
        let mut d = device_with_identity(2);
        let mut spm = Ram::new(0, 1024);
        d.mmr_store(mmr::IRQ_ENABLE, 1);
        d.mmr_store(mmr::BATCH, 1);
        assert!(d.start(0, &mut spm));
        let cycles = d.job_cycles(1);
        assert!(!d.tick(cycles - 1), "not done yet");
        assert!(d.tick(cycles), "irq fires at completion");
        assert!(d.is_done());
        assert!(!d.is_busy());
        assert_eq!(d.mmr_load(mmr::STATUS), status::DONE);
        // Clearing done via CTRL bit 1.
        d.mmr_store(mmr::CTRL, 2);
        assert!(!d.is_done());
    }

    #[test]
    fn job_cycles_scale_sublinearly_with_small_batches() {
        let d = device_with_identity(8);
        // 1 GHz host, 10 GS/s optics: 10 vectors per host cycle.
        assert_eq!(d.job_cycles(1), d.setup_cycles + 1);
        assert_eq!(d.job_cycles(100), d.setup_cycles + 10);
    }

    #[test]
    fn wdm_channels_cut_streaming_time_not_laser_energy() {
        let mut d = device_with_identity(8);
        let single = d.job_cycles(4000);
        d.wdm_channels = 8;
        let wdm = d.job_cycles(4000);
        assert!(
            wdm < single,
            "8 wavelengths must shorten the job: {single} -> {wdm}"
        );
        assert_eq!(wdm - d.setup_cycles, (single - d.setup_cycles).div_ceil(8));

        // Energy per vector is channel-count-invariant: W comb lines for
        // 1/W of the time.
        let mut a = device_with_identity(8);
        let mut b = device_with_identity(8);
        b.wdm_channels = 8;
        let mut spm = Ram::new(0, 65536);
        for d in [&mut a, &mut b] {
            d.mmr_store(mmr::BATCH, 64);
            assert!(d.start(0, &mut spm));
        }
        assert!((a.energy() - b.energy()).abs() < 1e-18 * a.energy().abs().max(1.0));
    }

    #[test]
    fn hard_fault_bricks_the_device_until_cleared() {
        let mut d = device_with_identity(2);
        let mut spm = Ram::new(0, 1024);
        d.mmr_store(mmr::BATCH, 1);
        d.inject_hard_fault();
        assert!(d.is_hard_faulted());
        assert!(!d.start(0, &mut spm), "bricked device rejects the job");
        assert_eq!(d.error_bits() & errcode::HW_FAULT, errcode::HW_FAULT);
        d.recalibrate(10);
        assert_eq!(d.recal_count(), 0, "recal is rejected too");
        assert!(!d.is_busy());
        // Repair + acknowledge: the device serves jobs again.
        d.clear_hard_fault();
        d.mmr_store(mmr::CTRL, 4);
        assert_eq!(d.error_bits(), 0);
        assert!(d.start(0, &mut spm));
    }

    #[test]
    fn hard_fault_mid_job_aborts_like_a_watchdog() {
        let mut d = device_with_identity(2);
        let mut spm = Ram::new(0, 1024);
        d.mmr_store(mmr::BATCH, 1);
        assert!(d.start(0, &mut spm));
        assert!(d.is_busy());
        d.inject_hard_fault();
        assert!(!d.is_busy(), "in-flight job is cut short");
        assert!(d.is_done(), "done rises so a polling host survives");
        assert_ne!(d.error_bits() & errcode::HW_FAULT, 0);
    }

    #[test]
    fn start_fails_without_matrix() {
        let mut d = AccelDevice::new(1e9);
        let mut spm = Ram::new(0, 64);
        assert!(!d.start(0, &mut spm));
    }

    #[test]
    fn start_fails_on_bad_addresses() {
        let mut d = device_with_identity(4);
        let mut spm = Ram::new(0, 16); // too small
        d.mmr_store(mmr::IN_ADDR, 0);
        d.mmr_store(mmr::OUT_ADDR, 0x4000);
        assert!(!d.start(0, &mut spm));
    }

    #[test]
    fn energy_grows_with_work() {
        let mut d = device_with_identity(4);
        let mut spm = Ram::new(0, 4096);
        d.mmr_store(mmr::BATCH, 10);
        let e0 = d.energy();
        assert!(d.start(0, &mut spm));
        assert!(d.energy() > e0);
        assert_eq!(d.vectors_processed, 10);
    }

    #[test]
    fn double_start_is_rejected_without_touching_the_job() {
        let mut d = device_with_identity(2);
        let mut spm = Ram::new(0, 1024);
        d.mmr_store(mmr::BATCH, 1);
        assert!(d.mmr_store(mmr::CTRL, 1));
        assert!(d.start(0, &mut spm));
        assert!(d.is_busy());
        let before = d.mmr_load(mmr::LAST_CYCLES);
        // Second doorbell while busy: rejected, error latched, job intact.
        assert!(!d.mmr_store(mmr::CTRL, 1));
        assert_eq!(d.error_bits(), errcode::BUSY_REJECT);
        assert_ne!(d.mmr_load(mmr::STATUS) & status::ERROR, 0);
        assert_eq!(d.mmr_load(mmr::LAST_CYCLES), before);
        assert!(d.is_busy());
        // The in-flight job still completes normally.
        assert_eq!(d.vectors_processed, 1);
        d.tick(d.job_cycles(1));
        assert!(d.is_done());
        // CTRL bit 2 acknowledges the error.
        d.mmr_store(mmr::CTRL, 4);
        assert_eq!(d.error_bits(), 0);
        assert_eq!(d.mmr_load(mmr::STATUS) & status::ERROR, 0);
    }

    #[test]
    fn batch_zero_and_dim_zero_jobs_are_rejected() {
        let mut d = device_with_identity(2);
        let mut spm = Ram::new(0, 1024);
        d.mmr_store(mmr::BATCH, 0);
        assert!(!d.start(0, &mut spm));
        assert_eq!(d.error_bits(), errcode::BAD_JOB);
        assert!(!d.is_busy());

        // No matrix programmed: dim() == 0.
        let mut bare = AccelDevice::new(1e9);
        assert_eq!(bare.dim(), 0);
        assert!(!bare.start(0, &mut spm));
        assert_eq!(bare.error_bits(), errcode::BAD_JOB);
    }

    #[test]
    fn spm_range_failure_latches_error_bit() {
        let mut d = device_with_identity(4);
        let mut spm = Ram::new(0, 16); // too small for a 4-vector
        d.mmr_store(mmr::IN_ADDR, 0);
        d.mmr_store(mmr::OUT_ADDR, 0x4000);
        d.mmr_store(mmr::BATCH, 1);
        assert!(!d.start(0, &mut spm));
        assert_eq!(d.error_bits(), errcode::SPM_RANGE);
        assert_ne!(d.mmr_load(mmr::STATUS) & status::ERROR, 0);
    }

    #[test]
    fn watchdog_aborts_overdue_job() {
        let mut d = device_with_identity(4);
        let mut spm = Ram::new(0, 4096);
        d.setup_cycles = 1000; // job takes >> watchdog
        d.mmr_store(mmr::WATCHDOG, 5);
        d.mmr_store(mmr::IRQ_ENABLE, 2); // error IRQ only
        d.mmr_store(mmr::BATCH, 1);
        assert!(d.start(0, &mut spm));
        assert!(!d.tick(4), "before the deadline");
        assert!(d.tick(5), "watchdog abort raises the error IRQ");
        assert!(d.is_done(), "done still rises so polling hosts survive");
        assert!(!d.is_busy());
        assert_eq!(d.error_bits() & errcode::WATCHDOG, errcode::WATCHDOG);
        assert!(d.error_irq_line());
        assert_eq!(d.mmr_load(mmr::WATCHDOG), 5);
    }

    #[test]
    fn error_register_writes_accumulate_and_clear() {
        let mut d = device_with_identity(2);
        d.mmr_store(mmr::ERROR, errcode::CHECKSUM);
        d.mmr_store(mmr::ERROR, errcode::WATCHDOG | 0xFFFF_FF00);
        assert_eq!(
            d.mmr_load(mmr::ERROR),
            errcode::CHECKSUM | errcode::WATCHDOG,
            "writes OR in, masked to defined bits"
        );
        assert!(!d.error_irq_line(), "error IRQ masked by default");
        d.mmr_store(mmr::IRQ_ENABLE, 2);
        assert!(d.error_irq_line());
        d.mmr_store(mmr::CTRL, 4);
        assert_eq!(d.mmr_load(mmr::ERROR), 0);
        assert!(!d.error_irq_line());
    }

    #[test]
    fn drift_perturbs_results_and_recalibration_restores_them() {
        // Weights programmed ~30 simulated years before boot (the
        // non-volatile worst case), then a 1 ns/cycle clock: stale until
        // recalibration resets the age, after which re-drift over a few
        // hundred cycles is negligible.
        let drift = PcmDriftModel {
            nu: 0.05,
            seconds_per_cycle: 1e-9,
            initial_age_s: 1e9,
            ..PcmDriftModel::default()
        };
        let run_job = |d: &mut AccelDevice, now: u64| -> Vec<f64> {
            let mut spm = Ram::new(0, 4096);
            for k in 0..4u32 {
                spm.poke(0x100 + 4 * k, to_fixed(1.0) as u32).unwrap();
            }
            d.mmr_store(mmr::IN_ADDR, 0x100);
            d.mmr_store(mmr::OUT_ADDR, 0x200);
            d.mmr_store(mmr::BATCH, 1);
            assert!(d.start(now, &mut spm));
            d.tick(now + d.job_cycles(1));
            d.mmr_store(mmr::CTRL, 2);
            (0..4u32)
                .map(|k| from_fixed(spm.peek(0x200 + 4 * k).unwrap() as i32))
                .collect()
        };

        let mut d = device_with_identity(4);
        let fresh = run_job(&mut d, 0);
        for v in &fresh {
            assert!((v - 1.0).abs() < 1e-3, "fresh weights are accurate: {v}");
        }
        // Turn retention loss on: the aged identity has sagged visibly.
        d.enable_drift(drift);
        let stale = run_job(&mut d, 100_000);
        assert!(
            stale.iter().any(|v| (v - 1.0).abs() > 0.05),
            "drift must degrade the job: {stale:?}"
        );
        // Recalibrate: reprogram + re-realize, busy for recal_cycles.
        let e0 = d.energy();
        assert!(!d.mmr_store(mmr::CTRL, 8), "recal is not a job start");
        assert!(d.take_recal_request());
        d.recalibrate(100_100);
        assert!(d.is_busy());
        d.tick(100_100 + d.recal_cycles);
        assert!(d.is_done());
        d.mmr_store(mmr::CTRL, 2);
        assert_eq!(d.recal_count(), 1);
        assert_eq!(d.mmr_load(mmr::RECAL_COUNT), 1);
        assert!(d.energy() > e0, "recal burns PCM programming pulses");
        // Accuracy is restored right after reprogramming.
        let recovered = run_job(&mut d, 100_400);
        for v in &recovered {
            assert!((v - 1.0).abs() < 1e-2, "recalibrated weights: {v}");
        }
    }
}

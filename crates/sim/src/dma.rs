//! The DMA engine: "the gem5-based infrastructure includes Direct Memory
//! Access (DMA) devices ... that can be seamlessly integrated into
//! accelerator designs" (paper §5). Moves blocks between DRAM and SPM at
//! a fixed bandwidth so the host does not copy word-by-word.

use crate::ram::Ram;

/// How the engine will behave over the coming cycles — the contract the
/// `wfi` fast-forward scheduler relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DmaSchedule {
    /// No transfer in flight: every tick is a no-op.
    Idle,
    /// The transfer cannot stall: it completes (raising the interrupt if
    /// enabled) on exactly the `n`-th tick from now, and each tick only
    /// moves words between the two memories.
    CompletesIn(u64),
    /// The transfer touches addresses outside both memories and may
    /// stall with observable partial side effects (a stalled source read
    /// is re-counted every tick): it must be ticked cycle by cycle.
    Opaque,
}

/// MMR offsets (bytes from the device base).
pub mod mmr {
    /// Write 1 to start; write 2 to clear `done`.
    pub const CTRL: u32 = 0x00;
    /// Bit 0 = busy, bit 1 = done.
    pub const STATUS: u32 = 0x04;
    /// Source byte address (DRAM or SPM).
    pub const SRC: u32 = 0x08;
    /// Destination byte address (DRAM or SPM).
    pub const DST: u32 = 0x0C;
    /// Transfer length in bytes (word multiple).
    pub const LEN: u32 = 0x10;
    /// Bit 0 enables the completion interrupt.
    pub const IRQ_ENABLE: u32 = 0x14;
    /// Size of the register bank.
    pub const SIZE: u32 = 0x18;
}

/// The DMA device.
#[derive(Debug, Clone, PartialEq)]
pub struct DmaDevice {
    src: u32,
    dst: u32,
    len: u32,
    irq_enable: bool,
    busy: bool,
    done: bool,
    // In-flight transfer cursor.
    moved: u32,
    /// Words moved per cycle while busy.
    pub words_per_cycle: u32,
    /// Total bytes moved (stats).
    pub bytes_moved: u64,
}

impl DmaDevice {
    /// Creates an idle DMA engine with the given bandwidth.
    pub fn new(words_per_cycle: u32) -> Self {
        DmaDevice {
            src: 0,
            dst: 0,
            len: 0,
            irq_enable: false,
            busy: false,
            done: false,
            moved: 0,
            words_per_cycle: words_per_cycle.max(1),
            bytes_moved: 0,
        }
    }

    /// `true` while a transfer is in flight.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// `true` when a transfer completed and was not yet acknowledged.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Handles an MMR read.
    pub fn mmr_load(&self, offset: u32) -> u32 {
        match offset & !3 {
            mmr::STATUS => (self.busy as u32) | ((self.done as u32) << 1),
            mmr::SRC => self.src,
            mmr::DST => self.dst,
            mmr::LEN => self.len,
            mmr::IRQ_ENABLE => self.irq_enable as u32,
            _ => 0,
        }
    }

    /// Handles an MMR write. Returns `true` if a transfer was started.
    pub fn mmr_store(&mut self, offset: u32, value: u32) -> bool {
        match offset & !3 {
            mmr::CTRL => {
                if value & 2 != 0 {
                    self.done = false;
                }
                if value & 1 != 0 && !self.busy && self.len > 0 {
                    self.busy = true;
                    self.done = false;
                    self.moved = 0;
                    return true;
                }
                false
            }
            mmr::SRC => {
                self.src = value & !3;
                false
            }
            mmr::DST => {
                self.dst = value & !3;
                false
            }
            mmr::LEN => {
                self.len = value & !3;
                false
            }
            mmr::IRQ_ENABLE => {
                self.irq_enable = value & 1 != 0;
                false
            }
            _ => false,
        }
    }

    /// Classifies the in-flight transfer for the fast-forward scheduler.
    /// Conservative: anything not provably stall-free is [`DmaSchedule::Opaque`].
    pub(crate) fn schedule(&self, mem_a: &Ram, mem_b: &Ram) -> DmaSchedule {
        if !self.busy {
            return DmaSchedule::Idle;
        }
        // The remaining source and destination word ranges must each sit
        // entirely inside one memory; [`DmaDevice::tick`] then never hits
        // the stall paths and completion timing is pure arithmetic.
        let lo = self.moved;
        let hi = self.len - 4; // len > 0 and word-aligned while busy
        let in_one = |base: u32| {
            // Overflowing ranges wrap mid-transfer and can leave the
            // memory even when both endpoints are inside it.
            let Some(last) = base.checked_add(hi) else {
                return false;
            };
            let first = base + lo;
            (mem_a.contains(first) && mem_a.contains(last))
                || (mem_b.contains(first) && mem_b.contains(last))
        };
        if !in_one(self.src) || !in_one(self.dst) {
            return DmaSchedule::Opaque;
        }
        let words = ((self.len - self.moved) / 4) as u64;
        DmaSchedule::CompletesIn(words.div_ceil(self.words_per_cycle as u64).max(1))
    }

    /// Moves up to `words_per_cycle` words this cycle between the two
    /// memories. Returns `true` when the completion interrupt fires.
    ///
    /// Addresses that fall in neither memory stall the transfer silently
    /// (hardware would raise a bus error; the fault-injection campaign
    /// observes this as a hang).
    pub fn tick(&mut self, mem_a: &mut Ram, mem_b: &mut Ram) -> bool {
        if !self.busy {
            return false;
        }
        for _ in 0..self.words_per_cycle {
            if self.moved >= self.len {
                break;
            }
            let s = self.src + self.moved;
            let d = self.dst + self.moved;
            let word = if mem_a.contains(s) {
                mem_a.load(s).ok()
            } else if mem_b.contains(s) {
                mem_b.load(s).ok()
            } else {
                None
            };
            let Some(word) = word else {
                return false;
            };
            let ok = if mem_a.contains(d) {
                mem_a.store(d, word).is_ok()
            } else if mem_b.contains(d) {
                mem_b.store(d, word).is_ok()
            } else {
                false
            };
            if !ok {
                return false;
            }
            self.moved += 4;
            self.bytes_moved += 4;
        }
        if self.moved >= self.len {
            self.busy = false;
            self.done = true;
            return self.irq_enable;
        }
        false
    }

    /// Advances the transfer by `ticks` cycles in one pass, with
    /// per-word accounting identical to calling [`DmaDevice::tick`] that
    /// many times (each word is one counted load and one counted store).
    /// Returns `true` when the completion interrupt fires within the
    /// span. Only valid for [`DmaSchedule::CompletesIn`] transfers; a
    /// stall mid-span (which `schedule` rules out) stops early exactly as
    /// `tick` would.
    pub(crate) fn advance_bulk(&mut self, ticks: u64, mem_a: &mut Ram, mem_b: &mut Ram) -> bool {
        if !self.busy || ticks == 0 {
            return false;
        }
        let remaining = ((self.len - self.moved) / 4) as u64;
        let budget = ticks.saturating_mul(self.words_per_cycle as u64);
        let count = remaining.min(budget) as usize;
        let s = self.src + self.moved;
        let d = self.dst + self.moved;
        // One bulk copy when each range sits inside one memory (the
        // [`DmaSchedule::CompletesIn`] contract); the copy applies the
        // exact accounting of `count` per-word load/store pairs. Word by
        // word otherwise, reproducing `tick`'s stall behavior.
        let last = 4 * (count as u32 - 1);
        let one_mem =
            |m: &Ram, a: u32| m.contains(a) && a.checked_add(last).is_some_and(|e| m.contains(e));
        let copied = if one_mem(mem_a, s) {
            if one_mem(mem_a, d) {
                mem_a.copy_words_within(s, d, count).is_ok()
            } else if one_mem(mem_b, d) {
                mem_a.copy_words_to(s, mem_b, d, count).is_ok()
            } else {
                false
            }
        } else if one_mem(mem_b, s) {
            if one_mem(mem_b, d) {
                mem_b.copy_words_within(s, d, count).is_ok()
            } else if one_mem(mem_a, d) {
                mem_b.copy_words_to(s, mem_a, d, count).is_ok()
            } else {
                false
            }
        } else {
            false
        };
        if copied {
            self.moved += 4 * count as u32;
            self.bytes_moved += 4 * count as u64;
        } else {
            for _ in 0..count {
                let s = self.src + self.moved;
                let d = self.dst + self.moved;
                let word = if mem_a.contains(s) {
                    mem_a.load(s).ok()
                } else if mem_b.contains(s) {
                    mem_b.load(s).ok()
                } else {
                    None
                };
                let Some(word) = word else {
                    return false;
                };
                let ok = if mem_a.contains(d) {
                    mem_a.store(d, word).is_ok()
                } else if mem_b.contains(d) {
                    mem_b.store(d, word).is_ok()
                } else {
                    false
                };
                if !ok {
                    return false;
                }
                self.moved += 4;
                self.bytes_moved += 4;
            }
        }
        if self.moved >= self.len {
            self.busy = false;
            self.done = true;
            return self.irq_enable;
        }
        false
    }

    /// The byte range the in-flight transfer writes, for code-cache
    /// invalidation. `None` when idle.
    pub(crate) fn active_write_range(&self) -> Option<(u32, u32)> {
        self.busy
            .then(|| (self.dst, self.dst.saturating_add(self.len)))
    }
}

impl Default for DmaDevice {
    /// A 2-word-per-cycle (8 B/cycle) engine.
    fn default() -> Self {
        DmaDevice::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memories() -> (Ram, Ram) {
        (Ram::new(0x0000_0000, 4096), Ram::new(0x1000_0000, 4096))
    }

    #[test]
    fn transfers_block_dram_to_spm() {
        let (mut dram, mut spm) = memories();
        for k in 0..8u32 {
            dram.poke(k * 4, k + 100).unwrap();
        }
        let mut dma = DmaDevice::new(2);
        dma.mmr_store(mmr::SRC, 0);
        dma.mmr_store(mmr::DST, 0x1000_0100);
        dma.mmr_store(mmr::LEN, 32);
        dma.mmr_store(mmr::IRQ_ENABLE, 1);
        assert!(dma.mmr_store(mmr::CTRL, 1));
        // 8 words at 2 words/cycle = 4 ticks; irq on the last.
        let mut fired = false;
        for _ in 0..4 {
            fired = dma.tick(&mut dram, &mut spm);
        }
        assert!(fired);
        assert!(dma.is_done());
        for k in 0..8u32 {
            assert_eq!(spm.peek(0x1000_0100 + k * 4).unwrap(), k + 100);
        }
        assert_eq!(dma.bytes_moved, 32);
    }

    #[test]
    fn bandwidth_sets_duration() {
        let (mut dram, mut spm) = memories();
        let mut fast = DmaDevice::new(8);
        fast.mmr_store(mmr::SRC, 0);
        fast.mmr_store(mmr::DST, 0x1000_0000);
        fast.mmr_store(mmr::LEN, 64);
        fast.mmr_store(mmr::CTRL, 1);
        let mut ticks = 0;
        while fast.is_busy() {
            let _ = fast.tick(&mut dram, &mut spm);
            ticks += 1;
        }
        assert_eq!(ticks, 2, "16 words at 8/cycle");
    }

    #[test]
    fn spm_to_dram_direction() {
        let (mut dram, mut spm) = memories();
        spm.poke(0x1000_0000, 0x42).unwrap();
        let mut dma = DmaDevice::default();
        dma.mmr_store(mmr::SRC, 0x1000_0000);
        dma.mmr_store(mmr::DST, 0x80);
        dma.mmr_store(mmr::LEN, 4);
        dma.mmr_store(mmr::CTRL, 1);
        let _ = dma.tick(&mut dram, &mut spm);
        assert_eq!(dram.peek(0x80).unwrap(), 0x42);
    }

    #[test]
    fn zero_length_never_starts() {
        let mut dma = DmaDevice::default();
        dma.mmr_store(mmr::LEN, 0);
        assert!(!dma.mmr_store(mmr::CTRL, 1));
        assert!(!dma.is_busy());
    }

    #[test]
    fn bad_address_stalls() {
        let (mut dram, mut spm) = memories();
        let mut dma = DmaDevice::default();
        dma.mmr_store(mmr::SRC, 0x9000_0000);
        dma.mmr_store(mmr::DST, 0);
        dma.mmr_store(mmr::LEN, 4);
        dma.mmr_store(mmr::CTRL, 1);
        for _ in 0..10 {
            assert!(!dma.tick(&mut dram, &mut spm));
        }
        assert!(dma.is_busy(), "stalled, not completed");
    }

    #[test]
    fn status_and_ack() {
        let (mut dram, mut spm) = memories();
        let mut dma = DmaDevice::default();
        dma.mmr_store(mmr::SRC, 0);
        dma.mmr_store(mmr::DST, 0x1000_0000);
        dma.mmr_store(mmr::LEN, 8);
        dma.mmr_store(mmr::CTRL, 1);
        assert_eq!(dma.mmr_load(mmr::STATUS), 1);
        let _ = dma.tick(&mut dram, &mut spm);
        assert_eq!(dma.mmr_load(mmr::STATUS), 2);
        dma.mmr_store(mmr::CTRL, 2);
        assert_eq!(dma.mmr_load(mmr::STATUS), 0);
    }
}

//! Bit-identity of the fast simulation paths (decoded-block cache +
//! `wfi` fast-forward) against the seed interpreter, on workloads chosen
//! to attack the cache's weak spots: randomized program grids, faults
//! injected into already-cached text, and DMA writes over code.

use neuropulsim_linalg::RMatrix;
use neuropulsim_riscv::cpu::Halt;
use neuropulsim_riscv::isa::{encode, Instruction};
use neuropulsim_sim::campaign::{CampaignConfig, Stratum};
use neuropulsim_sim::fault::{Campaign, FaultKind, FaultTarget};
use neuropulsim_sim::firmware::{accel_offload, DramLayout};
use neuropulsim_sim::system::{RunOutcome, System};

fn lcg(state: &mut u64) -> u32 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 33) as u32
}

/// Deterministic random program: straight-line ALU/memory traffic with
/// forward-only branches (always terminates) ending in `ecall`.
fn random_program(seed: u64, len: usize) -> Vec<u32> {
    use Instruction::*;
    let mut s = seed;
    let mut prog = Vec::with_capacity(len + 1);
    for k in 0..len {
        let rd = (1 + lcg(&mut s) % 15) as u8;
        let rs1 = (lcg(&mut s) % 16) as u8;
        let rs2 = (lcg(&mut s) % 16) as u8;
        let inst = match lcg(&mut s) % 10 {
            0 => Addi {
                rd,
                rs1,
                imm: (lcg(&mut s) % 4096) as i32 - 2048,
            },
            1 => Add { rd, rs1, rs2 },
            2 => Sub { rd, rs1, rs2 },
            3 => Xor { rd, rs1, rs2 },
            4 => Mul { rd, rs1, rs2 },
            5 => Slli {
                rd,
                rs1,
                shamt: (lcg(&mut s) % 32) as u8,
            },
            6 => Sltu { rd, rs1, rs2 },
            7 => Sw {
                rs1: 0,
                rs2,
                offset: (0x2000 + (lcg(&mut s) % 255) * 4) as i32,
            },
            8 => Lw {
                rd,
                rs1: 0,
                offset: (0x2000 + (lcg(&mut s) % 255) * 4) as i32,
            },
            _ if k + 2 < len => {
                if lcg(&mut s).is_multiple_of(2) {
                    Beq {
                        rs1,
                        rs2,
                        offset: 8,
                    }
                } else {
                    Bne {
                        rs1,
                        rs2,
                        offset: 8,
                    }
                }
            }
            _ => Addi { rd, rs1, imm: 1 },
        };
        prog.push(encode(inst));
    }
    prog.push(encode(Ecall));
    prog
}

fn system_in_mode(fast: bool) -> System {
    let mut sys = System::new();
    sys.cpu.set_block_cache_enabled(fast);
    sys.wfi_fast_forward = fast;
    sys
}

/// Runs `words` in both modes with a mid-run bit flip into the text
/// segment, asserting every observable matches.
fn assert_identical_with_text_fault(words: &[u32], flip: Option<(u32, u8)>, tag: &str) {
    let run = |fast: bool| {
        let mut sys = system_in_mode(fast);
        sys.load_firmware(words);
        // Warm the block cache (and make partial progress) first, so the
        // injected fault lands in text that is already cached.
        let first = sys.run(137);
        if let Some((addr, bit)) = flip {
            sys.platform.dram.flip_bit(addr, bit).unwrap();
        }
        let second = sys.run(100_000);
        (first, second, sys)
    };
    let (f1, f2, fast_sys) = run(true);
    let (s1, s2, slow_sys) = run(false);
    assert_eq!(f1, s1, "{tag}: warm-up reports must match");
    assert_eq!(f2, s2, "{tag}: post-fault reports must match");
    assert_eq!(
        fast_sys.cpu, slow_sys.cpu,
        "{tag}: same architectural state"
    );
    assert_eq!(
        fast_sys.platform.dram.reads, slow_sys.platform.dram.reads,
        "{tag}: same DRAM read accounting (fetches included)"
    );
    assert_eq!(
        fast_sys.platform.dram.writes, slow_sys.platform.dram.writes,
        "{tag}: same DRAM write accounting"
    );
}

#[test]
fn randomized_program_grid_is_bit_identical() {
    for seed in 0..12u64 {
        let words = random_program(seed * 31 + 5, 220);
        assert_identical_with_text_fault(&words, None, &format!("grid seed {seed}"));
    }
}

#[test]
fn faults_into_cached_text_take_effect_identically() {
    // Flip bits in words across the text segment — including high bits
    // that turn instructions illegal — after the block cache has run the
    // code once. The fault must be seen on the exact same cycle as the
    // seed interpreter sees it, whatever the outcome class.
    for seed in 0..12u64 {
        let words = random_program(seed * 17 + 3, 220);
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) + 1;
        let word_idx = lcg(&mut s) % 220;
        let bit = (lcg(&mut s) % 32) as u8;
        assert_identical_with_text_fault(
            &words,
            Some((4 * word_idx, bit)),
            &format!("text fault seed {seed} word {word_idx} bit {bit}"),
        );
    }
}

#[test]
fn dma_overwrite_of_cached_text_is_seen() {
    use Instruction::*;
    // A subroutine at `target` is called once (caching its block), then
    // DMA rewrites it in place while the CPU sleeps in wfi; the second
    // call must execute the patched code in both modes.
    const TARGET: i32 = 16 * 4;
    const STAGE: i32 = 0x200;
    let program: Vec<u32> = [
        Jal { rd: 1, offset: 64 }, // 0: first call to target
        Lui {
            rd: 5,
            imm: 0x4100_0000,
        }, // 1: t0 = DMA base
        Addi {
            rd: 7,
            rs1: 0,
            imm: STAGE,
        }, // 2: src = staged patch
        Sw {
            rs1: 5,
            rs2: 7,
            offset: 8,
        }, // 3: SRC
        Addi {
            rd: 7,
            rs1: 0,
            imm: TARGET,
        }, // 4: dst = target text
        Sw {
            rs1: 5,
            rs2: 7,
            offset: 12,
        }, // 5: DST
        Addi {
            rd: 7,
            rs1: 0,
            imm: 8,
        }, // 6: len = 2 words
        Sw {
            rs1: 5,
            rs2: 7,
            offset: 16,
        }, // 7: LEN
        Addi {
            rd: 7,
            rs1: 0,
            imm: 1,
        }, // 8
        Sw {
            rs1: 5,
            rs2: 7,
            offset: 20,
        }, // 9: IRQ_ENABLE
        Sw {
            rs1: 5,
            rs2: 7,
            offset: 0,
        }, // 10: start
        Wfi,                       // 11
        Addi {
            rd: 7,
            rs1: 0,
            imm: 2,
        }, // 12
        Sw {
            rs1: 5,
            rs2: 7,
            offset: 0,
        }, // 13: ack done
        Jal { rd: 1, offset: 8 },  // 14: second call to target
        Ecall,                     // 15
        Addi {
            rd: 10,
            rs1: 0,
            imm: 1,
        }, // 16: target: a0 = 1
        Jalr {
            rd: 0,
            rs1: 1,
            offset: 0,
        }, // 17: return
    ]
    .iter()
    .map(|&i| encode(i))
    .collect();
    let patch = [
        encode(Addi {
            rd: 10,
            rs1: 0,
            imm: 99,
        }),
        encode(Jalr {
            rd: 0,
            rs1: 1,
            offset: 0,
        }),
    ];

    let run = |fast: bool| {
        let mut sys = system_in_mode(fast);
        sys.load_firmware(&program);
        sys.platform.dram.poke_words(STAGE as u32, &patch);
        let report = sys.run(100_000);
        (report, sys)
    };
    let (fast_report, fast_sys) = run(true);
    let (slow_report, slow_sys) = run(false);
    assert_eq!(fast_report.outcome, RunOutcome::Halted(Halt::Ecall));
    assert_eq!(fast_report, slow_report);
    assert_eq!(fast_sys.cpu, slow_sys.cpu);
    assert_eq!(
        fast_sys.cpu.reg(10),
        99,
        "second call must run the DMA-patched instruction"
    );
}

#[test]
fn mini_campaign_is_bit_identical_across_modes() {
    let n = 4;
    let batch = 4;
    let layout = DramLayout::default();
    let w = RMatrix::from_fn(n, n, |i, j| 0.3 * ((i as f64 - j as f64) * 0.41).cos());
    let x: Vec<Vec<f64>> = (0..batch)
        .map(|v| {
            (0..n)
                .map(|k| 0.2 * ((v * n + k) as f64 * 0.19).sin())
                .collect()
        })
        .collect();

    let report_json = |fast: bool| {
        let w = w.clone();
        let x = x.clone();
        let campaign = Campaign::new(
            move || {
                let mut sys = system_in_mode(fast);
                sys.platform.accel.load_matrix(&w);
                for (v, col) in x.iter().enumerate() {
                    sys.write_fixed_vector(layout.x_addr + (v * n * 4) as u32, col);
                }
                sys.load_firmware_source(&accel_offload(n, batch, layout));
                sys
            },
            move |sys| {
                (0..n * batch)
                    .map(|k| {
                        sys.platform
                            .dram
                            .peek(layout.y_addr + 4 * k as u32)
                            .unwrap_or(0)
                    })
                    .collect()
            },
            20_000,
        );
        let words = (n * batch) as u32;
        let strata = vec![
            Stratum::new(
                "dram-inputs",
                (0..words)
                    .map(|k| FaultTarget::Dram {
                        addr: layout.x_addr + 4 * k,
                    })
                    .collect(),
            ),
            Stratum::new(
                "text",
                (0..32).map(|k| FaultTarget::Dram { addr: 4 * k }).collect(),
            ),
            Stratum::new(
                "cpu-registers",
                (1..32)
                    .map(|r| FaultTarget::Register { index: r })
                    .collect(),
            ),
        ];
        let cfg = CampaignConfig {
            cadence: 96,
            injections: 45,
            ..CampaignConfig::default()
        };
        campaign
            .run_stratified("mini", 11, FaultKind::Transient, &strata, &cfg)
            .to_json()
    };

    assert_eq!(
        report_json(true),
        report_json(false),
        "campaign reports must be byte-identical with fast paths on vs off"
    );
}

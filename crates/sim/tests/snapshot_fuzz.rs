//! Fuzz: `System::snapshot`/`restore` round-trips taken at random cut
//! points — including mid-decoded-block and mid-wfi-fast-forward —
//! must leave resumed runs bit-identical to uninterrupted ones over
//! seeded random workloads.

use neuropulsim_linalg::parallel::split_seed;
use neuropulsim_linalg::RMatrix;
use neuropulsim_sim::firmware::{accel_offload, software_mvm, DramLayout};
use neuropulsim_sim::system::{RunOutcome, System};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BUDGET: u64 = 10_000_000;

/// Builds a randomized MVM workload: matrix order, batch count,
/// weights and inputs all derive from `seed`. `offload` selects the
/// accelerator firmware (which sleeps in `wfi` during transfers) over
/// the pure-software kernel (straight-line decoded-block execution).
fn build_system(seed: u64, offload: bool) -> (System, DramLayout, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2usize..7);
    let batch = rng.gen_range(1usize..3);
    let layout = DramLayout::default();
    let mut sys = System::new();
    let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    sys.write_fixed_vector(layout.x_addr, &x);
    if offload {
        sys.platform.accel.load_matrix(&w);
        sys.load_firmware_source(&accel_offload(n, batch, layout));
    } else {
        sys.write_fixed_vector(layout.w_addr, w.as_slice());
        sys.load_firmware_source(&software_mvm(n, batch, layout));
    }
    (sys, layout, n)
}

fn signature(sys: &System, layout: DramLayout, n: usize) -> Vec<u32> {
    (0..n)
        .map(|k| {
            sys.platform
                .dram
                .peek(layout.y_addr + 4 * k as u32)
                .unwrap_or(0)
        })
        .collect()
}

/// Runs `seed`'s workload uninterrupted, then re-runs it with a
/// snapshot/restore cut at each of `cuts` random cycle counts,
/// checking both resume paths (`to_system` and in-place `restore`)
/// against the reference. Returns how many cuts landed inside a wfi
/// sleep window.
fn check_cuts(seed: u64, offload: bool, cuts: usize) -> usize {
    let (mut reference, layout, n) = build_system(seed, offload);
    let ref_report = reference.run(BUDGET);
    assert!(
        matches!(ref_report.outcome, RunOutcome::Halted(_)),
        "seed {seed}: reference workload must halt"
    );
    let mut rng = StdRng::seed_from_u64(split_seed(seed, 0xc07));
    let mut wfi_cuts = 0;
    for _ in 0..cuts {
        let cut = rng.gen_range(1..ref_report.cycles.max(2));
        let (mut sys, _, _) = build_system(seed, offload);
        if sys.run_cycles_bounded(cut, BUDGET).is_some() {
            continue; // workload finished before the cut
        }
        if sys.cpu.waiting_for_interrupt {
            wfi_cuts += 1;
        }
        let snap = sys.snapshot();

        // Path 1: rebuild a fresh system from the snapshot.
        let mut resumed = snap.to_system();
        assert_eq!(resumed.cpu, sys.cpu, "seed {seed} cut {cut}: rebuild");
        let report = resumed.run(BUDGET);
        assert_eq!(report.outcome, ref_report.outcome, "seed {seed} cut {cut}");
        assert_eq!(resumed.cpu, reference.cpu, "seed {seed} cut {cut}: cpu");
        assert_eq!(
            signature(&resumed, layout, n),
            signature(&reference, layout, n),
            "seed {seed} cut {cut}: readout"
        );
        assert_eq!(
            resumed.platform.dram.reads, reference.platform.dram.reads,
            "seed {seed} cut {cut}: dram access accounting"
        );

        // Path 2: keep running past the cut, then roll back in place.
        let _ = sys.run_cycles_bounded(cut / 2 + 1, BUDGET);
        sys.restore(&snap);
        assert_eq!(
            sys.cpu.cycles, snap.cycle,
            "seed {seed} cut {cut}: rollback"
        );
        let report = sys.run(BUDGET);
        assert_eq!(report.outcome, ref_report.outcome, "seed {seed} cut {cut}");
        assert_eq!(
            sys.cpu, reference.cpu,
            "seed {seed} cut {cut}: restored cpu"
        );
        assert_eq!(
            signature(&sys, layout, n),
            signature(&reference, layout, n),
            "seed {seed} cut {cut}: restored readout"
        );
    }
    wfi_cuts
}

#[test]
fn snapshot_roundtrip_mid_block_over_random_programs() {
    // Software MVM runs entirely through the decoded-block
    // interpreter, so random cuts land mid-block.
    for i in 0..12u64 {
        check_cuts(split_seed(0x5eed_b10c, i), false, 3);
    }
}

#[test]
fn snapshot_roundtrip_mid_wfi_fast_forward() {
    // The offload firmware sleeps in wfi while the DMA/accelerator
    // pipeline runs; with fast-forward on (the default), bounded runs
    // stop inside those windows. At least some cuts must land there
    // for this test to mean anything.
    let mut wfi_cuts = 0;
    for i in 0..12u64 {
        wfi_cuts += check_cuts(split_seed(0x5eed_0f1f, i), true, 4);
    }
    assert!(
        wfi_cuts > 0,
        "no cut point landed inside a wfi fast-forward window"
    );
}

//! Fuzz: `System::snapshot`/`restore` round-trips taken at random cut
//! points — including mid-decoded-block, mid-wfi-fast-forward, and with
//! multi-PE fabric jobs in flight — must leave resumed runs
//! bit-identical to uninterrupted ones over seeded random workloads.

use neuropulsim_linalg::parallel::split_seed;
use neuropulsim_linalg::RMatrix;
use neuropulsim_sim::accel::PcmDriftModel;
use neuropulsim_sim::firmware::{accel_offload, cluster_offload, software_mvm, DramLayout};
use neuropulsim_sim::serve::{
    synthetic_load, InferenceServer, LoadSpec, PeFault, PeHealth, PeSpec, ServeConfig,
};
use neuropulsim_sim::system::{RunOutcome, System};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BUDGET: u64 = 10_000_000;

/// Which firmware the randomized workload runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    /// Pure-software MVM: straight-line decoded-block execution.
    Software,
    /// Software MVM sized so its inner loops cross the trace
    /// compiler's hot threshold: cuts land mid-trace and mid-bulk-
    /// retire.
    SoftwareHot,
    /// Single-accelerator offload: sleeps in `wfi` during transfers.
    Offload,
    /// Work-queue GeMM sharded over a 3-PE fabric (primary + 2 extra
    /// PEs): cuts land while several devices hold in-flight jobs.
    Cluster,
}

/// Builds a randomized MVM workload: matrix order, batch count, weights
/// and inputs all derive from `seed`.
fn build_system(seed: u64, workload: Workload) -> (System, DramLayout, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = match workload {
        Workload::SoftwareHot => rng.gen_range(4usize..7),
        _ => rng.gen_range(2usize..7),
    };
    let batch = match workload {
        Workload::Cluster => {
            let tile = rng.gen_range(1usize..3);
            tile * rng.gen_range(2usize..5) // several tiles to shard
        }
        Workload::SoftwareHot => rng.gen_range(8usize..13),
        _ => rng.gen_range(1usize..3),
    };
    let layout = DramLayout::default();
    let mut sys = System::new();
    let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    for v in 0..batch {
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        sys.write_fixed_vector(layout.x_addr + (v * n * 4) as u32, &x);
    }
    match workload {
        Workload::Software | Workload::SoftwareHot => {
            sys.write_fixed_vector(layout.w_addr, w.as_slice());
            sys.load_firmware_source(&software_mvm(n, batch, layout));
        }
        Workload::Offload => {
            sys.platform.accel.load_matrix(&w);
            sys.load_firmware_source(&accel_offload(n, batch, layout));
        }
        Workload::Cluster => {
            sys.platform.accel.load_matrix(&w);
            for _ in 0..2 {
                sys.platform.add_pe();
            }
            for pe in &mut sys.platform.extra_pes {
                pe.load_matrix(&w);
            }
            let tile = (1..=batch)
                .rev()
                .find(|t| batch % t == 0 && *t <= 2)
                .unwrap_or(1);
            sys.load_firmware_source(&cluster_offload(n, batch, 3, tile, layout));
        }
    }
    (sys, layout, n * batch)
}

fn signature(sys: &System, layout: DramLayout, words: usize) -> Vec<u32> {
    (0..words)
        .map(|k| {
            sys.platform
                .dram
                .peek(layout.y_addr + 4 * k as u32)
                .unwrap_or(0)
        })
        .collect()
}

/// Interesting machine states the random cuts landed in.
#[derive(Default)]
struct CutStats {
    /// Cuts inside a wfi sleep window.
    wfi: usize,
    /// Cuts taken while at least one accelerator held an in-flight job.
    busy: usize,
    /// Cuts taken after the trace compiler had taken over hot code.
    in_trace_tier: usize,
    /// Cuts whose budget boundary sliced a compiled trace mid-body
    /// (the trace executor recorded a budget side exit).
    mid_trace_body: usize,
}

/// Runs `seed`'s workload uninterrupted, then re-runs it with a
/// snapshot/restore cut at each of `cuts` random cycle counts,
/// checking both resume paths (`to_system` and in-place `restore`)
/// against the reference.
fn check_cuts(seed: u64, workload: Workload, cuts: usize) -> CutStats {
    let (mut reference, layout, words) = build_system(seed, workload);
    let ref_report = reference.run(BUDGET);
    assert!(
        matches!(ref_report.outcome, RunOutcome::Halted(_)),
        "seed {seed}: reference workload must halt"
    );
    let mut rng = StdRng::seed_from_u64(split_seed(seed, 0xc07));
    let mut stats = CutStats::default();
    for _ in 0..cuts {
        let cut = rng.gen_range(1..ref_report.cycles.max(2));
        let (mut sys, _, _) = build_system(seed, workload);
        if sys.run_cycles_bounded(cut, BUDGET).is_some() {
            continue; // workload finished before the cut
        }
        if sys.cpu.waiting_for_interrupt {
            stats.wfi += 1;
        }
        if sys.platform.accel.is_busy() || sys.platform.extra_pes.iter().any(|pe| pe.is_busy()) {
            stats.busy += 1;
        }
        let perf = sys.cpu.perf_counters();
        if perf.trace_hits > 0 {
            stats.in_trace_tier += 1;
        }
        if perf.trace_exit_budget > 0 {
            stats.mid_trace_body += 1;
        }
        let snap = sys.snapshot();

        // Path 1: rebuild a fresh system from the snapshot.
        let mut resumed = snap.to_system();
        assert_eq!(resumed.cpu, sys.cpu, "seed {seed} cut {cut}: rebuild");
        let report = resumed.run(BUDGET);
        assert_eq!(report.outcome, ref_report.outcome, "seed {seed} cut {cut}");
        assert_eq!(resumed.cpu, reference.cpu, "seed {seed} cut {cut}: cpu");
        assert_eq!(
            signature(&resumed, layout, words),
            signature(&reference, layout, words),
            "seed {seed} cut {cut}: readout"
        );
        assert_eq!(
            resumed.platform.dram.reads, reference.platform.dram.reads,
            "seed {seed} cut {cut}: dram access accounting"
        );

        // Path 2: keep running past the cut, then roll back in place.
        let _ = sys.run_cycles_bounded(cut / 2 + 1, BUDGET);
        sys.restore(&snap);
        assert_eq!(
            sys.cpu.cycles, snap.cycle,
            "seed {seed} cut {cut}: rollback"
        );
        let report = sys.run(BUDGET);
        assert_eq!(report.outcome, ref_report.outcome, "seed {seed} cut {cut}");
        assert_eq!(
            sys.cpu, reference.cpu,
            "seed {seed} cut {cut}: restored cpu"
        );
        assert_eq!(
            signature(&sys, layout, words),
            signature(&reference, layout, words),
            "seed {seed} cut {cut}: restored readout"
        );
    }
    stats
}

#[test]
fn snapshot_roundtrip_mid_block_over_random_programs() {
    // Software MVM runs entirely through the decoded-block
    // interpreter, so random cuts land mid-block.
    for i in 0..12u64 {
        check_cuts(split_seed(0x5eed_b10c, i), Workload::Software, 3);
    }
}

#[test]
fn snapshot_roundtrip_mid_wfi_fast_forward() {
    // The offload firmware sleeps in wfi while the DMA/accelerator
    // pipeline runs; with fast-forward on (the default), bounded runs
    // stop inside those windows. At least some cuts must land there
    // for this test to mean anything.
    let mut wfi_cuts = 0;
    for i in 0..12u64 {
        wfi_cuts += check_cuts(split_seed(0x5eed_0f1f, i), Workload::Offload, 4).wfi;
    }
    assert!(
        wfi_cuts > 0,
        "no cut point landed inside a wfi fast-forward window"
    );
}

#[test]
fn snapshot_roundtrip_mid_trace_and_mid_bulk_retire() {
    // Hot software MVMs run inside compiled traces retired in bulk, so
    // a random cycle cut is serviced by the trace executor's budget
    // side exit. The cuts must actually land there (the counters prove
    // it), and every such cut must resume bit-identically through both
    // restore paths.
    let mut stats = CutStats::default();
    for i in 0..10u64 {
        let s = check_cuts(split_seed(0x5eed_74ce, i), Workload::SoftwareHot, 4);
        stats.in_trace_tier += s.in_trace_tier;
        stats.mid_trace_body += s.mid_trace_body;
    }
    assert!(
        stats.in_trace_tier > 0,
        "no cut point landed after the trace tier took over"
    );
    assert!(
        stats.mid_trace_body > 0,
        "no cut boundary sliced a compiled trace mid-body"
    );
}

/// Builds a chaos-shaped serving run: a transient brick on PE 1 plus a
/// drift ramp on every PE, so the health machine passes through
/// ejection, recovery recalibration, probation and drift drains.
fn build_server(seed: u64) -> (InferenceServer, Vec<neuropulsim_sim::serve::Request>) {
    let models = vec![RMatrix::from_fn(8, 8, |i, j| {
        0.4 * ((i as f64 - j as f64) * 0.31).sin() + if i == j { 0.3 } else { 0.0 }
    })];
    let drift = PcmDriftModel {
        nu: 0.05,
        seconds_per_cycle: 2e-3,
        initial_age_s: 1e-3,
        ..PcmDriftModel::default()
    };
    let mut specs = vec![PeSpec::new(0); 3];
    for s in &mut specs {
        s.drift = Some(drift);
    }
    specs[1].fault = PeFault::HardFor {
        cycle: 100,
        until: 250,
    };
    let cfg = ServeConfig {
        watchdog: 64,
        canary_period: 100,
        drift_margin: 0.3,
        recovery_backoff: 32,
        probation_canaries: 3,
        ..ServeConfig::default()
    };
    let load = synthetic_load(
        &models,
        LoadSpec {
            requests: 300,
            mean_interarrival: 2,
            seed,
        },
    );
    (InferenceServer::new(models, &specs, cfg), load)
}

/// Health states the random serving cuts landed in.
#[derive(Default)]
struct ServeCutStats {
    /// Cuts with a PE draining/reprogramming (drift or recovery recal).
    recalibrating: usize,
    /// Cuts with a PE in half-open probation.
    probation: usize,
}

/// Steps `seed`'s serving run to a cut, snapshots via `Clone`, and
/// checks the resumed and the kept-running servers both finish
/// bit-identically to the uninterrupted reference.
fn check_serve_cuts(seed: u64, cuts: usize) -> ServeCutStats {
    let (mut reference, load) = build_server(seed);
    reference.begin(&load);
    let mut total_steps = 0u64;
    while reference.step() {
        total_steps += 1;
    }
    let ref_out = reference.finish();
    let mut rng = StdRng::seed_from_u64(split_seed(seed, 0x5e4e));
    let mut stats = ServeCutStats::default();
    for _ in 0..cuts {
        let cut = rng.gen_range(1..total_steps.max(2));
        let (mut sys, _) = build_server(seed);
        sys.begin(&load);
        for _ in 0..cut {
            sys.step();
        }
        for slot in 0..3 {
            match sys.pe_health(slot) {
                PeHealth::Recalibrating | PeHealth::Recovering => stats.recalibrating += 1,
                PeHealth::Probation => stats.probation += 1,
                _ => {}
            }
        }
        // Path 1: a clone taken mid-run is a snapshot; it must resume
        // bit-identically even when the cut landed inside a
        // recalibration, recovery or probation window.
        let mut resumed = sys.clone();
        let out = resumed.finish();
        assert_eq!(out, ref_out, "seed {seed} cut {cut}: resumed outcome");
        assert_eq!(
            out.report.to_json(),
            ref_out.report.to_json(),
            "seed {seed} cut {cut}: resumed payload"
        );
        // Path 2: the original keeps stepping to the same end state.
        let out = sys.finish();
        assert_eq!(out, ref_out, "seed {seed} cut {cut}: stepped outcome");
    }
    stats
}

#[test]
fn serve_snapshot_roundtrip_mid_recalibration_and_probation() {
    // Random cuts through a chaos-shaped serving run must cover the
    // mid-recalibration and mid-probation windows for this test to
    // mean anything, and every cut must resume bit-identically.
    let mut stats = ServeCutStats::default();
    for i in 0..8u64 {
        let s = check_serve_cuts(split_seed(0x5eed_5e4e, i), 6);
        stats.recalibrating += s.recalibrating;
        stats.probation += s.probation;
    }
    assert!(
        stats.recalibrating > 0,
        "no cut point landed inside a recalibration window"
    );
    assert!(
        stats.probation > 0,
        "no cut point landed inside a probation window"
    );
}

#[test]
fn snapshot_roundtrip_with_in_flight_fabric_jobs() {
    // The cluster scheduler keeps up to 3 PEs busy at once; cuts must
    // land while fabric jobs are in flight so the snapshot carries
    // multi-device state (busy/done latches, deadlines, SPM windows,
    // the in-DRAM work-queue table) and restores it bit-exactly.
    let mut busy_cuts = 0;
    for i in 0..10u64 {
        busy_cuts += check_cuts(split_seed(0x5eed_fab5, i), Workload::Cluster, 4).busy;
    }
    assert!(
        busy_cuts > 0,
        "no cut point landed with a fabric job in flight"
    );
}

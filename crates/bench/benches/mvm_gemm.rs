//! Criterion micro-benchmarks of the MVM/GeMM engine (experiments
//! E3/E5): core programming (SVD + two decompositions), ideal multiply,
//! noisy multiply, and matrix–matrix streaming.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use neuropulsim_core::error::{HardwareModel, ShifterTech};
use neuropulsim_core::gemm::{GemmEngine, GemmMode};
use neuropulsim_core::mvm::{MvmCore, MvmNoiseConfig};
use neuropulsim_linalg::{CVector, RMatrix};
use neuropulsim_photonics::pcm::PcmMaterial;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn matrix(n: usize, seed: u64) -> RMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_core_programming(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvm_core_program");
    group.sample_size(20);
    for n in [8usize, 16, 32] {
        let w = matrix(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(MvmCore::new(&w)));
        });
    }
    group.finish();
}

fn bench_multiply(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvm_multiply");
    for n in [8usize, 16, 32, 64] {
        let core = MvmCore::new(&matrix(n, 2));
        let x = vec![0.3; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(core.multiply(&x)));
        });
    }
    // Zero-allocation variant: caller-owned output + scratch reused
    // across calls — the steady-state GeMM column path.
    for n in [16usize, 64] {
        let core = MvmCore::new(&matrix(n, 2));
        let x = vec![0.3; n];
        let mut y = vec![0.0; n];
        let mut scratch = CVector::zeros(n);
        group.bench_with_input(BenchmarkId::new("into", n), &n, |b, _| {
            b.iter(|| {
                core.multiply_into(&x, &mut y, &mut scratch);
                black_box(y[0])
            });
        });
    }
    group.finish();
}

fn bench_noisy_multiply(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvm_multiply_noisy_pcm");
    group.sample_size(20);
    let n = 16;
    let core = MvmCore::new(&matrix(n, 3));
    let config = MvmNoiseConfig {
        hardware: HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm {
            material: PcmMaterial::GeSe,
            levels: 32,
        }),
        readout_sigma: 1e-3,
        attenuator_sigma: 0.0,
    };
    let mut rng = StdRng::seed_from_u64(4);
    let instance = core.realize(&config, &mut rng);
    let x = vec![0.3; n];
    group.bench_function("frozen_instance", |b| {
        b.iter(|| black_box(instance.multiply_noisy(&x, &mut rng)));
    });
    group.bench_function("fresh_instance", |b| {
        b.iter(|| black_box(core.multiply_noisy(&x, &config, &mut rng)));
    });
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_matmul");
    group.sample_size(20);
    for n in [16usize, 64] {
        let cols = 64;
        let w = matrix(n, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let x = RMatrix::from_fn(n, cols, |_, _| rng.gen_range(-1.0..1.0));
        for (name, mode) in [
            ("tdm", GemmMode::Tdm),
            ("wdm8", GemmMode::Wdm { channels: 8 }),
        ] {
            let engine = GemmEngine::new(MvmCore::new(&w), mode);
            group.bench_function(BenchmarkId::new(name, n), |b| {
                b.iter(|| black_box(engine.matmul(&x)));
            });
            group.bench_function(BenchmarkId::new(format!("{name}_par2"), n), |b| {
                b.iter(|| black_box(engine.matmul_par(&x, 2)));
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_core_programming,
    bench_multiply,
    bench_noisy_multiply,
    bench_gemm
);
criterion_main!(benches);

//! Criterion micro-benchmarks of the spiking substrate (experiment E6):
//! Yamada ODE integration throughput, synapse programming, and full
//! WTA-layer presentations with and without learning.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use neuropulsim_photonics::laser::{YamadaLaser, YamadaParams};
use neuropulsim_snn::encoding::latency_encode;
use neuropulsim_snn::network::SpikingLayer;
use neuropulsim_snn::synapse::PcmSynapse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_yamada(c: &mut Criterion) {
    c.bench_function("yamada_rk4_10k_steps", |b| {
        b.iter(|| {
            let mut laser = YamadaLaser::new(YamadaParams::default());
            laser.perturb_gain(1.0);
            black_box(laser.run(200.0)) // 10k steps at dt = 0.02
        });
    });
}

fn bench_synapse_programming(c: &mut Criterion) {
    c.bench_function("pcm_synapse_full_sweep", |b| {
        b.iter(|| {
            let mut s = PcmSynapse::new();
            for _ in 0..15 {
                s.depress();
            }
            for _ in 0..15 {
                s.potentiate();
            }
            black_box(s.weight())
        });
    });
}

fn bench_layer_presentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("spiking_layer_present");
    group.sample_size(20);
    let stimulus = latency_encode(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0], 20.0);
    for learn in [false, true] {
        group.bench_function(if learn { "learning" } else { "inference" }, |b| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut layer = SpikingLayer::new(9, 3, &mut rng);
            b.iter(|| black_box(layer.present(&stimulus, 30.0, 0.5, learn)));
        });
    }
    // Fanned-out drive computation (bit-identical to serial).
    group.bench_function("inference_par2", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = SpikingLayer::new(9, 3, &mut rng);
        layer.drive_threads = 2;
        b.iter(|| black_box(layer.present(&stimulus, 30.0, 0.5, false)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_yamada,
    bench_synapse_programming,
    bench_layer_presentation
);
criterion_main!(benches);

//! Criterion micro-benchmarks of the full-system simulator (experiments
//! E7/E8): simulated instructions per second of the RV32IM interpreter,
//! the software-MVM workload, the accelerator-offload path, and one
//! fault-injection run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use neuropulsim_linalg::RMatrix;
use neuropulsim_riscv::asm::assemble;
use neuropulsim_riscv::bus::FlatMemory;
use neuropulsim_riscv::cpu::Cpu;
use neuropulsim_sim::fault::{Campaign, Fault, FaultTarget};
use neuropulsim_sim::firmware::{accel_offload, software_mvm, DramLayout};
use neuropulsim_sim::system::System;

fn bench_interpreter(c: &mut Criterion) {
    // Tight arithmetic loop: measures raw simulated-instruction rate.
    let code = assemble(
        "
        li a0, 10000
        li a1, 0
    loop:
        addi a1, a1, 3
        xor  a2, a1, a0
        add  a3, a2, a1
        addi a0, a0, -1
        bnez a0, loop
        ecall
        ",
    )
    .expect("assembles");
    c.bench_function("rv32_interpreter_50k_insts", |b| {
        b.iter(|| {
            let mut mem = FlatMemory::new(64 * 1024);
            mem.load_words(0, &code);
            let mut cpu = Cpu::new(0);
            black_box(cpu.run(&mut mem, 10_000_000).expect("no trap"));
        });
    });
}

fn setup_system(n: usize, batch: usize, offload: bool) -> System {
    let layout = DramLayout::default();
    let w = RMatrix::from_fn(n, n, |i, j| 0.2 * ((i + j) as f64 * 0.7).sin());
    let mut sys = System::new();
    if offload {
        sys.platform.accel.load_matrix(&w);
    }
    sys.write_fixed_vector(layout.w_addr, w.as_slice());
    for v in 0..batch {
        let col: Vec<f64> = (0..n).map(|k| 0.1 * (v + k) as f64 / n as f64).collect();
        sys.write_fixed_vector(layout.x_addr + (v * n * 4) as u32, &col);
    }
    let fw = if offload {
        accel_offload(n, batch, layout)
    } else {
        software_mvm(n, batch, layout)
    };
    sys.load_firmware_source(&fw);
    sys
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_workload");
    group.sample_size(20);
    group.bench_function("software_mvm_8x8x8", |b| {
        b.iter(|| {
            let mut sys = setup_system(8, 8, false);
            black_box(sys.run(100_000_000));
        });
    });
    group.bench_function("offload_8x8x8", |b| {
        b.iter(|| {
            let mut sys = setup_system(8, 8, true);
            black_box(sys.run(100_000_000));
        });
    });
    group.finish();
}

fn bench_fault_injection(c: &mut Criterion) {
    let layout = DramLayout::default();
    let campaign = Campaign::new(
        || setup_system(4, 1, false),
        move |sys| {
            (0..4)
                .map(|k| sys.platform.dram.peek(layout.y_addr + 4 * k).unwrap_or(0))
                .collect()
        },
        1_000_000,
    );
    let golden = campaign.golden();
    c.bench_function("fault_injection_single", |b| {
        b.iter(|| {
            black_box(campaign.inject(
                Fault::transient(
                    FaultTarget::Dram {
                        addr: layout.w_addr,
                    },
                    17,
                    10,
                ),
                &golden,
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_workloads,
    bench_fault_injection
);
criterion_main!(benches);

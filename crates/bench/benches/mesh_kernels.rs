//! Criterion micro-benchmarks of the photonic-core kernels behind
//! experiments E1/E2: Haar sampling, Clements decomposition, transfer
//! matrix construction, O(blocks) vector application, SVD, and the
//! Fldzhyan programming optimizer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use neuropulsim_core::clements::decompose;
use neuropulsim_core::layered::{LayeredMesh, ProgramOptions};
use neuropulsim_linalg::decomp::svd;
use neuropulsim_linalg::random::haar_unitary;
use neuropulsim_linalg::{CMatrix, CVector, MatmulScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_haar(c: &mut Criterion) {
    let mut group = c.benchmark_group("haar_unitary");
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(haar_unitary(&mut rng, n)));
        });
    }
    group.finish();
}

fn bench_clements_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("clements_decompose");
    for n in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(2);
        let u = haar_unitary(&mut rng, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(decompose(&u)));
        });
    }
    group.finish();
}

fn bench_mesh_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_apply");
    for n in [8usize, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(3);
        let u = haar_unitary(&mut rng, n);
        let program = decompose(&u);
        let x = CVector::from_reals(&vec![0.5; n]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(program.apply(&x)));
        });
        // Compiled plan: trigonometry hoisted to compile time, applied
        // in place on a reused buffer.
        let plan = program.compile();
        let mut buf = x.clone();
        group.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, _| {
            b.iter(|| {
                buf.as_mut_slice().copy_from_slice(x.as_slice());
                plan.apply_in_place(buf.as_mut_slice());
                black_box(buf[0])
            });
        });
    }
    group.finish();
}

fn bench_mul_mat(c: &mut Criterion) {
    let mut group = c.benchmark_group("cmatrix_mul_mat");
    group.sample_size(20);
    for n in [16usize, 64] {
        let mut rng = StdRng::seed_from_u64(8);
        let a = haar_unitary(&mut rng, n);
        let b_mat = haar_unitary(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(a.mul_mat_naive(&b_mat)));
        });
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |b, _| {
            b.iter(|| black_box(a.mul_mat(&b_mat)));
        });
        let mut out = CMatrix::zeros(n, n);
        let mut scratch = MatmulScratch::new();
        group.bench_with_input(BenchmarkId::new("packed_into", n), &n, |b, _| {
            b.iter(|| {
                a.mul_mat_into(&b_mat, &mut out, &mut scratch);
                black_box(out[(0, 0)])
            });
        });
    }
    group.finish();
}

fn bench_transfer_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_transfer_matrix");
    for n in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(4);
        let u = haar_unitary(&mut rng, n);
        let program = decompose(&u);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(program.transfer_matrix()));
        });
    }
    group.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_svd");
    group.sample_size(20);
    for n in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(5);
        let m = neuropulsim_linalg::random::ginibre(&mut rng, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(svd(&m)));
        });
    }
    group.finish();
}

fn bench_fldzhyan_program(c: &mut Criterion) {
    let mut group = c.benchmark_group("fldzhyan_program");
    group.sample_size(10);
    for n in [4usize, 6] {
        let mut rng = StdRng::seed_from_u64(6);
        let target = haar_unitary(&mut rng, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut mesh = LayeredMesh::universal(n);
                let mut seed_rng = StdRng::seed_from_u64(7);
                mesh.randomize_phases(&mut seed_rng);
                black_box(mesh.program_unitary(
                    &target,
                    ProgramOptions {
                        max_sweeps: 50,
                        tol: 1e-10,
                    },
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_haar,
    bench_clements_decompose,
    bench_mesh_apply,
    bench_mul_mat,
    bench_transfer_matrix,
    bench_svd,
    bench_fldzhyan_program
);
criterion_main!(benches);

//! # neuropulsim-bench
//!
//! The experiment harness: shared table formatting and deterministic RNG
//! plumbing for the `expt_*` binaries, each of which regenerates one of
//! the evaluation tables indexed in `DESIGN.md` (E1–E10). Criterion
//! micro-benchmarks of the simulator kernels live under `benches/`, and
//! every `*_bench` probe emits the unified [`runner`] JSON schema
//! (median-of-N, machine-normalized) that the committed `BENCH_*.json`
//! baselines and the CI perf-regression gate consume.

#![warn(missing_docs)]

pub mod runner;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The workspace-wide deterministic RNG for experiments.
pub fn experiment_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A markdown table builder for experiment outputs.
///
/// # Examples
///
/// ```
/// let mut t = neuropulsim_bench::Table::new(&["n", "fidelity"]);
/// t.row(&["8".into(), "0.999".into()]);
/// let s = t.to_markdown();
/// assert!(s.contains("| n | fidelity |"));
/// assert!(s.contains("| 8 | 0.999 |"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Prints the markdown to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }
}

/// Formats a float for table cells (4 decimals, or scientific notation
/// for very small/large magnitudes).
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() < 1e-3 || v.abs() >= 1e6 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["3".into(), "4".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn fmt_modes() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.5), "0.5000");
        assert!(fmt(1.5e-7).contains('e'));
        assert!(fmt(2.0e7).contains('e'));
    }

    #[test]
    fn rng_is_deterministic() {
        use rand::Rng;
        let a: u64 = experiment_rng(1).gen();
        let b: u64 = experiment_rng(1).gen();
        assert_eq!(a, b);
    }
}

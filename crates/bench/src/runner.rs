//! The unified bench runner: one measurement methodology and one JSON
//! schema (`neuropulsim-bench/v1`) for every `*_bench` probe.
//!
//! Methodology:
//!
//! - **median-of-N** — each measurement repeats its op `reps` times and
//!   records the median and minimum wall time. The median is the
//!   headline statistic (robust to one-off scheduler hiccups); the
//!   minimum estimates the noise-free cost.
//! - **machine-normalized** — every report times a fixed scalar
//!   calibration workload first and publishes each measurement's
//!   `norm = median_ns / calib_ns`. Regression checks compare `norm`,
//!   which cancels host frequency differences to first order, so a
//!   committed baseline from one machine is comparable on another.
//! - **payload vs measurements** — deterministic campaign *results*
//!   (bit-identity flags, outcome tallies, speedup structure) go in
//!   `payload`; wall-clock *timings* go in `measurements`. CI
//!   determinism checks compare `payload` only, perf-regression checks
//!   compare `measurements[].norm` only.
//!
//! ```text
//! {"schema":"neuropulsim-bench/v1","bench":"...","calib_ns":...,
//!  "threads":N,"measurements":[{"id":...,"reps":...,"median_ns":...,
//!  "min_ns":...,"norm":...,"meta":{...}}],"derived":{...},"payload":{...}}
//! ```

use std::time::Instant;

/// Iterations of the fixed calibration kernel.
const CALIB_ITERS: u64 = 4_000_000;
/// Repetitions of the calibration timing (median taken).
const CALIB_REPS: usize = 5;

/// One timed measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Stable identifier (`bench/variant/size`), the regression key.
    pub id: String,
    /// Repetitions the median was taken over.
    pub reps: usize,
    /// Median wall time of one op, nanoseconds.
    pub median_ns: f64,
    /// Minimum wall time of one op, nanoseconds.
    pub min_ns: f64,
    /// `median_ns / calib_ns` — the machine-normalized cost.
    pub norm: f64,
    /// Extra per-measurement fields: `(key, raw JSON value)` pairs,
    /// emitted verbatim inside `meta`.
    pub meta: Vec<(String, String)>,
}

/// Collects measurements and renders the unified report.
#[derive(Debug, Clone)]
pub struct Runner {
    bench: String,
    calib_ns: f64,
    threads: usize,
    profile: bool,
    measurements: Vec<Measurement>,
    derived: Vec<(String, String)>,
    payload: Option<String>,
}

/// True when the probe should run in flamegraph-friendly profile mode:
/// `--profile` anywhere on the command line, or `NEUROPULSIM_PROFILE=1`
/// in the environment. Profile mode skips every calibration loop — the
/// start-of-run one and the paired per-rep samples — so profiler samples
/// land in the workload under test instead of the synthetic calibration
/// kernel, and the report is stamped `"profile": true` so
/// `scripts/check_perf.py` refuses to gate on it.
pub fn profile_mode() -> bool {
    std::env::args().skip(1).any(|a| a == "--profile")
        || std::env::var("NEUROPULSIM_PROFILE").is_ok_and(|v| v == "1")
}

/// The command-line arguments with runner flags (`--profile`) removed —
/// what a probe should parse its positional arguments from.
pub fn positional_args() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| a != "--profile")
        .collect()
}

/// The fixed calibration workload: a SplitMix64-fed floating-point
/// recurrence no optimizer can fold away. Returns nanoseconds per run
/// (median of [`CALIB_REPS`]).
fn calibrate() -> f64 {
    let mut samples = Vec::with_capacity(CALIB_REPS);
    for _ in 0..CALIB_REPS {
        samples.push(calibrate_once());
    }
    median(&mut samples)
}

/// One timed run of the calibration loop (one [`calibrate`] sample).
fn calibrate_once() -> f64 {
    let t0 = Instant::now();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 1.0f64;
    for _ in 0..CALIB_ITERS {
        state = state
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(0x94D0_49BB_1331_11EB);
        acc += (state >> 40) as f64 * 1e-9;
        acc *= 0.999_999_9;
    }
    std::hint::black_box(acc);
    t0.elapsed().as_nanos() as f64
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

impl Runner {
    /// Creates a runner for `bench`, timing the calibration workload —
    /// unless [`profile_mode`] is on, in which case calibration is
    /// skipped entirely (see [`Runner::with_mode`]).
    pub fn new(bench: &str) -> Self {
        Self::with_mode(bench, profile_mode())
    }

    /// [`Runner::new`] with an explicit mode. With `profile = true` no
    /// calibration loop ever runs (`calib_ns` is pinned to 1.0, so
    /// `norm` degenerates to raw nanoseconds) and the report carries
    /// `"profile": true`; such reports are for flamegraphs only and are
    /// rejected by the regression gate.
    pub fn with_mode(bench: &str, profile: bool) -> Self {
        Runner {
            bench: bench.to_string(),
            calib_ns: if profile { 1.0 } else { calibrate() },
            threads: neuropulsim_linalg::parallel::available_threads(),
            profile,
            measurements: Vec::new(),
            derived: Vec::new(),
            payload: None,
        }
    }

    /// Nanoseconds of the calibration workload on this host.
    pub fn calib_ns(&self) -> f64 {
        self.calib_ns
    }

    /// [`Runner::measure_with_meta`], but with a *drift-immune* `norm`:
    /// every repetition is paired with its own single-shot calibration
    /// sample taken immediately before it, and `norm` is the median of
    /// the per-rep `op_ns / calib_ns` ratios. Machine-speed drift across
    /// the run (frequency scaling, noisy neighbours) hits numerator and
    /// denominator alike and cancels, where a start-of-run calibration
    /// would mis-normalize every later repetition. Costs one extra
    /// calibration loop (~ms) per rep — use it for probes whose
    /// scenarios are long enough for the machine to drift mid-run.
    pub fn measure_ratio_with_meta<F: FnMut()>(
        &mut self,
        id: &str,
        reps: usize,
        meta: &[(&str, String)],
        mut op: F,
    ) -> f64 {
        assert!(reps >= 1, "need at least one repetition");
        let mut samples = Vec::with_capacity(reps);
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            // In profile mode the paired calibration is skipped too:
            // flamegraph samples should land in `op`, not the kernel.
            let calib = if self.profile { 1.0 } else { calibrate_once() };
            let t0 = Instant::now();
            op();
            let ns = t0.elapsed().as_nanos() as f64;
            samples.push(ns);
            ratios.push(ns / calib);
        }
        let min_ns = samples.iter().copied().fold(f64::MAX, f64::min);
        let median_ns = median(&mut samples);
        // Each ratio divides by the time of one calibration loop — the
        // same quantity `calib_ns` estimates — so `norm` keeps the same
        // definition (op cost / calibration cost) as `measure`.
        let norm = median(&mut ratios);
        self.measurements.push(Measurement {
            id: id.to_string(),
            reps,
            median_ns,
            min_ns,
            norm,
            meta: meta
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
        median_ns
    }

    /// Times `op` (already warmed up by the caller if needed): `reps`
    /// repetitions, median-of-N. Returns the median nanoseconds.
    pub fn measure<F: FnMut()>(&mut self, id: &str, reps: usize, op: F) -> f64 {
        self.measure_with_meta(id, reps, &[], op)
    }

    /// [`Runner::measure`] with extra `(key, raw JSON value)` pairs
    /// attached to the measurement.
    pub fn measure_with_meta<F: FnMut()>(
        &mut self,
        id: &str,
        reps: usize,
        meta: &[(&str, String)],
        mut op: F,
    ) -> f64 {
        assert!(reps >= 1, "need at least one repetition");
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            op();
            samples.push(t0.elapsed().as_nanos() as f64);
        }
        let min_ns = samples.iter().copied().fold(f64::MAX, f64::min);
        let median_ns = median(&mut samples);
        self.measurements.push(Measurement {
            id: id.to_string(),
            reps,
            median_ns,
            min_ns,
            norm: median_ns / self.calib_ns,
            meta: meta
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
        median_ns
    }

    /// Adds a top-level derived metric (`key`, raw JSON value).
    pub fn derived(&mut self, key: &str, raw_value: String) {
        self.derived.push((key.to_string(), raw_value));
    }

    /// Sets the deterministic payload — a complete raw JSON value
    /// (campaign report, identity flags); must not contain timings.
    pub fn payload(&mut self, raw_json: String) {
        self.payload = Some(raw_json);
    }

    /// Renders the `neuropulsim-bench/v1` report.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"neuropulsim-bench/v1\",\n");
        s.push_str(&format!("  \"bench\": \"{}\",\n", self.bench));
        s.push_str(&format!("  \"calib_ns\": {:.0},\n", self.calib_ns));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        if self.profile {
            s.push_str("  \"profile\": true,\n");
        }
        s.push_str("  \"measurements\": [\n");
        for (k, m) in self.measurements.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"reps\": {}, \"median_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"norm\": {:.6}",
                m.id, m.reps, m.median_ns, m.min_ns, m.norm
            ));
            if !m.meta.is_empty() {
                s.push_str(", \"meta\": {");
                for (j, (key, value)) in m.meta.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&format!("\"{key}\": {value}"));
                }
                s.push('}');
            }
            s.push('}');
            if k + 1 < self.measurements.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");
        s.push_str("  \"derived\": {");
        for (j, (key, value)) in self.derived.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{key}\": {value}"));
        }
        s.push_str("},\n");
        match &self.payload {
            Some(p) => s.push_str(&format!("  \"payload\": {p}\n")),
            None => s.push_str("  \"payload\": null\n"),
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn report_shape_is_valid_schema() {
        let mut r = Runner::new("unit_test");
        assert!(r.calib_ns() > 0.0);
        let m = r.measure_with_meta("op/a/n1", 3, &[("items", "7".to_string())], || {
            std::hint::black_box(1 + 1);
        });
        assert!(m >= 0.0);
        r.derived("speedup", "2.5".to_string());
        r.payload("{\"ok\": true}".to_string());
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"neuropulsim-bench/v1\""));
        assert!(json.contains("\"id\": \"op/a/n1\""));
        assert!(json.contains("\"items\": 7"));
        assert!(json.contains("\"speedup\": 2.5"));
        assert!(json.contains("\"payload\": {\"ok\": true}"));
        // Every measurement is normalized against the calibration.
        assert!(json.contains("\"norm\": "));
    }

    #[test]
    fn profile_mode_skips_calibration_and_stamps_report() {
        let mut r = Runner::with_mode("profiled", true);
        assert_eq!(r.calib_ns(), 1.0, "no calibration loop in profile mode");
        r.measure_ratio_with_meta("op/p/n1", 2, &[], || {
            std::hint::black_box(1 + 1);
        });
        let json = r.to_json();
        assert!(json.contains("\"profile\": true"));
    }

    #[test]
    fn payload_defaults_to_null() {
        let mut r = Runner::new("empty");
        r.measure("noop", 1, || {});
        assert!(r.to_json().contains("\"payload\": null"));
    }
}

//! **E13 — Coherent mesh vs incoherent crossbar** (the paper's intro
//! cites both lineages: interferometric meshes [Feldmann 2021 / Clements]
//! and the electrically programmable PCM dot-product engine [Zhou 2023]).
//!
//! Same weights, same workload, two architectures: quantization error,
//! error locality under per-element noise, and silicon cost.

use neuropulsim_bench::{experiment_rng, fmt, Table};
use neuropulsim_core::crossbar::{CrossbarCore, CrossbarNoise};
use neuropulsim_core::error::{HardwareModel, ShifterTech};
use neuropulsim_core::mvm::{MvmCore, MvmNoiseConfig};
use neuropulsim_linalg::RMatrix;
use neuropulsim_photonics::energy::ComponentAreas;
use neuropulsim_photonics::pcm::PcmMaterial;
use rand::Rng;

fn random_matrix(n: usize, seed: u64) -> RMatrix {
    let mut rng = experiment_rng(seed);
    RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
}

fn main() {
    let n = 8;
    let w = random_matrix(n, 7000);

    println!("## E13a — Weight-quantization error vs PCM levels (N = {n})\n");
    println!("(The mesh quantizes *phases* (GeSe shifters); the crossbar");
    println!("quantizes *transmissions* (GST cells, its natural material).)\n");
    let mut table = Table::new(&["levels", "mesh (GeSe phases)", "crossbar (GST cells)"]);
    for &levels in &[4u32, 8, 16, 32, 64] {
        // Mesh path: gain-calibrated effective-matrix error.
        let core = MvmCore::new(&w);
        let config = MvmNoiseConfig {
            hardware: HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm {
                material: PcmMaterial::GeSe,
                levels,
            }),
            ..MvmNoiseConfig::ideal()
        };
        let mut rng = experiment_rng(7100);
        let realized = core.realized_matrix(&config, &mut rng);
        let dot: f64 = realized
            .as_slice()
            .iter()
            .zip(w.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let norm2: f64 = realized.as_slice().iter().map(|a| a * a).sum();
        let c = if norm2 > 0.0 { dot / norm2 } else { 0.0 };
        let mesh_err = (&realized.scaled(c) - &w).frobenius_norm() / w.frobenius_norm();

        let crossbar = CrossbarCore::new(&w, PcmMaterial::Gst225, levels);
        table.row(&[
            levels.to_string(),
            fmt(mesh_err),
            fmt(crossbar.quantization_error(&w)),
        ]);
    }
    table.print();

    println!("\n## E13b — Error locality: output error vs per-element disturbance\n");
    println!("(Same 1% per-element error: crossbar errors stay local; mesh");
    println!("phase errors propagate through interference across the depth.)\n");
    let mut table = Table::new(&[
        "per-element sigma",
        "mesh output rel. err",
        "crossbar output rel. err",
    ]);
    let x: Vec<f64> = (0..n).map(|k| 0.4 * ((k as f64) * 0.77).sin()).collect();
    let want = w.mul_vec(&x);
    let want_norm = want.iter().map(|v| v * v).sum::<f64>().sqrt();
    for &sigma in &[0.002, 0.01, 0.05] {
        let trials = 20;
        let mut mesh_err = 0.0;
        let mut xbar_err = 0.0;
        let core = MvmCore::new(&w);
        let crossbar = CrossbarCore::new(&w, PcmMaterial::Gst225, 4096);
        let mut rng = experiment_rng(7200);
        for _ in 0..trials {
            let config = MvmNoiseConfig {
                hardware: HardwareModel {
                    phase_noise_sigma: sigma,
                    ..HardwareModel::ideal()
                },
                ..MvmNoiseConfig::ideal()
            };
            let got = core.multiply_noisy(&x, &config, &mut rng);
            mesh_err += got
                .iter()
                .zip(&want)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt()
                / want_norm
                / trials as f64;
            let noise = CrossbarNoise {
                programming_sigma: sigma,
                readout_sigma: 0.0,
            };
            let got = crossbar.multiply_noisy(&x, &noise, &mut rng);
            xbar_err += got
                .iter()
                .zip(&want)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt()
                / want_norm
                / trials as f64;
        }
        table.row(&[fmt(sigma), fmt(mesh_err), fmt(xbar_err)]);
    }
    table.print();

    println!("\n## E13c — Silicon cost (N = 8 .. 64)\n");
    let areas = ComponentAreas::default();
    let mut table = Table::new(&[
        "N",
        "mesh MVM cells",
        "crossbar cells",
        "mesh area [mm^2]",
        "crossbar area [mm^2]",
    ]);
    for &n in &[8usize, 16, 32, 64] {
        let mesh = neuropulsim_core::footprint::mvm_core_footprint(
            neuropulsim_core::architecture::MeshArchitecture::Clements,
            n,
            ShifterTech::Pcm {
                material: PcmMaterial::GeSe,
                levels: 32,
            },
            &areas,
        );
        let crossbar_cells = 2 * n * n;
        // Crossbar: PCM cell + crossing per weight, plus n modulators and
        // n balanced detector pairs.
        let crossbar_area = crossbar_cells as f64 * areas.pcm_patch * 4.0
            + n as f64 * (areas.modulator + 2.0 * areas.detector);
        table.row(&[
            n.to_string(),
            mesh.cell_count.to_string(),
            crossbar_cells.to_string(),
            fmt(mesh.area_mm2()),
            fmt(crossbar_area * 1e6),
        ]);
    }
    table.print();
    println!("\n(The crossbar's 2N^2 cells are tiny (no interferometers), so it");
    println!("stays smaller at these sizes, at the cost of 1/N power splitting");
    println!("and no exact-universality guarantee — complementary trade-offs,");
    println!("which is why the paper's platform supports both device families.)");
}

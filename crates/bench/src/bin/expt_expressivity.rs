//! **E1 — Matrix expressivity** (paper §4, Fig. 2b context).
//!
//! Fidelity of programming Haar-random target unitaries, per mesh
//! architecture and size, plus coverage of arbitrary non-unitary
//! matrices via the SVD construction.

use neuropulsim_bench::{experiment_rng, fmt, Table};
use neuropulsim_core::analysis::{expressivity_sweep, nonunitary_coverage_trial, Stats};
use neuropulsim_core::architecture::MeshArchitecture;

fn main() {
    println!("## E1 — Matrix expressivity (fidelity on Haar-random unitaries)\n");
    let trials = 5;
    let mut table = Table::new(&["N", "architecture", "mean fidelity", "min", "std"]);
    for &n in &[4usize, 8, 16, 32] {
        for arch in MeshArchitecture::ALL {
            // The Fldzhyan optimizer is O(sweeps * N^4); cap its size.
            if arch == MeshArchitecture::Fldzhyan && n > 16 {
                continue;
            }
            let mut rng = experiment_rng(100 + n as u64);
            let stats: Stats = expressivity_sweep(arch, n, trials, &mut rng);
            table.row(&[
                n.to_string(),
                arch.to_string(),
                fmt(stats.mean),
                fmt(stats.min),
                fmt(stats.std),
            ]);
        }
    }
    table.print();

    println!("\n## E1b — Non-unitary coverage (relative error of SVD cores)\n");
    let mut table = Table::new(&["N", "mean relative error"]);
    for &n in &[4usize, 8, 16] {
        let mut rng = experiment_rng(200 + n as u64);
        let errs: Vec<f64> = (0..trials)
            .map(|_| nonunitary_coverage_trial(n, &mut rng))
            .collect();
        let stats = Stats::from_samples(&errs);
        table.row(&[n.to_string(), fmt(stats.mean)]);
    }
    table.print();
}

//! Differential conformance runner: fuzzes every optimized fast path
//! against its golden oracle and prints a JSON report.
//!
//! ```text
//! conformance [--seed N] [--cases N] [--domain NAME] [--inject NAME]
//! ```
//!
//! `--domain` restricts the run to one domain (repeatable); `--inject`
//! perturbs that domain's fast-path results to prove the harness
//! detects and shrinks divergences. Exits nonzero if any divergence is
//! found, so CI fails on the report it just uploaded.

use neuropulsim_oracle::harness::{run_conformance, ConformanceConfig, Domain};

fn main() {
    let mut config = ConformanceConfig::new(42, 500);
    let mut selected: Vec<Domain> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = args.next();
        let parse_domain = |v: &Option<String>| {
            v.as_deref().and_then(Domain::parse).unwrap_or_else(|| {
                eprintln!("unknown domain {v:?}; expected one of: matmul mesh abft riscv snn pcm snn_sparse mesh_zoo");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seed" => config.seed = value.and_then(|v| v.parse().ok()).unwrap_or(config.seed),
            "--cases" => config.cases = value.and_then(|v| v.parse().ok()).unwrap_or(config.cases),
            "--domain" => selected.push(parse_domain(&value)),
            "--inject" => config.inject = Some(parse_domain(&value)),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if !selected.is_empty() {
        config.domains = selected;
    }

    let report = run_conformance(&config);
    print!("{}", report.to_json());
    if report.total_divergences > 0 {
        std::process::exit(1);
    }
}

//! **E5 — GeMM via TDM vs DWDM** (paper §4: input matrices processed
//! "via time-division multiplexing or through encoding into multiple
//! dense wavelength division multiplexed channels ... without incurring
//! additional resource costs").

use neuropulsim_bench::{experiment_rng, fmt, Table};
use neuropulsim_core::gemm::{GemmEngine, GemmMode};
use neuropulsim_core::mvm::MvmCore;
use neuropulsim_linalg::{metrics, RMatrix};
use neuropulsim_photonics::energy::TechnologyProfile;
use neuropulsim_photonics::ring::AddDropRing;
use rand::Rng;

fn main() {
    let tech = TechnologyProfile::default();
    let cols = 256;

    println!("## E5a — Throughput scaling: N and wavelength channels\n");
    let mut table = Table::new(&["N", "lambda ch.", "slots", "time [ns]", "MAC/s", "J/MAC"]);
    for &n in &[8usize, 16, 32, 64] {
        let mut rng = experiment_rng(800 + n as u64);
        let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        for &channels in &[1usize, 2, 4, 8, 16] {
            let mode = if channels == 1 {
                GemmMode::Tdm
            } else {
                GemmMode::Wdm { channels }
            };
            let engine = GemmEngine::new(MvmCore::new(&w), mode);
            let s = engine.schedule(cols, &tech);
            table.row(&[
                n.to_string(),
                channels.to_string(),
                s.symbol_slots.to_string(),
                fmt(s.time_s * 1e9),
                fmt(s.macs_per_second),
                fmt(s.energy_per_mac),
            ]);
        }
    }
    table.print();
    println!("\n(WDM divides latency by the channel count at equal energy/MAC —");
    println!("the mesh is reused across wavelengths for free.)");

    println!("\n## E5b — WDM crosstalk penalty (N = 8, 8 channels)\n");
    let n = 8;
    let mut rng = experiment_rng(900);
    let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    let x = RMatrix::from_fn(n, 32, |_, _| rng.gen_range(-1.0..1.0));
    let reference = w.mul_mat(&x);
    let mut table = Table::new(&["crosstalk", "output relative error"]);
    for &ct in &[0.0, 0.001, 0.005, 0.01, 0.05] {
        let engine =
            GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 8 }).with_crosstalk(ct);
        let got = engine.matmul(&x);
        let err = (&got - &reference).frobenius_norm() / reference.frobenius_norm();
        table.row(&[fmt(ct), fmt(err)]);
    }
    table.print();

    println!("\n## E5c — Chromatic-dispersion penalty vs channel count (N = 8)\n");
    println!("(100 GHz DWDM grid: fractional wavelength step ~5.2e-4; outer");
    println!("channels see mesh phases scaled away from the design point.)\n");
    let mut table = Table::new(&["lambda ch.", "output relative error"]);
    for &channels in &[2usize, 4, 8, 16, 32] {
        let engine =
            GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels }).with_dispersion(5.2e-4);
        let x_wide = RMatrix::from_fn(n, channels, |i, j| 0.2 * ((i * 7 + j) as f64 * 0.13).sin());
        let got = engine.matmul(&x_wide);
        let want = w.mul_mat(&x_wide);
        let err = (&got - &want).frobenius_norm() / want.frobenius_norm();
        table.row(&[channels.to_string(), fmt(err)]);
    }
    table.print();
    println!("\n(Dispersion bounds how many channels one mesh can serve before");
    println!("per-channel recalibration is needed — the resource-cost caveat to");
    println!("the paper's free-WDM argument.)");

    println!("\n## E5d — Physically grounded crosstalk: ring-demux isolation\n");
    println!("(A DWDM demux built from add-drop microrings: the neighbour-");
    println!("channel leakage of the drop port IS the crosstalk parameter.)\n");
    let mut table = Table::new(&[
        "grid spacing",
        "ring crosstalk (power)",
        "GeMM output rel. error",
    ]);
    let ring = AddDropRing::default();
    for &(label, spacing) in &[("50 GHz", 50e9), ("100 GHz", 100e9), ("200 GHz", 200e9)] {
        let power_xt = ring.channel_crosstalk(spacing);
        let amplitude_xt = power_xt.sqrt();
        let engine = GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 8 })
            .with_crosstalk(amplitude_xt.min(0.99));
        let got = engine.matmul(&x);
        let err = (&got - &reference).frobenius_norm() / reference.frobenius_norm();
        table.row(&[label.to_string(), fmt(power_xt), fmt(err)]);
    }
    table.print();
    println!(
        "\n(ring: Q = {:.0}, FSR = {:.2} nm, FWHM = {:.0} pm)",
        ring.q_factor(),
        ring.fsr() * 1e9,
        ring.fwhm() * 1e12
    );

    println!("\n## E5e — Functional check: TDM GeMM matches digital GeMM\n");
    let engine = GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm);
    let got = engine.matmul(&x);
    let err = metrics::mse(got.as_slice(), reference.as_slice());
    println!("MSE(optical, digital) = {}", fmt(err));
}

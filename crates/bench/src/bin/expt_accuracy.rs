//! **E10 — End-to-end photonic inference accuracy** (paper §4: the MVM
//! engine underpinning "a majority of current deep learning models").
//!
//! A digitally trained MLP is re-run with every matrix–vector product
//! executed by photonic MVM cores under increasing levels of hardware
//! realism; accuracy is compared against the float baseline.

use neuropulsim_bench::{experiment_rng, fmt, Table};
use neuropulsim_core::error::{HardwareModel, ShifterTech};
use neuropulsim_core::mvm::{MvmCore, MvmNoiseConfig, RealizedMvm};
use neuropulsim_linalg::RMatrix;
use neuropulsim_nn::dataset::{synthetic_digits, Dataset, DigitsConfig};
use neuropulsim_nn::mlp::Mlp;
use neuropulsim_photonics::converter::Converter;
use neuropulsim_photonics::pcm::PcmMaterial;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn padded_core(weights: &RMatrix) -> (MvmCore, usize) {
    let n = weights.rows().max(weights.cols());
    let padded = RMatrix::from_fn(n, n, |i, j| {
        if i < weights.rows() && j < weights.cols() {
            weights[(i, j)]
        } else {
            0.0
        }
    });
    (MvmCore::new(&padded), weights.rows())
}

fn photonic_accuracy(mlp: &Mlp, test: &Dataset, config: &MvmNoiseConfig, seed: u64) -> f64 {
    let cores: Vec<(MvmCore, usize)> = mlp
        .layers()
        .iter()
        .map(|l| padded_core(&l.weights))
        .collect();
    let mut inst_rng = StdRng::seed_from_u64(seed);
    let instances: Vec<(RealizedMvm, usize)> = cores
        .iter()
        .map(|(core, rows)| (core.realize(config, &mut inst_rng), *rows))
        .collect();
    let mut shot_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut call = 0usize;
    mlp.accuracy_with(test, |_w, x| {
        let (instance, rows) = &instances[call % instances.len()];
        call += 1;
        let mut padded = vec![0.0; x.len().max(*rows)];
        padded[..x.len()].copy_from_slice(x);
        let y = instance.multiply_noisy(&padded, &mut shot_rng);
        y[..*rows].to_vec()
    })
}

fn main() {
    let mut rng = experiment_rng(4000);
    let data = synthetic_digits(&mut rng, DigitsConfig::default());
    let (train, test) = data.split(0.8);
    let mut mlp = Mlp::new(&mut rng, &[16, 16, 4]);
    mlp.fit(&train, 30, 0.05);
    let baseline = mlp.accuracy(&test);
    println!("digital float baseline accuracy: {}\n", fmt(baseline));

    println!("## E10a — Accuracy under increasing hardware realism\n");
    let mut table = Table::new(&["configuration", "accuracy", "delta vs float"]);
    let configs: Vec<(&str, MvmNoiseConfig)> = vec![
        ("ideal photonic", MvmNoiseConfig::ideal()),
        (
            "readout noise 1e-3",
            MvmNoiseConfig {
                readout_sigma: 1e-3,
                ..MvmNoiseConfig::ideal()
            },
        ),
        (
            "+ phase noise 0.01",
            MvmNoiseConfig {
                hardware: HardwareModel {
                    phase_noise_sigma: 0.01,
                    ..HardwareModel::ideal()
                },
                readout_sigma: 1e-3,
                ..MvmNoiseConfig::ideal()
            },
        ),
        (
            "+ GeSe PCM 32 levels + couplers 0.01",
            MvmNoiseConfig {
                hardware: HardwareModel {
                    phase_noise_sigma: 0.01,
                    coupler_imbalance_sigma: 0.01,
                    mzi_arm_transmission: 0.995,
                    thermal_crosstalk: 0.0,
                    shifter_tech: ShifterTech::Pcm {
                        material: PcmMaterial::GeSe,
                        levels: 32,
                    },
                },
                readout_sigma: 1e-3,
                attenuator_sigma: 0.005,
            },
        ),
    ];
    for (name, config) in &configs {
        let acc = photonic_accuracy(&mlp, &test, config, 4100);
        table.row(&[name.to_string(), fmt(acc), fmt(acc - baseline)]);
    }
    table.print();

    println!("\n## E10b — Accuracy vs PCM level count (GeSe, otherwise ideal)\n");
    let mut table = Table::new(&["levels", "accuracy"]);
    for &levels in &[4u32, 8, 16, 32, 64] {
        let config = MvmNoiseConfig {
            hardware: HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm {
                material: PcmMaterial::GeSe,
                levels,
            }),
            ..MvmNoiseConfig::ideal()
        };
        let acc = photonic_accuracy(&mlp, &test, &config, 4200);
        table.row(&[levels.to_string(), fmt(acc)]);
    }
    table.print();

    println!("\n## E10c — Accuracy vs PCM material at 32 levels\n");
    let mut table = Table::new(&["material", "FOM", "accuracy"]);
    for material in [PcmMaterial::GeSe, PcmMaterial::Gsst, PcmMaterial::Gst225] {
        let config = MvmNoiseConfig {
            hardware: HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm {
                material,
                levels: 32,
            }),
            ..MvmNoiseConfig::ideal()
        };
        let acc = photonic_accuracy(&mlp, &test, &config, 4300);
        table.row(&[
            format!("{material:?}"),
            fmt(material.figure_of_merit()),
            fmt(acc),
        ]);
    }
    table.print();
    println!("\n(Only the highest-FOM material keeps the classifier intact —");
    println!("the paper's motivation for low-loss PCMs like GeSe/GSST over GST.)");

    println!("\n## E10d — Quantization-aware training ablation (ternary weights)\n");
    let mut table = Table::new(&["strategy", "accuracy"]);
    // Post-hoc: the float network projected once onto the coarse grid.
    let mut post_hoc = mlp.clone();
    post_hoc.project_weights(3, 1.0);
    table.row(&[
        "float training + post-hoc projection".into(),
        fmt(post_hoc.accuracy(&test)),
    ]);
    // QAT: retrain with per-epoch projection.
    let mut rng2 = experiment_rng(4000);
    let data2 = synthetic_digits(&mut rng2, DigitsConfig::default());
    let (train2, test2) = data2.split(0.8);
    let mut qat = Mlp::new(&mut rng2, &[16, 16, 4]);
    qat.fit_quantized(&train2, 30, 0.05, 3, 1.0);
    table.row(&[
        "quantization-aware training".into(),
        fmt(qat.accuracy(&test2)),
    ]);
    table.print();
    println!("\n(QAT recovers most of the accuracy a coarse weight grid costs —");
    println!("the software-side mitigation for low PCM level counts.)");

    println!("\n## E10e — Accuracy vs converter resolution (DAC in, ADC out)\n");
    println!("(Analog compute is bracketed by data converters; their bit depth");
    println!("is a first-order precision limit and a major I/O energy knob.)\n");
    let mut table = Table::new(&["bits", "accuracy"]);
    for &bits in &[2u32, 3, 4, 6, 8] {
        let dac = Converter::new(bits, 1.0);
        let adc = Converter::new(bits, 8.0); // outputs can exceed unit scale
                                             // Evaluate on the full dataset: the precision sweep measures
                                             // arithmetic fidelity, not generalization, and the larger sample
                                             // smooths the estimate.
        let acc = mlp.accuracy_with(&data, |w, x| {
            let mut xq = x.to_vec();
            dac.quantize_slice(&mut xq);
            let mut y = w.mul_vec(&xq);
            adc.quantize_slice(&mut y);
            y
        });
        table.row(&[bits.to_string(), fmt(acc)]);
    }
    table.print();
}

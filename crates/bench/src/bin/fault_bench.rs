//! Fault-campaign probe: a stratified, checkpointed, parallel
//! fault-injection campaign over the GeMM-offload firmware workload
//! (DMA in → photonic doorbell → `wfi` → DMA out), emitting one
//! unified `neuropulsim-bench/v1` report: the statistical campaign
//! report rides in `payload` (bit-identical for any
//! `NEUROPULSIM_THREADS`, so CI's determinism check compares `payload`
//! only) and the campaign wall time in `measurements`.
//!
//! Usage: `fault_bench [injections] [cadence] [seed]`
//! (defaults: 500 injections, cadence 512, seed 7).
//!
//! The campaign report includes per-stratum outcome tallies, Wilson 95%
//! intervals on the masked/SDC/crash/hang rates and the vulnerability,
//! and the cycles-simulated vs. cycles-saved accounting of checkpoint
//! reuse.

use neuropulsim_bench::runner::Runner;
use neuropulsim_linalg::RMatrix;
use neuropulsim_sim::campaign::{CampaignConfig, Stratum};
use neuropulsim_sim::fault::{Campaign, FaultKind, FaultTarget};
use neuropulsim_sim::firmware::{accel_offload, DramLayout};
use neuropulsim_sim::system::{System, SPM_BASE};

fn main() {
    let mut args = std::env::args().skip(1);
    let injections: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);
    let cadence: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let n = 8;
    let batch = 64;
    let layout = DramLayout::default();
    let w = RMatrix::from_fn(n, n, |i, j| 0.4 * ((i as f64 - j as f64) * 0.31).sin());
    let x: Vec<Vec<f64>> = (0..batch)
        .map(|v| {
            (0..n)
                .map(|k| 0.2 * ((v * n + k) as f64 * 0.17).cos())
                .collect()
        })
        .collect();

    let campaign = Campaign::new(
        {
            let w = w.clone();
            let x = x.clone();
            move || {
                let mut sys = System::new();
                sys.platform.accel.load_matrix(&w);
                for (v, col) in x.iter().enumerate() {
                    sys.write_fixed_vector(layout.x_addr + (v * n * 4) as u32, col);
                }
                sys.load_firmware_source(&accel_offload(n, batch, layout));
                sys
            }
        },
        move |sys| {
            (0..n * batch)
                .map(|k| {
                    sys.platform
                        .dram
                        .peek(layout.y_addr + 4 * k as u32)
                        .unwrap_or(0)
                })
                .collect()
        },
        // Hang threshold: ~35x the golden run, bounding the cost of
        // hang injections (which must burn the whole budget).
        20_000,
    );

    let words = (n * batch) as u32;
    let strata = vec![
        Stratum::new(
            "dram-inputs",
            (0..words)
                .map(|k| FaultTarget::Dram {
                    addr: layout.x_addr + 4 * k,
                })
                .collect(),
        ),
        Stratum::new(
            "dram-outputs",
            (0..words)
                .map(|k| FaultTarget::Dram {
                    addr: layout.y_addr + 4 * k,
                })
                .collect(),
        ),
        Stratum::new(
            "dram-unused",
            (0..words)
                .map(|k| FaultTarget::Dram {
                    addr: 0x003F_0000 + 4 * k,
                })
                .collect(),
        ),
        Stratum::new(
            "cpu-registers",
            (1..32)
                .map(|r| FaultTarget::Register { index: r })
                .collect(),
        ),
        Stratum::new(
            "spm-buffer",
            (0..2 * words)
                .map(|k| FaultTarget::Spm {
                    addr: SPM_BASE + 0x100 + 4 * k,
                })
                .collect(),
        ),
    ];

    let cfg = CampaignConfig {
        cadence,
        injections,
        ..CampaignConfig::default()
    };
    let mut runner = Runner::new("fault_bench");
    let mut report = None;
    runner.measure_with_meta(
        "fault_campaign/stratified",
        1,
        &[
            ("injections", format!("{injections}")),
            ("cadence", format!("{cadence}")),
            ("seed", format!("{seed}")),
        ],
        || {
            report = Some(campaign.run_stratified(
                "gemm-offload-n8-b64",
                seed,
                FaultKind::Transient,
                &strata,
                &cfg,
            ));
        },
    );
    runner.payload(report.expect("campaign ran").to_json());
    print!("{}", runner.to_json());
}

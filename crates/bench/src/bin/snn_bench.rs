//! **Event-driven SNN probe** — the headline benchmark of the sparse
//! engine (`snn::sparse::EventNet`). Three campaigns in one unified
//! `neuropulsim-bench/v1` report:
//!
//! 1. **matched sizes** — event vs dense engine on identical specs and
//!    injection schedules (bit-identity is re-checked first), yielding
//!    the `speedup_vs_dense/*` derived entries;
//! 2. **million-neuron scale** — ≥1M neurons at sparse activity,
//!    yielding `ticks_per_s` at the headline activity;
//! 3. **activity ladder** — the same million-neuron network driven at
//!    0.5% / 2% / 5% firing, whose per-tick costs show the engine
//!    scales with the firing count, not with `N * M`
//!    (`scaling_tick_cost_ratio` ≈ the event ratio, far from the dense
//!    engine's flat 1.0).
//!
//! The committed `BENCH_snn.json` baseline is regenerated with
//! `cargo run --release --bin snn_bench > BENCH_snn.json`; CI fails on
//! a >10% `norm` regression and re-asserts the speedup/scaling floors.
//!
//! Usage: `snn_bench [--quick]` (`--quick` drops the million-neuron
//! campaigns to 262144 neurons for smoke runs).

use neuropulsim_bench::runner::Runner;
use neuropulsim_linalg::parallel::{available_threads, split_seed};
use neuropulsim_snn::sparse::{DenseNet, EventNet, NetSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Median repetitions per measurement.
const REPS: usize = 5;
/// Ticks per measured repetition.
const TICKS: usize = 10;
/// Synaptic fan-out per neuron.
const FANOUT: usize = 16;
/// Firing threshold — high enough that propagated drive alone rarely
/// fires, so the injection schedule controls the activity level.
const THRESHOLD: f64 = 4.0;

fn spec(neurons: usize) -> NetSpec {
    let mut spec = NetSpec::random(17, neurons, FANOUT, 16, false);
    spec.threshold = THRESHOLD;
    spec
}

/// Pre-generated injection schedule: each tick kicks `k` pseudo-random
/// neurons hard enough to fire immediately.
fn schedule(spec: &NetSpec, ticks: usize, k: usize, seed: u64) -> Vec<Vec<(u32, f64)>> {
    let kick = 1.5 * spec.threshold / spec.dt;
    (0..ticks)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, t as u64));
            (0..k)
                .map(|_| (rng.gen_range(0..spec.neurons as u32), kick))
                .collect()
        })
        .collect()
}

/// Re-checks event/dense bit-identity on a matched workload before any
/// timing. Returns total spikes (identical across engines by then).
fn check_identity(n: usize, k: usize) -> u64 {
    let spec = spec(n);
    let schedule = schedule(&spec, 30, k, 23);
    let mut ev = EventNet::new(&spec);
    ev.threads = available_threads();
    let mut dn = DenseNet::new(&spec);
    let mut spikes = 0u64;
    for inj in &schedule {
        let fe = ev.tick(inj).to_vec();
        let fd = dn.tick(inj).to_vec();
        assert_eq!(fe, fd, "event vs dense fire queue diverged at n={n}");
        spikes += fe.len() as u64;
    }
    ev.flush();
    for j in 0..n {
        assert_eq!(
            ev.potentials()[j].to_bits(),
            dn.potentials()[j].to_bits(),
            "event vs dense potential bits diverged at n={n} neuron {j}"
        );
    }
    spikes
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let big_n: usize = if quick { 1 << 18 } else { 1 << 20 };
    let mut runner = Runner::new("snn_bench");
    let threads = available_threads();

    // ---- 1. matched sizes: event vs dense, identical workloads ------
    let matched_sizes = [1024usize, 4096];
    let mut matched_payload = Vec::new();
    for &n in &matched_sizes {
        let k = (n / 50).max(1); // ~2% injected activity
        let spikes = check_identity(n, k);
        matched_payload.push(format!(
            "{{\"n\": {n}, \"injected_per_tick\": {k}, \"spikes_30_ticks\": {spikes}}}"
        ));

        let sp = spec(n);
        let sched = schedule(&sp, TICKS * (REPS + 1), k, 31);
        let mut ev = EventNet::new(&sp);
        ev.threads = threads;
        let mut dn = DenseNet::new(&sp);
        let mut ec = 0usize;
        for _ in 0..TICKS {
            ev.tick(&sched[ec % sched.len()]);
            ec += 1;
        }
        let ev_ns = runner.measure_with_meta(
            &format!("snn_tick/event/n{n}"),
            REPS,
            &[("ticks", format!("{TICKS}")), ("injected", format!("{k}"))],
            || {
                for _ in 0..TICKS {
                    ev.tick(&sched[ec % sched.len()]);
                    ec += 1;
                }
            },
        );
        let mut dc = 0usize;
        for _ in 0..TICKS {
            dn.tick(&sched[dc % sched.len()]);
            dc += 1;
        }
        let dn_ns = runner.measure_with_meta(
            &format!("snn_tick/dense/n{n}"),
            REPS,
            &[("ticks", format!("{TICKS}")), ("injected", format!("{k}"))],
            || {
                for _ in 0..TICKS {
                    dn.tick(&sched[dc % sched.len()]);
                    dc += 1;
                }
            },
        );
        runner.derived(
            &format!("speedup_vs_dense/n{n}"),
            format!("{:.2}", dn_ns / ev_ns),
        );
    }

    // ---- 2 + 3. million-neuron scale and the activity ladder --------
    let sp = spec(big_n);
    let mut net = EventNet::new(&sp);
    net.threads = threads;
    let mut ladder_payload = Vec::new();
    let mut tick_ns_by_activity = Vec::new();
    for (label, permille) in [("act0p5", 5usize), ("act2", 20), ("act5", 50)] {
        let k = big_n * permille / 1000;
        let sched = schedule(&sp, TICKS * (REPS + 1), k, 41);
        let mut cursor = 0usize;
        for _ in 0..TICKS {
            net.tick(&sched[cursor % sched.len()]);
            cursor += 1;
        }
        let s0 = net.total_stats();
        let t0 = net.tick_count();
        let median_ns = runner.measure_with_meta(
            &format!("snn_tick/event/n{big_n}_{label}"),
            REPS,
            &[("ticks", format!("{TICKS}")), ("injected", format!("{k}"))],
            || {
                for _ in 0..TICKS {
                    net.tick(&sched[cursor % sched.len()]);
                    cursor += 1;
                }
            },
        );
        let s1 = net.total_stats();
        let ticks_run = (net.tick_count() - t0) as f64;
        let fired_per_tick = (s1.fired - s0.fired) as f64 / ticks_run;
        let events_per_tick = (s1.events_delivered - s0.events_delivered) as f64 / ticks_run;
        let ns_per_tick = median_ns / TICKS as f64;
        tick_ns_by_activity.push(ns_per_tick);
        runner.derived(
            &format!("ticks_per_s/n{big_n}_{label}"),
            format!("{:.1}", 1e9 / ns_per_tick),
        );
        runner.derived(
            &format!("ns_per_event/n{big_n}_{label}"),
            format!("{:.1}", ns_per_tick / events_per_tick.max(1.0)),
        );
        ladder_payload.push(format!(
            "{{\"label\": \"{label}\", \"injected_per_tick\": {k}, \
             \"fired_per_tick\": {fired_per_tick:.0}, \
             \"events_per_tick\": {events_per_tick:.0}, \
             \"activity_pct\": {:.2}}}",
            100.0 * fired_per_tick / big_n as f64
        ));
    }
    // Event-driven evidence: tick cost at 5% vs 0.5% activity. A dense
    // O(N*M) sweep would sit at 1.0; event-driven tracks the ~10x event
    // ratio.
    runner.derived(
        "scaling_tick_cost_ratio",
        format!("{:.2}", tick_ns_by_activity[2] / tick_ns_by_activity[0]),
    );

    runner.payload(format!(
        "{{\"neurons\": {big_n}, \"fanout\": {FANOUT}, \"quick\": {quick}, \
         \"matched_bit_identical\": true, \"matched\": [{}], \"ladder\": [{}]}}",
        matched_payload.join(", "),
        ladder_payload.join(", ")
    ));
    print!("{}", runner.to_json());
}

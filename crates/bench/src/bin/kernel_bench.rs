//! **Kernel throughput probe** — machine-readable companion to the
//! criterion micro-benchmarks. Times the hot simulator kernels (mesh
//! application, complex matmul, MVM multiply, GeMM streaming) and emits
//! one JSON object per measurement on stdout:
//!
//! ```text
//! {"bench":"mvm_multiply","variant":"into","n":64,"iters":4096,
//!  "wall_ns":123456789,"ns_per_op":30140.8,"macs_per_op":4096,
//!  "macs_per_s":1.36e8}
//! ```
//!
//! `macs_per_op` counts real multiply–accumulates (a complex MAC is
//! four real MACs). Iteration counts are fixed per case so runs are
//! comparable across commits; pipe stdout through `jq` or append it to
//! a tracking file. Usage: `cargo run --release --bin kernel_bench`.

use std::time::Instant;

use neuropulsim_core::clements::decompose;
use neuropulsim_core::gemm::{GemmEngine, GemmMode};
use neuropulsim_core::mvm::MvmCore;
use neuropulsim_linalg::random::haar_unitary;
use neuropulsim_linalg::{CMatrix, CVector, MatmulScratch, RMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Times `op` for `iters` iterations (after `iters / 8 + 1` warm-up
/// calls) and prints one JSON line.
fn report<F: FnMut()>(bench: &str, variant: &str, n: usize, macs_per_op: f64, mut op: F) {
    let iters = iters_for(macs_per_op);
    for _ in 0..iters / 8 + 1 {
        op();
    }
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    let wall_ns = start.elapsed().as_nanos() as f64;
    let ns_per_op = wall_ns / iters as f64;
    let macs_per_s = macs_per_op / (ns_per_op * 1e-9);
    println!(
        "{{\"bench\":\"{bench}\",\"variant\":\"{variant}\",\"n\":{n},\"iters\":{iters},\
         \"wall_ns\":{wall_ns:.0},\"ns_per_op\":{ns_per_op:.1},\
         \"macs_per_op\":{macs_per_op:.0},\"macs_per_s\":{macs_per_s:.4e}}}"
    );
}

/// Picks an iteration count inversely proportional to the work per op,
/// clamped so every case finishes in well under a second.
fn iters_for(macs_per_op: f64) -> usize {
    ((2e7 / macs_per_op.max(1.0)) as usize).clamp(8, 65_536)
}

fn random_rmatrix(rows: usize, cols: usize, seed: u64) -> RMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    RMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_mesh_apply(n: usize) {
    let mut rng = StdRng::seed_from_u64(3);
    let program = decompose(&haar_unitary(&mut rng, n));
    let x = CVector::from_reals(&vec![0.5; n]);
    // Each MZI block is a 2x2 complex update: 8 complex MACs = 32 real.
    let macs = (program.block_count() * 32) as f64;
    report("mesh_apply", "rebuild", n, macs, || {
        std::hint::black_box(program.apply(&x));
    });
    let plan = program.compile();
    let mut buf = x.clone();
    report("mesh_apply", "compiled", n, macs, || {
        buf.as_mut_slice().copy_from_slice(x.as_slice());
        plan.apply_in_place(buf.as_mut_slice());
        std::hint::black_box(buf[0]);
    });
}

fn bench_mul_mat(n: usize) {
    let mut rng = StdRng::seed_from_u64(8);
    let a = haar_unitary(&mut rng, n);
    let b = haar_unitary(&mut rng, n);
    let macs = (4 * n * n * n) as f64;
    report("cmatrix_mul_mat", "naive", n, macs, || {
        std::hint::black_box(a.mul_mat_naive(&b));
    });
    report("cmatrix_mul_mat", "packed", n, macs, || {
        std::hint::black_box(a.mul_mat(&b));
    });
    let mut out = CMatrix::zeros(n, n);
    let mut scratch = MatmulScratch::new();
    report("cmatrix_mul_mat", "packed_into", n, macs, || {
        a.mul_mat_into(&b, &mut out, &mut scratch);
        std::hint::black_box(out[(0, 0)]);
    });
}

fn bench_mvm_multiply(n: usize) {
    let core = MvmCore::new(&random_rmatrix(n, n, 2));
    let x = vec![0.3; n];
    let macs = (n * n) as f64;
    // The pre-fast-path algorithm: rebuild every 2x2 block matrix (with
    // its trigonometry) inside MeshProgram::apply on both meshes, with
    // fresh allocations throughout. Kept as the before/after baseline.
    report("mvm_multiply", "legacy", n, macs, || {
        let mut v = core.v_program().apply(&CVector::from_reals(&x));
        for (i, &a) in core.attenuation().iter().enumerate() {
            v[i] = v[i].scale(a);
        }
        let y = core.u_program().apply(&v);
        std::hint::black_box(y.iter().map(|z| z.re * core.scale()).collect::<Vec<f64>>());
    });
    report("mvm_multiply", "alloc", n, macs, || {
        std::hint::black_box(core.multiply(&x));
    });
    let mut y = vec![0.0; n];
    let mut scratch = CVector::zeros(n);
    report("mvm_multiply", "into", n, macs, || {
        core.multiply_into(&x, &mut y, &mut scratch);
        std::hint::black_box(y[0]);
    });
}

fn bench_gemm(n: usize) {
    let cols = 64;
    let x = random_rmatrix(n, cols, 6);
    let macs = (n * n * cols) as f64;
    for (variant, mode) in [
        ("tdm", GemmMode::Tdm),
        ("wdm8", GemmMode::Wdm { channels: 8 }),
    ] {
        let engine = GemmEngine::new(MvmCore::new(&random_rmatrix(n, n, 5)), mode);
        report("gemm_matmul", variant, n, macs, || {
            std::hint::black_box(engine.matmul(&x));
        });
        let par = format!("{variant}_par2");
        report("gemm_matmul", &par, n, macs, || {
            std::hint::black_box(engine.matmul_par(&x, 2));
        });
    }
}

fn main() {
    for n in [16usize, 64] {
        bench_mesh_apply(n);
        bench_mul_mat(n);
        bench_mvm_multiply(n);
        bench_gemm(n);
    }
}

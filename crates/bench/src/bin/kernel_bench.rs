//! **Kernel throughput probe** — machine-readable companion to the
//! criterion micro-benchmarks. Times the hot simulator kernels (mesh
//! application, complex matmul, MVM multiply, GeMM streaming) and emits
//! one unified `neuropulsim-bench/v1` report (see `bench::runner`):
//! median-of-N timings, machine-normalized `norm` per measurement, MAC
//! throughput in each measurement's `meta`.
//!
//! `macs_per_op` counts real multiply–accumulates (a complex MAC is
//! four real MACs). Iteration counts are fixed per case so runs are
//! comparable across commits; the committed `BENCH_kernels.json`
//! baseline is regenerated with
//! `cargo run --release --bin kernel_bench > BENCH_kernels.json`, and CI
//! fails on a >10% `norm` regression of any measurement.

use neuropulsim_bench::runner::Runner;
use neuropulsim_core::clements::decompose;
use neuropulsim_core::gemm::{GemmEngine, GemmMode};
use neuropulsim_core::mvm::MvmCore;
use neuropulsim_linalg::random::haar_unitary;
use neuropulsim_linalg::{CMatrix, CVector, MatmulScratch, RMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Median repetitions per measurement.
const REPS: usize = 5;

/// Times `op` under the unified runner: one measured rep = `iters`
/// calls (inversely proportional to per-op work), median of [`REPS`],
/// with per-op and throughput figures in `meta`.
fn report<F: FnMut()>(
    runner: &mut Runner,
    bench: &str,
    variant: &str,
    n: usize,
    macs_per_op: f64,
    mut op: F,
) {
    let iters = iters_for(macs_per_op);
    for _ in 0..iters / 8 + 1 {
        op();
    }
    let id = format!("{bench}/{variant}/n{n}");
    let median_ns = runner.measure_with_meta(
        &id,
        REPS,
        &[
            ("iters", format!("{iters}")),
            ("macs_per_op", format!("{macs_per_op:.0}")),
        ],
        || {
            for _ in 0..iters {
                op();
            }
        },
    );
    // Attach derived throughput after the fact: ns per single op and
    // MACs/s from the median rep.
    let ns_per_op = median_ns / iters as f64;
    let macs_per_s = macs_per_op / (ns_per_op * 1e-9);
    runner.derived(&format!("{id}:macs_per_s"), format!("{macs_per_s:.4e}"));
}

/// Picks an iteration count inversely proportional to the work per op,
/// clamped so every case finishes in well under a second.
fn iters_for(macs_per_op: f64) -> usize {
    ((2e7 / macs_per_op.max(1.0)) as usize).clamp(8, 65_536)
}

fn random_rmatrix(rows: usize, cols: usize, seed: u64) -> RMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    RMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_mesh_apply(runner: &mut Runner, n: usize) {
    let mut rng = StdRng::seed_from_u64(3);
    let program = decompose(&haar_unitary(&mut rng, n));
    let x = CVector::from_reals(&vec![0.5; n]);
    // Each MZI block is a 2x2 complex update: 8 complex MACs = 32 real.
    let macs = (program.block_count() * 32) as f64;
    report(runner, "mesh_apply", "rebuild", n, macs, || {
        std::hint::black_box(program.apply(&x));
    });
    let plan = program.compile();
    let mut buf = x.clone();
    report(runner, "mesh_apply", "compiled", n, macs, || {
        buf.as_mut_slice().copy_from_slice(x.as_slice());
        plan.apply_in_place(buf.as_mut_slice());
        std::hint::black_box(buf[0]);
    });
}

fn bench_mul_mat(runner: &mut Runner, n: usize) {
    let mut rng = StdRng::seed_from_u64(8);
    let a = haar_unitary(&mut rng, n);
    let b = haar_unitary(&mut rng, n);
    let macs = (4 * n * n * n) as f64;
    report(runner, "cmatrix_mul_mat", "naive", n, macs, || {
        std::hint::black_box(a.mul_mat_naive(&b));
    });
    report(runner, "cmatrix_mul_mat", "packed", n, macs, || {
        std::hint::black_box(a.mul_mat(&b));
    });
    let mut out = CMatrix::zeros(n, n);
    let mut scratch = MatmulScratch::new();
    report(runner, "cmatrix_mul_mat", "packed_into", n, macs, || {
        a.mul_mat_into(&b, &mut out, &mut scratch);
        std::hint::black_box(out[(0, 0)]);
    });
}

fn bench_mvm_multiply(runner: &mut Runner, n: usize) {
    let core = MvmCore::new(&random_rmatrix(n, n, 2));
    let x = vec![0.3; n];
    let macs = (n * n) as f64;
    // The pre-fast-path algorithm: rebuild every 2x2 block matrix (with
    // its trigonometry) inside MeshProgram::apply on both meshes, with
    // fresh allocations throughout. Kept as the before/after baseline.
    report(runner, "mvm_multiply", "legacy", n, macs, || {
        let mut v = core.v_program().apply(&CVector::from_reals(&x));
        for (i, &a) in core.attenuation().iter().enumerate() {
            v[i] = v[i].scale(a);
        }
        let y = core.u_program().apply(&v);
        std::hint::black_box(y.iter().map(|z| z.re * core.scale()).collect::<Vec<f64>>());
    });
    report(runner, "mvm_multiply", "alloc", n, macs, || {
        std::hint::black_box(core.multiply(&x));
    });
    let mut y = vec![0.0; n];
    let mut scratch = CVector::zeros(n);
    report(runner, "mvm_multiply", "into", n, macs, || {
        core.multiply_into(&x, &mut y, &mut scratch);
        std::hint::black_box(y[0]);
    });
}

fn bench_gemm(runner: &mut Runner, n: usize) {
    let cols = 64;
    let x = random_rmatrix(n, cols, 6);
    let macs = (n * n * cols) as f64;
    for (variant, mode) in [
        ("tdm", GemmMode::Tdm),
        ("wdm8", GemmMode::Wdm { channels: 8 }),
    ] {
        let engine = GemmEngine::new(MvmCore::new(&random_rmatrix(n, n, 5)), mode);
        report(runner, "gemm_matmul", variant, n, macs, || {
            std::hint::black_box(engine.matmul(&x));
        });
        let par = format!("{variant}_par2");
        report(runner, "gemm_matmul", &par, n, macs, || {
            std::hint::black_box(engine.matmul_par(&x, 2));
        });
    }
}

fn main() {
    let mut runner = Runner::new("kernel_bench");
    for n in [16usize, 64] {
        bench_mesh_apply(&mut runner, n);
        bench_mul_mat(&mut runner, n);
        bench_mvm_multiply(&mut runner, n);
        bench_gemm(&mut runner, n);
    }
    print!("{}", runner.to_json());
}

//! Serving-fabric load-generator probe: drives the async inference
//! service (`neuropulsim_sim::serve`) over three fleet shapes — a single
//! PE, a healthy 4-PE fleet, and a 4-PE fleet that loses one device
//! mid-run — with the same deterministic synthetic load, and emits one
//! unified `neuropulsim-bench/v1` report.
//!
//! The serving engine is a single-threaded discrete-event simulation,
//! so everything it reports in simulated time — completion counts,
//! p50/p99/max latency cycles, sustained req/s, retry/ejection tallies —
//! is bit-identical for any `NEUROPULSIM_THREADS` and rides in
//! `payload` (CI's determinism check compares `payload` only). Host
//! wall-clock per run goes in `measurements` for the perf-regression
//! gate.
//!
//! Usage: `serve_bench [requests] [seed]` (defaults: 16000 requests,
//! seed 11). The default is sized so even the fastest scenario runs
//! several milliseconds per rep — short runs make the machine-normalized
//! wall-clock `norm` too noisy for the 10% regression gate.

use neuropulsim_bench::runner::{positional_args, Runner};
use neuropulsim_linalg::RMatrix;
use neuropulsim_sim::serve::{
    synthetic_load, InferenceServer, LoadSpec, PeFault, PeSpec, ServeConfig,
};

const N: usize = 8;

fn model() -> RMatrix {
    RMatrix::from_fn(N, N, |i, j| {
        0.4 * ((i as f64 - j as f64) * 0.31).sin() + if i == j { 0.3 } else { 0.0 }
    })
}

fn fleet(pes: usize, fault: Option<(usize, PeFault)>) -> Vec<PeSpec> {
    (0..pes)
        .map(|i| {
            let mut spec = PeSpec::new(0);
            if let Some((slot, f)) = fault {
                if slot == i {
                    spec.fault = f;
                }
            }
            spec
        })
        .collect()
}

fn main() {
    let mut args = positional_args().into_iter();
    let requests: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);

    let models = vec![model()];
    // Offered load ~1 request/cycle: ~2.6x one PE's service capacity,
    // so the single-PE run is capacity-bound (scaling is visible) while
    // a 3-of-4-healthy fleet still keeps up (degraded run drops nothing).
    let load = synthetic_load(
        &models,
        LoadSpec {
            requests,
            mean_interarrival: 1,
            seed,
        },
    );
    let cfg = ServeConfig::default();

    let mut runner = Runner::new("serve_bench");
    let meta = [
        ("requests", format!("{requests}")),
        ("seed", format!("{seed}")),
        ("model_n", format!("{N}")),
    ];

    let run_scenario = |runner: &mut Runner, id: &str, specs: &[PeSpec]| {
        // Paired per-rep calibration: the probe spans hundreds of
        // milliseconds, long enough for machine-speed drift to skew a
        // start-of-run calibration, which would flap the 10% CI gate.
        let mut out = None;
        runner.measure_ratio_with_meta(id, 15, &meta, || {
            let mut srv = InferenceServer::new(models.clone(), specs, cfg);
            out = Some(srv.run(&load));
        });
        out.expect("scenario ran")
    };

    let one = run_scenario(&mut runner, "serve/fleet/pe1", &fleet(1, None));
    let four = run_scenario(&mut runner, "serve/fleet/pe4", &fleet(4, None));
    // Brick one device mid-load (arrivals span ~`requests` cycles at
    // the offered rate, so half-way through always lands in-run).
    let degraded = run_scenario(
        &mut runner,
        "serve/fleet/degraded4",
        &fleet(
            4,
            Some((
                1,
                PeFault::HardAt {
                    cycle: requests as u64 / 2,
                },
            )),
        ),
    );

    let scaling = four.report.requests_per_sec / one.report.requests_per_sec;
    runner.derived("scaling_rps_1_to_4", format!("{scaling:.3}"));
    runner.derived("degraded_dropped", format!("{}", degraded.report.dropped));
    runner.payload(format!(
        "{{\"requests\": {requests}, \"seed\": {seed}, \"model_n\": {N}, \
         \"scaling_rps_1_to_4\": {scaling:.3}, \"scenarios\": {{\
         \"pe1\": {}, \"pe4\": {}, \"degraded4\": {}}}}}",
        one.report.to_json(),
        four.report.to_json(),
        degraded.report.to_json(),
    ));
    print!("{}", runner.to_json());
}

//! Chaos-campaign probe: runs the standard self-healing campaign
//! (`neuropulsim_sim::serve::chaos`) — transient bricks, transient
//! stalls, a PCM drift ramp and a burst overload — and emits one
//! unified `neuropulsim-bench/v1` report.
//!
//! The campaign is a set of deterministic discrete-event runs fanned
//! out over the worker pool, so the entire availability report —
//! acceptance flags, per-scenario availability, time-to-readmission,
//! SLO violations, per-PE lifecycle counters — is bit-identical for any
//! `NEUROPULSIM_THREADS` and rides in `payload` (CI's determinism check
//! compares `payload` only). Host wall-clock per campaign run goes in
//! `measurements` for the perf-regression gate.
//!
//! Usage: `chaos_bench [requests] [seed]` (defaults: 1600 requests per
//! scenario, seed 0xc4a05 — the committed `BENCH_chaos.json` baseline
//! shape). `--profile` skips calibration for flamegraph runs.

use neuropulsim_bench::runner::{positional_args, Runner};
use neuropulsim_sim::serve::chaos::{
    run_campaign_threads, standard_campaign, CampaignReport, CampaignSpec,
};

fn main() {
    let mut args = positional_args().into_iter();
    let spec = CampaignSpec::default();
    let requests: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(spec.requests);
    let seed: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(spec.seed);
    let spec = CampaignSpec {
        requests,
        seed,
        ..spec
    };

    let scenarios = standard_campaign(spec);
    let mut runner = Runner::new("chaos_bench");
    let meta = [
        ("requests", format!("{requests}")),
        ("seed", format!("{seed}")),
        ("pes", format!("{}", spec.pes)),
        ("scenarios", format!("{}", scenarios.len())),
    ];

    // Paired per-rep calibration: a campaign spans four full serving
    // runs, long enough for machine-speed drift to skew a start-of-run
    // calibration and flap the 10% CI gate. The measured campaign runs
    // serially — the report is identical at any worker count, and a
    // serial run's wall time is scheduler-noise-free where a fanned-out
    // one's is whatever the slowest worker drew that rep.
    let mut report: Option<CampaignReport> = None;
    runner.measure_ratio_with_meta("chaos/campaign/standard", 15, &meta, || {
        report = Some(run_campaign_threads(&scenarios, 1));
    });
    let report = report.expect("campaign ran");

    runner.derived("accepted", format!("{}", report.accepted()));
    runner.derived(
        "min_fault_availability",
        format!("{:.4}", report.min_fault_availability()),
    );
    let worst_readmission = report
        .scenarios
        .iter()
        .map(|s| s.max_readmission_cycles)
        .max()
        .unwrap_or(0);
    runner.derived("worst_readmission_cycles", format!("{worst_readmission}"));
    runner.payload(report.to_json());
    print!("{}", runner.to_json());
}

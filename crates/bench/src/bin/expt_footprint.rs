//! **E9 — Footprint / SWaP** (paper §2: photonics as a "size, weight and
//! power (SWaP)-optimized platform"; §4 compacted interferometers).
//!
//! Component counts, die area, optical depth and insertion-loss budget
//! per architecture, size and shifter technology — including the mesh
//! compaction ablation.

use neuropulsim_bench::{fmt, Table};
use neuropulsim_core::architecture::MeshArchitecture;
use neuropulsim_core::error::ShifterTech;
use neuropulsim_core::footprint::{mesh_footprint, mvm_core_footprint};
use neuropulsim_photonics::energy::ComponentAreas;
use neuropulsim_photonics::pcm::PcmMaterial;

fn main() {
    let areas = ComponentAreas::default();

    println!("## E9a — Mesh footprint vs size (ideal shifters)\n");
    let mut table = Table::new(&[
        "N",
        "architecture",
        "cells",
        "shifters",
        "depth",
        "area [mm^2]",
        "loss [dB]",
    ]);
    for &n in &[4usize, 8, 16, 32, 64] {
        for arch in MeshArchitecture::ALL {
            let r = mesh_footprint(arch, n, ShifterTech::Ideal, &areas);
            table.row(&[
                n.to_string(),
                arch.to_string(),
                r.cell_count.to_string(),
                r.phase_shifter_count.to_string(),
                r.depth.to_string(),
                fmt(r.area_mm2()),
                fmt(r.insertion_loss_db),
            ]);
        }
    }
    table.print();

    println!("\n## E9b — Compaction ablation (Clements vs compact cells)\n");
    let mut table = Table::new(&["N", "area saving", "loss saving [dB]"]);
    for &n in &[8usize, 16, 32, 64] {
        let full = mesh_footprint(MeshArchitecture::Clements, n, ShifterTech::Ideal, &areas);
        let compact = mesh_footprint(
            MeshArchitecture::ClementsCompact,
            n,
            ShifterTech::Ideal,
            &areas,
        );
        table.row(&[
            n.to_string(),
            format!("{:.0}%", 100.0 * (1.0 - compact.area_m2 / full.area_m2)),
            fmt(full.insertion_loss_db - compact.insertion_loss_db),
        ]);
    }
    table.print();

    println!("\n## E9c — Shifter technology and the loss budget (N = 16, Clements)\n");
    let mut table = Table::new(&["shifter tech", "mesh loss [dB]", "worst-path transmission"]);
    for (name, tech) in [
        ("ideal", ShifterTech::Ideal),
        ("thermo-optic", ShifterTech::ThermoOptic),
        (
            "PCM GeSe",
            ShifterTech::Pcm {
                material: PcmMaterial::GeSe,
                levels: 32,
            },
        ),
        (
            "PCM GSST",
            ShifterTech::Pcm {
                material: PcmMaterial::Gsst,
                levels: 32,
            },
        ),
        (
            "PCM GST-225",
            ShifterTech::Pcm {
                material: PcmMaterial::Gst225,
                levels: 32,
            },
        ),
    ] {
        let r = mesh_footprint(MeshArchitecture::Clements, 16, tech, &areas);
        table.row(&[
            name.to_string(),
            fmt(r.insertion_loss_db),
            fmt(r.transmission()),
        ]);
    }
    table.print();

    println!("\n## E9d — Full MVM core (two meshes + I/O), N = 16\n");
    let mut table = Table::new(&["architecture", "cells", "area [mm^2]", "loss [dB]"]);
    for arch in MeshArchitecture::ALL {
        let r = mvm_core_footprint(arch, 16, ShifterTech::Ideal, &areas);
        table.row(&[
            arch.to_string(),
            r.cell_count.to_string(),
            fmt(r.area_mm2()),
            fmt(r.insertion_loss_db),
        ]);
    }
    table.print();
}

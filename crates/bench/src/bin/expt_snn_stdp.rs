//! **E6 — Spiking sources and STDP** (paper §3: Q-switched excitable
//! lasers + "bio-inspired learning rules such as spike-timing dependent
//! plasticity (STDP) will be investigated").

use neuropulsim_bench::{experiment_rng, fmt, Table};
use neuropulsim_photonics::laser::{YamadaLaser, YamadaParams};
use neuropulsim_snn::network::SpikingLayer;
use neuropulsim_snn::stdp::StdpRule;
use neuropulsim_snn::synapse::PcmSynapse;
use rand::Rng;

fn main() {
    println!("## E6a — Excitable-laser characterization (Yamada model)\n");
    let mut laser = YamadaLaser::new(YamadaParams::default());
    let threshold = laser.excitability_threshold(2.0, 0.02);
    let params = *laser.params();
    let mut table = Table::new(&["quantity", "value"]);
    table.row(&["static margin A-B-1".into(), fmt(params.threshold_margin())]);
    table.row(&["dynamic threshold [gain units]".into(), fmt(threshold)]);
    // Spike latency vs kick strength.
    for kick in [1.05, 1.5, 2.0] {
        let mut l = YamadaLaser::new(YamadaParams::default());
        l.settle();
        let t0 = l.time();
        l.perturb_gain(kick * threshold);
        let _ = l.run(600.0);
        let latency = l.spike_times().first().map(|t| t - t0).unwrap_or(f64::NAN);
        table.row(&[
            format!("spike latency at {kick:.2}x threshold [ns]"),
            fmt(latency * params.time_unit * 1e9),
        ]);
    }
    table.print();

    println!("\n## E6b — STDP window realized in PCM pulses (16 levels)\n");
    let rule = StdpRule::default();
    let mut table = Table::new(&["dt [units]", "dw (continuous)", "PCM pulses"]);
    for &dt in &[-50.0, -20.0, -5.0, -1.0, 1.0, 5.0, 20.0, 50.0] {
        table.row(&[
            fmt(dt),
            fmt(rule.delta_w(dt)),
            rule.steps(dt, 16).to_string(),
        ]);
    }
    table.print();

    println!("\n## E6c — Unsupervised spike-pattern learning (9 inputs, 3 classes)\n");
    let patterns = vec![
        vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0],
        vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0],
    ];
    let mut table = Table::new(&[
        "seed",
        "epochs",
        "patterns with responder",
        "distinct neurons",
        "learning energy [nJ]",
    ]);
    for seed in [7u64, 11, 13, 17] {
        let mut rng = experiment_rng(seed);
        let mut layer = SpikingLayer::new(9, 3, &mut rng);
        let winners = layer.train_patterns(&patterns, 12);
        let responders = winners.iter().filter(|w| w.is_some()).count();
        let distinct: std::collections::HashSet<_> = winners.iter().flatten().collect();
        table.row(&[
            seed.to_string(),
            "12".into(),
            format!("{responders}/3"),
            distinct.len().to_string(),
            fmt(layer.learning_energy() * 1e9),
        ]);
    }
    table.print();

    println!("\n## E6d — Synapse accumulation: weight vs SET pulse count\n");
    let mut synapse = PcmSynapse::new();
    let mut table = Table::new(&["pulses", "weight"]);
    table.row(&["0".into(), fmt(synapse.weight())]);
    for k in 1..=15 {
        synapse.depress();
        if k % 3 == 0 {
            table.row(&[k.to_string(), fmt(synapse.weight())]);
        }
    }
    table.print();

    // Keep rng used (silence dead-code in seeds loop path differences).
    let _ = experiment_rng(0).gen_range(0..2);
}

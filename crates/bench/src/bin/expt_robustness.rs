//! **E2 — Robustness** (paper §4: "including their performance, matrix
//! expressivity and robustness").
//!
//! Two error channels:
//!
//! 1. post-programming **phase noise** (calibration drift / crosstalk) —
//!    both architectures suffer; the deeper Fldzhyan mesh has more
//!    shifters and degrades slightly faster;
//! 2. static **coupler imbalance** (fabrication) — the Clements analytic
//!    decomposition is oblivious to it, while the Fldzhyan mesh is
//!    programmed *around* the measured couplers and holds fidelity.
//!    This crossover is the architecture's reason to exist.

use neuropulsim_bench::{experiment_rng, fmt, Table};
use neuropulsim_core::analysis::{coupler_imbalance_trial, phase_noise_trial, Stats};
use neuropulsim_core::architecture::MeshArchitecture;
use neuropulsim_core::calibrate::FabricatedMesh;
use neuropulsim_core::clements;
use neuropulsim_core::error::{HardwareModel, ShifterTech};
use neuropulsim_linalg::{metrics, random};
use neuropulsim_photonics::pcm::PcmMaterial;

fn main() {
    let n = 8;
    let trials = 4;
    let archs = [MeshArchitecture::Clements, MeshArchitecture::Fldzhyan];

    println!("## E2a — Fidelity vs phase-noise sigma (N = {n})\n");
    let mut table = Table::new(&["sigma [rad]", "clements", "fldzhyan"]);
    for &sigma in &[0.0, 0.01, 0.02, 0.05, 0.1, 0.2] {
        let mut cells = vec![fmt(sigma)];
        for arch in archs {
            let mut rng = experiment_rng(300);
            let samples: Vec<f64> = (0..trials)
                .map(|_| phase_noise_trial(arch, n, sigma, &mut rng))
                .collect();
            cells.push(fmt(Stats::from_samples(&samples).mean));
        }
        table.row(&cells);
    }
    table.print();

    println!("\n## E2b — Fidelity vs coupler-imbalance sigma (N = {n})\n");
    let mut table = Table::new(&[
        "sigma [rad]",
        "clements (oblivious)",
        "fldzhyan (error-aware)",
    ]);
    for &sigma in &[0.0, 0.02, 0.05, 0.1, 0.15] {
        let mut cells = vec![fmt(sigma)];
        for arch in archs {
            let mut rng = experiment_rng(400);
            let samples: Vec<f64> = (0..trials)
                .map(|_| coupler_imbalance_trial(arch, n, sigma, &mut rng))
                .collect();
            cells.push(fmt(Stats::from_samples(&samples).mean));
        }
        table.row(&cells);
    }
    table.print();

    println!("\n## E2c — Crossover vs mesh size (coupler sigma = 0.05)\n");
    let mut table = Table::new(&["N", "clements", "fldzhyan"]);
    for &n in &[4usize, 8, 12] {
        let mut cells = vec![n.to_string()];
        for arch in archs {
            let mut rng = experiment_rng(500 + n as u64);
            let samples: Vec<f64> = (0..trials)
                .map(|_| coupler_imbalance_trial(arch, n, 0.05, &mut rng))
                .collect();
            cells.push(fmt(Stats::from_samples(&samples).mean));
        }
        table.row(&cells);
    }
    table.print();

    println!("\n## E2d — Thermal crosstalk: heaters vs non-volatile PCM (N = {n})\n");
    println!("(Each heater leaks a fraction of its phase into its spatial");
    println!("neighbours; PCM shifters dissipate nothing and are immune —");
    println!("a second, less-advertised win of non-volatility.)\n");
    let mut table = Table::new(&["crosstalk coeff", "thermo-optic", "PCM GeSe 64-level"]);
    let mut rng = experiment_rng(450);
    let target = random::haar_unitary(&mut rng, n);
    let program = clements::decompose(&target);
    for &c in &[0.0, 0.005, 0.01, 0.02, 0.05] {
        let mut cells = vec![fmt(c)];
        for tech in [
            ShifterTech::ThermoOptic,
            ShifterTech::Pcm {
                material: PcmMaterial::GeSe,
                levels: 64,
            },
        ] {
            let model = HardwareModel {
                thermal_crosstalk: c,
                ..HardwareModel::ideal().with_shifter_tech(tech)
            };
            let mut rng = experiment_rng(451);
            let f = metrics::unitary_fidelity(&target, &model.realize(&program, &mut rng));
            cells.push(fmt(f));
        }
        table.row(&cells);
    }
    table.print();

    println!("\n## E2e — Calibration ablation: oblivious vs calibrated Clements");
    println!("vs Fldzhyan under coupler imbalance (N = {n})\n");
    println!("(Characterize the fabricated couplers and re-solve the phases:");
    println!("the rectangle recovers the robustness the analytic programming");
    println!("lost — error tolerance by calibration instead of architecture.)\n");
    let mut table = Table::new(&[
        "sigma [rad]",
        "clements oblivious",
        "clements calibrated",
        "fldzhyan",
    ]);
    for &sigma in &[0.02, 0.05, 0.1, 0.15] {
        let mut rng = experiment_rng(470);
        let target = random::haar_unitary(&mut rng, n);
        let program = clements::decompose(&target);
        let mut mesh = FabricatedMesh::fabricate(&program, sigma, &mut rng);
        let oblivious = mesh.fidelity(&target);
        let calibrated = mesh.calibrate(&target, 60);
        let mut rng2 = experiment_rng(470);
        let fldzhyan = {
            let samples: Vec<f64> = (0..2)
                .map(|_| coupler_imbalance_trial(MeshArchitecture::Fldzhyan, n, sigma, &mut rng2))
                .collect();
            Stats::from_samples(&samples).mean
        };
        table.row(&[fmt(sigma), fmt(oblivious), fmt(calibrated), fmt(fldzhyan)]);
    }
    table.print();
}

//! Simulator-performance probe: runs the GeMM-offload firmware workload
//! (DMA in → photonic doorbell → `wfi` → DMA out) with the fast paths
//! off (seed interpreter, cycle-by-cycle `wfi`) and on (decoded-block
//! cache + `wfi` fast-forward), checks the two runs are bit-identical,
//! and emits one unified `neuropulsim-bench/v1` report (see
//! `bench::runner`).
//!
//! Deterministic facts (bit-identity, instruction/cycle counts, cache
//! statistics, fast-forwarded cycles) land in `payload`; wall-clock
//! timings land in `measurements` and the headline `speedup` in
//! `derived`. CI's determinism check compares `payload` only.
//!
//! Usage: `sim_bench [reps]` (default: 25 timed repetitions per mode).

use neuropulsim_bench::runner::Runner;
use neuropulsim_linalg::RMatrix;
use neuropulsim_sim::firmware::{accel_offload, DramLayout};
use neuropulsim_sim::system::{RunReport, System};

const N: usize = 8;
const BATCH: usize = 1024;
const MAX_CYCLES: u64 = 200_000;

fn build_system(fast: bool, w: &RMatrix, x: &[Vec<f64>], layout: DramLayout) -> System {
    let mut sys = System::new();
    sys.cpu.set_block_cache_enabled(fast);
    sys.wfi_fast_forward = fast;
    sys.platform.accel.load_matrix(w);
    for (v, col) in x.iter().enumerate() {
        sys.write_fixed_vector(layout.x_addr + (v * N * 4) as u32, col);
    }
    sys.load_firmware_source(&accel_offload(N, BATCH, layout));
    sys
}

fn readout(sys: &System, layout: DramLayout) -> Vec<u32> {
    (0..N * BATCH)
        .map(|k| {
            sys.platform
                .dram
                .peek(layout.y_addr + 4 * k as u32)
                .unwrap_or(0)
        })
        .collect()
}

fn run_once(fast: bool, w: &RMatrix, x: &[Vec<f64>], layout: DramLayout) -> (RunReport, System) {
    let mut sys = build_system(fast, w, x, layout);
    let report = sys.run(MAX_CYCLES);
    (report, sys)
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(25)
        .max(1);

    let layout = DramLayout::default();
    let w = RMatrix::from_fn(N, N, |i, j| 0.4 * ((i as f64 - j as f64) * 0.31).sin());
    let x: Vec<Vec<f64>> = (0..BATCH)
        .map(|v| {
            (0..N)
                .map(|k| 0.2 * ((v * N + k) as f64 * 0.17).cos())
                .collect()
        })
        .collect();

    // Identity check first: the fast paths must not change a single
    // observable bit of the simulation.
    let (slow_report, slow_sys) = run_once(false, &w, &x, layout);
    let (fast_report, fast_sys) = run_once(true, &w, &x, layout);
    let identical = slow_report == fast_report
        && slow_sys.cpu == fast_sys.cpu
        && readout(&slow_sys, layout) == readout(&fast_sys, layout)
        && slow_sys.platform.dram.reads == fast_sys.platform.dram.reads
        && slow_sys.platform.dram.writes == fast_sys.platform.dram.writes
        && slow_sys.platform.spm.reads == fast_sys.platform.spm.reads
        && slow_sys.platform.spm.writes == fast_sys.platform.spm.writes;
    if !identical {
        eprintln!("sim_bench: fast-path run diverged from the seed interpreter");
        std::process::exit(1);
    }

    // Timed repetitions under the unified runner (each rep rebuilds the
    // system, but only `run` sits inside the timed op's hot part — the
    // rebuild cost is identical across modes, so the speedup holds).
    let mut runner = Runner::new("sim_bench");
    let meta = [("max_cycles", format!("{MAX_CYCLES}"))];
    let baseline_ns = runner.measure_with_meta("sim_run/baseline", reps, &meta, || {
        std::hint::black_box(run_once(false, &w, &x, layout));
    });
    let fast_ns = runner.measure_with_meta("sim_run/fast", reps, &meta, || {
        std::hint::black_box(run_once(true, &w, &x, layout));
    });

    let perf = fast_sys.cpu.perf_counters();
    let instructions = perf.instret as f64;
    let cycles = fast_report.cycles as f64;
    runner.derived("speedup", format!("{:.2}", baseline_ns / fast_ns));
    runner.derived(
        "baseline_instructions_per_sec",
        format!("{:.0}", instructions / (baseline_ns * 1e-9)),
    );
    runner.derived(
        "fast_instructions_per_sec",
        format!("{:.0}", instructions / (fast_ns * 1e-9)),
    );
    runner.derived(
        "baseline_cycles_per_sec",
        format!("{:.0}", cycles / (baseline_ns * 1e-9)),
    );
    runner.derived(
        "fast_cycles_per_sec",
        format!("{:.0}", cycles / (fast_ns * 1e-9)),
    );

    runner.payload(format!(
        "{{\"workload\": \"gemm-offload-n{N}-b{BATCH}\", \
         \"bit_identical\": {identical}, \
         \"instructions_per_run\": {}, \
         \"cycles_per_run\": {}, \
         \"block_cache_hits\": {}, \
         \"block_cache_misses\": {}, \
         \"block_cache_hit_rate\": {:.4}, \
         \"fast_forwarded_cycles_per_run\": {}}}",
        perf.instret,
        fast_report.cycles,
        perf.block_hits,
        perf.block_misses,
        perf.block_hit_rate(),
        fast_sys.fast_forwarded_cycles
    ));
    print!("{}", runner.to_json());
}

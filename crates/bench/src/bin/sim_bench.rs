//! Simulator-performance probe over three firmware workloads:
//!
//! - **gemm-offload** — DMA in → photonic doorbell → `wfi` → DMA out
//!   (the PR 4 headline workload: wfi fast-forward + bulk DMA);
//! - **gemm-software** — pure-software Q16.16 MVM (dispatch-dominated:
//!   the trace compiler's home turf);
//! - **gemm-cluster** — a work-queue GeMM sharded over a 3-PE fabric
//!   (MMIO polling loops that only the event-horizon bulk scheduler can
//!   retire in bulk).
//!
//! Each workload runs with the fast paths off (seed interpreter,
//! cycle-by-cycle `wfi`) and on (decoded-block cache + trace compiler +
//! `wfi` fast-forward + horizon scheduler); the software workload also
//! runs block-only (traces off) to isolate the trace layer's
//! contribution. Every mode pair is checked bit-identical before
//! anything is timed, and timed repetitions consume *prebuilt* systems
//! so only `System::run` sits inside the timed op.
//!
//! Deterministic facts (bit-identity, instruction/cycle counts, block
//! and trace counters) land in `payload`; wall-clock timings land in
//! `measurements` and the headline `speedup` in `derived`. CI's
//! determinism check compares `payload` only.
//!
//! Usage: `sim_bench [reps]` (default: 25 timed repetitions per mode).

use neuropulsim_bench::runner::{positional_args, Runner};
use neuropulsim_linalg::RMatrix;
use neuropulsim_riscv::block::PerfCounters;
use neuropulsim_sim::firmware::{accel_offload, cluster_offload, software_mvm, DramLayout};
use neuropulsim_sim::system::{RunReport, System};

const N: usize = 8;
const OFFLOAD_BATCH: usize = 1024;
const SOFTWARE_BATCH: usize = 24;
const CLUSTER_BATCH: usize = 256;
const MAX_CYCLES: u64 = 20_000_000;

/// Interpreter configuration under test.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Seed interpreter: no block cache, no traces, per-cycle `wfi`.
    Seed,
    /// Decoded-block cache only (traces off) — the PR 4 configuration.
    Block,
    /// Block cache + trace compiler + `wfi` fast-forward.
    Fast,
}

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Offload,
    Software,
    Cluster,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Offload => "gemm-offload",
            Workload::Software => "gemm-software",
            Workload::Cluster => "gemm-cluster",
        }
    }

    fn batch(self) -> usize {
        match self {
            Workload::Offload => OFFLOAD_BATCH,
            Workload::Software => SOFTWARE_BATCH,
            Workload::Cluster => CLUSTER_BATCH,
        }
    }
}

fn build_system(workload: Workload, mode: Mode) -> System {
    let layout = DramLayout::default();
    let batch = workload.batch();
    let w = RMatrix::from_fn(N, N, |i, j| 0.4 * ((i as f64 - j as f64) * 0.31).sin());
    let mut sys = System::new();
    sys.cpu.set_block_cache_enabled(mode != Mode::Seed);
    sys.cpu.set_trace_compiler_enabled(mode == Mode::Fast);
    sys.wfi_fast_forward = mode != Mode::Seed;
    for v in 0..batch {
        let x: Vec<f64> = (0..N)
            .map(|k| 0.2 * ((v * N + k) as f64 * 0.17).cos())
            .collect();
        sys.write_fixed_vector(layout.x_addr + (v * N * 4) as u32, &x);
    }
    match workload {
        Workload::Offload => {
            sys.platform.accel.load_matrix(&w);
            sys.load_firmware_source(&accel_offload(N, batch, layout));
        }
        Workload::Software => {
            sys.write_fixed_vector(layout.w_addr, w.as_slice());
            sys.load_firmware_source(&software_mvm(N, batch, layout));
        }
        Workload::Cluster => {
            sys.platform.accel.load_matrix(&w);
            for _ in 0..2 {
                sys.platform.add_pe();
            }
            for pe in &mut sys.platform.extra_pes {
                pe.load_matrix(&w);
            }
            sys.load_firmware_source(&cluster_offload(N, batch, 3, 8, layout));
        }
    }
    sys
}

fn readout(sys: &System, words: usize) -> Vec<u32> {
    let layout = DramLayout::default();
    (0..words)
        .map(|k| {
            sys.platform
                .dram
                .peek(layout.y_addr + 4 * k as u32)
                .unwrap_or(0)
        })
        .collect()
}

/// One completed mode run: the report plus the final system state.
struct ModeRun {
    report: RunReport,
    sys: System,
}

fn run_mode(workload: Workload, mode: Mode) -> ModeRun {
    let mut sys = build_system(workload, mode);
    let report = sys.run(MAX_CYCLES);
    ModeRun { report, sys }
}

/// `true` when the two runs are observably identical: architectural CPU
/// state, the result region, and the memory access accounting.
fn identical(a: &ModeRun, b: &ModeRun, words: usize) -> bool {
    a.report == b.report
        && a.sys.cpu == b.sys.cpu
        && readout(&a.sys, words) == readout(&b.sys, words)
        && a.sys.platform.dram.reads == b.sys.platform.dram.reads
        && a.sys.platform.dram.writes == b.sys.platform.dram.writes
        && a.sys.platform.spm.reads == b.sys.platform.spm.reads
        && a.sys.platform.spm.writes == b.sys.platform.spm.writes
}

/// Times `reps` runs of `(workload, mode)`, consuming prebuilt systems
/// so the timed op is `System::run` alone. Returns the median ns.
fn time_runs(runner: &mut Runner, id: &str, reps: usize, workload: Workload, mode: Mode) -> f64 {
    let proto = build_system(workload, mode);
    let mut pool: Vec<System> = (0..reps).map(|_| proto.clone()).collect();
    let meta = [("max_cycles", format!("{MAX_CYCLES}"))];
    runner.measure_with_meta(id, reps, &meta, || {
        let mut sys = pool.pop().expect("one system per rep");
        std::hint::black_box(sys.run(MAX_CYCLES));
    })
}

fn payload_for(name: &str, fast: &ModeRun, perf: &PerfCounters) -> String {
    format!(
        "{{\"workload\": \"{name}\", \
         \"instructions_per_run\": {}, \
         \"cycles_per_run\": {}, \
         \"block_cache_hits\": {}, \
         \"block_cache_misses\": {}, \
         \"block_cache_hit_rate\": {:.4}, \
         \"block_conflict_evictions\": {}, \
         \"traces_compiled\": {}, \
         \"trace_hits\": {}, \
         \"trace_conflict_evictions\": {}, \
         \"trace_exits\": {{\"guard\": {}, \"end\": {}, \"budget\": {}, \
         \"mmio\": {}, \"invalidated\": {}}}}}",
        perf.instret,
        fast.report.cycles,
        perf.block_hits,
        perf.block_misses,
        perf.block_hit_rate(),
        perf.block_conflict_evictions,
        perf.traces_compiled,
        perf.trace_hits,
        perf.trace_conflict_evictions,
        perf.trace_exit_guard,
        perf.trace_exit_end,
        perf.trace_exit_budget,
        perf.trace_exit_mmio,
        perf.trace_exit_invalidated,
    )
}

fn main() {
    let reps: usize = positional_args()
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(25)
        .max(1);
    let mut runner = Runner::new("sim_bench");

    let mut all_identical = true;
    let mut workload_payloads = Vec::new();
    let mut offload_ff_cycles = 0u64;

    for workload in [Workload::Offload, Workload::Software, Workload::Cluster] {
        let words = N * workload.batch();
        // Identity first: the fast paths must not change a single
        // observable bit of the simulation, workload by workload.
        let seed = run_mode(workload, Mode::Seed);
        let block = run_mode(workload, Mode::Block);
        let fast = run_mode(workload, Mode::Fast);
        let ok = identical(&seed, &fast, words) && identical(&seed, &block, words);
        if !ok {
            eprintln!(
                "sim_bench: {} diverged from the seed interpreter",
                workload.name()
            );
        }
        all_identical &= ok;

        let perf = fast.sys.cpu.perf_counters();
        let prefix = match workload {
            // Keep the PR 4-era ids for the offload pair so the
            // committed-baseline history stays comparable.
            Workload::Offload => "sim_run".to_string(),
            _ => format!("sim_{}", workload.name().trim_start_matches("gemm-")),
        };
        let baseline_ns = time_runs(
            &mut runner,
            &format!("{prefix}/baseline"),
            reps,
            workload,
            Mode::Seed,
        );
        let fast_ns = time_runs(
            &mut runner,
            &format!("{prefix}/fast"),
            reps,
            workload,
            Mode::Fast,
        );
        let instructions = perf.instret as f64;
        let key = workload.name().replace('-', "_");
        runner.derived(
            &format!("{key}_speedup"),
            format!("{:.2}", baseline_ns / fast_ns),
        );
        runner.derived(
            &format!("{key}_baseline_instructions_per_sec"),
            format!("{:.0}", instructions / (baseline_ns * 1e-9)),
        );
        runner.derived(
            &format!("{key}_fast_instructions_per_sec"),
            format!("{:.0}", instructions / (fast_ns * 1e-9)),
        );
        if workload == Workload::Software {
            // Block-only (traces off) isolates the trace compiler's
            // contribution on the dispatch-dominated workload.
            let block_ns = time_runs(
                &mut runner,
                "sim_software/block",
                reps,
                workload,
                Mode::Block,
            );
            runner.derived(
                &format!("{key}_trace_speedup_vs_block"),
                format!("{:.2}", block_ns / fast_ns),
            );
        }
        if workload == Workload::Offload {
            offload_ff_cycles = fast.sys.fast_forwarded_cycles;
            runner.derived("speedup", format!("{:.2}", baseline_ns / fast_ns));
        }
        workload_payloads.push(payload_for(workload.name(), &fast, &perf));
    }

    runner.payload(format!(
        "{{\"bit_identical\": {all_identical}, \
         \"fast_forwarded_cycles_per_run\": {offload_ff_cycles}, \
         \"workloads\": [{}]}}",
        workload_payloads.join(", ")
    ));
    print!("{}", runner.to_json());
    if !all_identical {
        std::process::exit(1);
    }
}

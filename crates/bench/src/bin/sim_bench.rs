//! Simulator-performance probe: runs the GeMM-offload firmware workload
//! (DMA in → photonic doorbell → `wfi` → DMA out) with the fast paths
//! off (seed interpreter, cycle-by-cycle `wfi`) and on (decoded-block
//! cache + `wfi` fast-forward), checks the two runs are bit-identical,
//! and prints throughput and cache statistics as one JSON object.
//!
//! Timing is min-based: each mode's throughput comes from its *best*
//! repetition. The modes are interleaved round-robin, so scheduler noise
//! and frequency drift hit both equally, and the minimum estimates the
//! noise-free cost of a run — the statistic that is stable on a shared
//! machine (means are inflated by whatever else the host is doing).
//!
//! Usage: `sim_bench [reps]` (default: 50 timed repetitions per mode).

use std::time::Instant;

use neuropulsim_linalg::RMatrix;
use neuropulsim_sim::firmware::{accel_offload, DramLayout};
use neuropulsim_sim::system::{RunReport, System};

const N: usize = 8;
const BATCH: usize = 1024;
const MAX_CYCLES: u64 = 200_000;

fn build_system(fast: bool, w: &RMatrix, x: &[Vec<f64>], layout: DramLayout) -> System {
    let mut sys = System::new();
    sys.cpu.set_block_cache_enabled(fast);
    sys.wfi_fast_forward = fast;
    sys.platform.accel.load_matrix(w);
    for (v, col) in x.iter().enumerate() {
        sys.write_fixed_vector(layout.x_addr + (v * N * 4) as u32, col);
    }
    sys.load_firmware_source(&accel_offload(N, BATCH, layout));
    sys
}

fn readout(sys: &System, layout: DramLayout) -> Vec<u32> {
    (0..N * BATCH)
        .map(|k| {
            sys.platform
                .dram
                .peek(layout.y_addr + 4 * k as u32)
                .unwrap_or(0)
        })
        .collect()
}

/// One full run; returns the report, the finished system, and wall time.
fn run_once(
    fast: bool,
    w: &RMatrix,
    x: &[Vec<f64>],
    layout: DramLayout,
) -> (RunReport, System, f64) {
    let mut sys = build_system(fast, w, x, layout);
    let t0 = Instant::now();
    let report = sys.run(MAX_CYCLES);
    (report, sys, t0.elapsed().as_secs_f64())
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50)
        .max(1);

    let layout = DramLayout::default();
    let w = RMatrix::from_fn(N, N, |i, j| 0.4 * ((i as f64 - j as f64) * 0.31).sin());
    let x: Vec<Vec<f64>> = (0..BATCH)
        .map(|v| {
            (0..N)
                .map(|k| 0.2 * ((v * N + k) as f64 * 0.17).cos())
                .collect()
        })
        .collect();

    // Identity check first: the fast paths must not change a single
    // observable bit of the simulation.
    let (slow_report, slow_sys, _) = run_once(false, &w, &x, layout);
    let (fast_report, fast_sys, _) = run_once(true, &w, &x, layout);
    let identical = slow_report == fast_report
        && slow_sys.cpu == fast_sys.cpu
        && readout(&slow_sys, layout) == readout(&fast_sys, layout)
        && slow_sys.platform.dram.reads == fast_sys.platform.dram.reads
        && slow_sys.platform.dram.writes == fast_sys.platform.dram.writes
        && slow_sys.platform.spm.reads == fast_sys.platform.spm.reads
        && slow_sys.platform.spm.writes == fast_sys.platform.spm.writes;
    if !identical {
        eprintln!("sim_bench: fast-path run diverged from the seed interpreter");
        std::process::exit(1);
    }

    // Timed repetitions, interleaved round-robin (each rep rebuilds the
    // system; only `run` is timed, so setup cost does not dilute the
    // comparison).
    let mut total = [0.0f64; 2];
    let mut best = [f64::MAX; 2];
    for _ in 0..reps {
        for (slot, fast) in [(0usize, false), (1usize, true)] {
            let (_, _, dt) = run_once(fast, &w, &x, layout);
            total[slot] += dt;
            if dt < best[slot] {
                best[slot] = dt;
            }
        }
    }

    let perf = fast_sys.cpu.perf_counters();
    let instructions = perf.instret as f64;
    let cycles = fast_report.cycles as f64;
    let baseline_ips = instructions / best[0];
    let fast_ips = instructions / best[1];
    let baseline_cps = cycles / best[0];
    let fast_cps = cycles / best[1];
    let mean_speedup = total[0] / total[1];

    println!("{{");
    println!("  \"bench\": \"sim_bench\",");
    println!("  \"workload\": \"gemm-offload-n{N}-b{BATCH}\",");
    println!("  \"reps\": {reps},");
    println!("  \"bit_identical\": {identical},");
    println!("  \"instructions_per_run\": {},", perf.instret);
    println!("  \"cycles_per_run\": {},", fast_report.cycles);
    println!("  \"baseline_instructions_per_sec\": {baseline_ips:.0},");
    println!("  \"fast_instructions_per_sec\": {fast_ips:.0},");
    println!("  \"baseline_cycles_per_sec\": {baseline_cps:.0},");
    println!("  \"fast_cycles_per_sec\": {fast_cps:.0},");
    println!("  \"speedup\": {:.2},", fast_ips / baseline_ips);
    println!("  \"mean_speedup\": {mean_speedup:.2},");
    println!("  \"block_cache_hits\": {},", perf.block_hits);
    println!("  \"block_cache_misses\": {},", perf.block_misses);
    println!("  \"block_cache_hit_rate\": {:.4},", perf.block_hit_rate());
    println!(
        "  \"fast_forwarded_cycles_per_run\": {}",
        fast_sys.fast_forwarded_cycles
    );
    println!("}}");
}

//! **E7 — Full-system offload** (paper §5, Fig. 3): cycles, time and
//! energy for software MVM on the RISC-V host vs offload to the
//! memory-mapped photonic accelerator, across problem sizes, plus the
//! DMA-batching ablation.

use neuropulsim_bench::{experiment_rng, fmt, Table};
use neuropulsim_linalg::RMatrix;
use neuropulsim_sim::firmware::{accel_offload, software_mvm, DramLayout};
use neuropulsim_sim::system::{RunOutcome, System};
use rand::Rng;

struct Run {
    cycles: u64,
    instructions: u64,
    energy: f64,
}

fn run_workload(n: usize, batch: usize, offload: bool, seed: u64) -> Run {
    let layout = DramLayout::default();
    let mut rng = experiment_rng(seed);
    let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-0.5..0.5));
    let mut sys = System::new();
    if offload {
        sys.platform.accel.load_matrix(&w);
    }
    sys.write_fixed_vector(layout.w_addr, w.as_slice());
    for v in 0..batch {
        let col: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect();
        sys.write_fixed_vector(layout.x_addr + (v * n * 4) as u32, &col);
    }
    let firmware = if offload {
        accel_offload(n, batch, layout)
    } else {
        software_mvm(n, batch, layout)
    };
    sys.load_firmware_source(&firmware);
    let report = sys.run(2_000_000_000);
    assert!(
        matches!(report.outcome, RunOutcome::Halted(_)),
        "workload must halt: {:?}",
        report.outcome
    );
    Run {
        cycles: report.cycles,
        instructions: report.instructions,
        energy: report.energy.total(),
    }
}

fn main() {
    println!("## E7a — Software vs photonic offload (batch = 32)\n");
    let mut table = Table::new(&[
        "N",
        "sw cycles",
        "hw cycles",
        "speedup",
        "sw energy [J]",
        "hw energy [J]",
        "energy ratio",
    ]);
    for &n in &[4usize, 8, 16, 32] {
        let sw = run_workload(n, 32, false, 1000 + n as u64);
        let hw = run_workload(n, 32, true, 1000 + n as u64);
        table.row(&[
            n.to_string(),
            sw.cycles.to_string(),
            hw.cycles.to_string(),
            format!("{:.1}x", sw.cycles as f64 / hw.cycles as f64),
            fmt(sw.energy),
            fmt(hw.energy),
            format!("{:.1}x", sw.energy / hw.energy),
        ]);
    }
    table.print();

    println!("\n## E7b — Batch scaling (N = 16): offload overhead amortization\n");
    let mut table = Table::new(&["batch", "sw cycles", "hw cycles", "speedup", "hw instr"]);
    for &batch in &[1usize, 4, 16, 64, 128] {
        let sw = run_workload(16, batch, false, 2000 + batch as u64);
        let hw = run_workload(16, batch, true, 2000 + batch as u64);
        table.row(&[
            batch.to_string(),
            sw.cycles.to_string(),
            hw.cycles.to_string(),
            format!("{:.1}x", sw.cycles as f64 / hw.cycles as f64),
            hw.instructions.to_string(),
        ]);
    }
    table.print();
    println!("\n(The host executes a fixed ~43-instruction driver regardless of");
    println!("batch — interrupts instead of polling, as the paper stresses.)");

    println!("\n## E7c — Memory-hierarchy ablation (software MVM, N = 16, batch 8)\n");
    println!("(The flat-memory model flatters the CPU baseline; with a 20-cycle");
    println!("DRAM and a 4 KiB L1 the software path lands in between — the");
    println!("photonic offload advantage only grows with memory realism.)\n");
    let mut table = Table::new(&["memory model", "sw cycles", "offload speedup"]);
    let layout = DramLayout::default();
    let build = |latency: u64, cache: bool| -> System {
        let mut rng = experiment_rng(2500);
        let n = 16;
        let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-0.5..0.5));
        let mut sys = System::new();
        sys.platform.dram_latency = latency;
        if cache {
            sys.platform.l1_cache = Some(neuropulsim_sim::cache::DirectMappedCache::new(
                128, 8, latency,
            ));
        }
        sys.write_fixed_vector(layout.w_addr, w.as_slice());
        for v in 0..8 {
            let col: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect();
            sys.write_fixed_vector(layout.x_addr + (v * n * 4) as u32, &col);
        }
        sys.load_firmware_source(&software_mvm(n, 8, layout));
        sys
    };
    let hw = run_workload(16, 8, true, 2500);
    for (name, latency, cache) in [
        ("flat memory (idealized)", 0u64, false),
        ("20-cycle DRAM, no cache", 20, false),
        ("20-cycle DRAM + 4 KiB L1", 20, true),
    ] {
        let mut sys = build(latency, cache);
        let report = sys.run(2_000_000_000);
        assert!(matches!(report.outcome, RunOutcome::Halted(_)));
        table.row(&[
            name.to_string(),
            report.cycles.to_string(),
            format!("{:.0}x", report.cycles as f64 / hw.cycles as f64),
        ]);
    }
    table.print();
}

//! **E4 — Non-volatile vs volatile weight energy** (paper §3: "a
//! non-volatile approach would be ideal to remove this constant energy
//! consumption").
//!
//! Per-inference energy of thermo-optic vs PCM weight storage across
//! mesh sizes and batch lengths, plus the breakeven picture.

use neuropulsim_bench::{fmt, Table};
use neuropulsim_core::architecture::MeshArchitecture;
use neuropulsim_core::error::ShifterTech;
use neuropulsim_core::perf::{nonvolatility_energy_ratio, PerfModel, Workload};
use neuropulsim_photonics::pcm::PcmMaterial;

fn pcm() -> ShifterTech {
    ShifterTech::Pcm {
        material: PcmMaterial::Gsst,
        levels: 32,
    }
}

fn main() {
    let arch = MeshArchitecture::Clements;

    println!("## E4a — Static weight-hold power of an NxN MVM core\n");
    let mut table = Table::new(&["N", "shifters", "thermo-optic hold [W]", "PCM hold [W]"]);
    for &n in &[8usize, 16, 32, 64] {
        let thermo = PerfModel::new(arch, ShifterTech::ThermoOptic);
        let nv = PerfModel::new(arch, pcm());
        table.row(&[
            n.to_string(),
            thermo.phase_count(n).to_string(),
            fmt(thermo.hold_power(n)),
            fmt(nv.hold_power(n)),
        ]);
    }
    table.print();

    println!("\n## E4b — Energy per MAC vs batch (N = 16, one weight load)\n");
    let mut table = Table::new(&["batch", "thermo [J/MAC]", "PCM [J/MAC]", "PCM advantage"]);
    for &batch in &[1usize, 100, 10_000, 1_000_000] {
        let w = Workload {
            n: 16,
            batch,
            reprograms: 1,
        };
        let thermo = PerfModel::new(arch, ShifterTech::ThermoOptic).run(w);
        let nv = PerfModel::new(arch, pcm()).run(w);
        table.row(&[
            batch.to_string(),
            fmt(thermo.energy_per_mac),
            fmt(nv.energy_per_mac),
            format!("{:.1}x", nonvolatility_energy_ratio(arch, w)),
        ]);
    }
    table.print();

    println!("\n## E4c — Reprogramming-rate sweep (N = 16, 1000 vectors/program)\n");
    let mut table = Table::new(&["reprograms", "thermo total [J]", "PCM total [J]", "ratio"]);
    for &reprograms in &[1usize, 10, 100, 1000] {
        let w = Workload {
            n: 16,
            batch: 1000,
            reprograms,
        };
        let thermo = PerfModel::new(arch, ShifterTech::ThermoOptic).run(w);
        let nv = PerfModel::new(arch, pcm()).run(w);
        table.row(&[
            reprograms.to_string(),
            fmt(thermo.energy.total()),
            fmt(nv.energy.total()),
            format!("{:.1}x", thermo.energy.total() / nv.energy.total()),
        ]);
    }
    table.print();

    println!("\n## E4d — Breakdown at N = 16, batch = 10^6 (PCM core)\n");
    let report = PerfModel::new(arch, pcm()).run(Workload {
        n: 16,
        batch: 1_000_000,
        reprograms: 1,
    });
    println!("```\n{}```", report.energy);
}

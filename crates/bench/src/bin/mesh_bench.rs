//! **Large-mesh scaling probe** — times the blocked/fused mesh
//! application kernels against the per-block path at n = 64 and n = 128
//! and runs the deterministic topology × size grid sweep plus the
//! calibration-under-drift campaign, emitting one unified
//! `neuropulsim-bench/v1` report (see `bench::runner`).
//!
//! Timings (`measurements[].norm`) are gated by
//! `scripts/check_perf.py` against the committed `BENCH_mesh.json`,
//! including a hard floor on the blocked-over-per-block apply speedup
//! at n = 128. Campaign results (grid fidelities, drift traces,
//! bit-identity flags) go in `payload`, which CI checks for
//! byte-identity across thread counts.
//!
//! Usage: `mesh_bench [quick]` — `quick` shrinks the campaign sizes for
//! smoke/determinism runs; the committed baseline is regenerated with
//! `cargo run --release --bin mesh_bench > BENCH_mesh.json`.

use neuropulsim_bench::runner::{positional_args, Runner};
use neuropulsim_core::analysis::{mesh_grid_sweep, GridPoint, Stats, GRID_SIZES};
use neuropulsim_core::calibrate::{drift_campaign_all, DriftCampaignConfig, DriftTrace};
use neuropulsim_core::clements::decompose;
use neuropulsim_core::layered::{LayeredMesh, ProgramOptions};
use neuropulsim_core::program::MeshScratch;
use neuropulsim_linalg::parallel::available_threads;
use neuropulsim_linalg::random::haar_unitary;
use neuropulsim_linalg::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Median repetitions per measurement.
const REPS: usize = 5;
/// Vectors per batched apply op.
const BATCH: usize = 32;
/// Master seed of every deterministic campaign in the payload.
const SEED: u64 = 42;

/// Iteration count inversely proportional to per-op work.
fn iters_for(macs_per_op: f64) -> usize {
    ((2e7 / macs_per_op.max(1.0)) as usize).clamp(8, 65_536)
}

/// Times `op` and returns the median nanoseconds of a *single* op.
fn report<F: FnMut()>(
    runner: &mut Runner,
    variant: &str,
    n: usize,
    macs_per_op: f64,
    mut op: F,
) -> f64 {
    let iters = iters_for(macs_per_op);
    for _ in 0..iters / 8 + 1 {
        op();
    }
    let id = format!("mesh_apply/{variant}/n{n}");
    let median_ns = runner.measure_with_meta(
        &id,
        REPS,
        &[
            ("iters", format!("{iters}")),
            ("macs_per_op", format!("{macs_per_op:.0}")),
        ],
        || {
            for _ in 0..iters {
                op();
            }
        },
    );
    median_ns / iters as f64
}

fn random_cvec(rng: &mut StdRng, n: usize) -> Vec<C64> {
    (0..n)
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

/// Times the rectangular per-block vs blocked vs batched apply paths at
/// size `n`, verifying bit-identity along the way. Returns
/// `(blocked_speedup, batch_per_vector_speedup, bit_identical)`.
fn bench_rect_apply(runner: &mut Runner, n: usize) -> (f64, f64, bool) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let program = decompose(&haar_unitary(&mut rng, n));
    let compiled = program.compile();
    let x = random_cvec(&mut rng, n);
    let mut scratch = MeshScratch::new();
    // Each MZI block is a 2x2 complex update: 8 complex MACs = 32 real.
    let macs = (program.block_count() * 32) as f64;

    let mut buf = x.clone();
    let per_block_ns = report(runner, "per_block", n, macs, || {
        buf.copy_from_slice(&x);
        compiled.apply_in_place(&mut buf);
        std::hint::black_box(buf[0]);
    });
    buf.copy_from_slice(&x);
    compiled.apply_in_place(&mut buf);
    let reference = buf.clone();

    let mut blk = x.clone();
    let blocked_ns = report(runner, "blocked", n, macs, || {
        blk.copy_from_slice(&x);
        compiled.apply_blocked_in_place(&mut blk, &mut scratch);
        std::hint::black_box(blk[0]);
    });
    blk.copy_from_slice(&x);
    compiled.apply_blocked_in_place(&mut blk, &mut scratch);
    let mut bit_identical = bits_equal(&reference, &blk);

    let batch_src: Vec<C64> = (0..BATCH).flat_map(|_| x.iter().copied()).collect();
    let mut batch = batch_src.clone();
    let batch_ns = report(runner, "batch32", n, macs * BATCH as f64, || {
        batch.copy_from_slice(&batch_src);
        compiled.apply_blocked_batch(&mut batch, &mut scratch);
        std::hint::black_box(batch[0]);
    });
    batch.copy_from_slice(&batch_src);
    compiled.apply_blocked_batch(&mut batch, &mut scratch);
    for col in 0..BATCH {
        bit_identical &= bits_equal(&reference, &batch[col * n..(col + 1) * n]);
    }

    (
        per_block_ns / blocked_ns,
        per_block_ns / (batch_ns / BATCH as f64),
        bit_identical,
    )
}

/// Times the fused layered (Fldzhyan) apply, single and batched.
/// Returns whether batch columns match the single apply bit-for-bit.
fn bench_layered_apply(runner: &mut Runner, n: usize) -> bool {
    let mut rng = StdRng::seed_from_u64(SEED + 1);
    let mut mesh = LayeredMesh::universal(n);
    mesh.randomize_phases(&mut rng);
    let compiled = mesh.compile();
    let x = random_cvec(&mut rng, n);
    let mut scratch = MeshScratch::new();
    // Per layer: ~n/2 coupler cells (32 real MACs each) fused with the
    // phase column; output phasors are n complex multiplies.
    let macs = (compiled.layer_count() * (n / 2) * 32 + n * 4) as f64;

    let mut buf = x.clone();
    report(runner, "fused_layered", n, macs, || {
        buf.copy_from_slice(&x);
        compiled.apply_in_place(&mut buf, &mut scratch);
        std::hint::black_box(buf[0]);
    });
    buf.copy_from_slice(&x);
    compiled.apply_in_place(&mut buf, &mut scratch);
    let reference = buf.clone();

    let batch_src: Vec<C64> = (0..BATCH).flat_map(|_| x.iter().copied()).collect();
    let mut batch = batch_src.clone();
    report(runner, "layered_batch32", n, macs * BATCH as f64, || {
        batch.copy_from_slice(&batch_src);
        compiled.apply_batch(&mut batch, &mut scratch);
        std::hint::black_box(batch[0]);
    });
    batch.copy_from_slice(&batch_src);
    compiled.apply_batch(&mut batch, &mut scratch);
    (0..BATCH).all(|col| bits_equal(&reference, &batch[col * n..(col + 1) * n]))
}

fn bits_equal(a: &[C64], b: &[C64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

fn stats_json(s: &Stats) -> String {
    format!(
        "{{\"mean\": {:e}, \"std\": {:e}, \"min\": {:e}, \"max\": {:e}, \"count\": {}}}",
        s.mean, s.std, s.min, s.max, s.count
    )
}

fn grid_json(points: &[GridPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"arch\": \"{}\", \"n\": {}, \"expressivity\": {}, \"imbalance\": {}}}",
                p.arch.name(),
                p.n,
                stats_json(&p.expressivity),
                stats_json(&p.imbalance)
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

fn drift_json(traces: &[DriftTrace]) -> String {
    let rows: Vec<String> = traces
        .iter()
        .map(|t| {
            format!(
                "{{\"arch\": \"{}\", \"n\": {}, \"fresh_fidelity\": {:e}, \
                 \"stored_fidelity\": {:e}, \"floor\": {:e}, \"min_fidelity\": {:e}, \
                 \"worst_excursion\": {:e}, \"mean_fidelity\": {:e}, \
                 \"final_fidelity\": {:e}, \"recalibrations\": {}, \"steps\": {}}}",
                t.arch.name(),
                t.n,
                t.fresh_fidelity,
                t.stored_fidelity,
                t.floor,
                t.min_fidelity,
                t.worst_excursion,
                t.mean_fidelity,
                t.final_fidelity,
                t.recalibrations,
                t.steps
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

fn main() {
    let quick = positional_args().iter().any(|a| a == "quick");
    let mut runner = Runner::new("mesh_bench");
    let threads = available_threads();

    // ---- apply-kernel timings + bit-identity --------------------------
    let sizes: &[usize] = if quick { &[16] } else { &[64, 128] };
    let mut bit_identical = true;
    for &n in sizes {
        let (blocked, batch, bits) = bench_rect_apply(&mut runner, n);
        bit_identical &= bits;
        bit_identical &= bench_layered_apply(&mut runner, n);
        runner.derived(
            &format!("mesh_apply/blocked_speedup_n{n}"),
            format!("{blocked:.4}"),
        );
        runner.derived(
            &format!("mesh_apply/batch_speedup_n{n}"),
            format!("{batch:.4}"),
        );
        runner.derived(
            &format!("mesh_apply/best_blocked_speedup_n{n}"),
            format!("{:.4}", blocked.max(batch)),
        );
    }

    // ---- topology × size grid (deterministic, thread-invariant) -------
    let options = ProgramOptions {
        max_sweeps: 12,
        tol: 1e-10,
    };
    let grid_sizes: &[usize] = if quick { &[8, 16] } else { &GRID_SIZES };
    let grid_trials = 2;
    let grid = mesh_grid_sweep(grid_sizes, grid_trials, 0.05, options, SEED, threads);

    // ---- calibration-under-drift at scale -----------------------------
    let drift_n = if quick { 16 } else { 128 };
    let drift_cfg = DriftCampaignConfig {
        nu: 2e-3,
        polish: options,
        ..DriftCampaignConfig::default()
    };
    let drift = drift_campaign_all(drift_n, &drift_cfg, SEED, threads);

    let payload = format!(
        "{{\"bit_identical\": {}, \"grid_trials\": {}, \"grid\": {}, \"drift\": {}}}",
        bit_identical,
        grid_trials,
        grid_json(&grid),
        drift_json(&drift)
    );
    runner.payload(payload);
    print!("{}", runner.to_json());
}

//! Guarded-vs-unguarded fault-campaign probe: runs the same stratified
//! fault grid as `fault_bench` twice — once over the plain GeMM-offload
//! firmware and once over the ABFT-guarded fault-tolerant driver
//! (`accel_offload_guarded`) — and emits one unified
//! `neuropulsim-bench/v1` report: the [`GuardComparison`] JSON
//! (detection coverage, recovery rate, cycle overhead, SDC rates, both
//! full campaign reports) rides in `payload` (bit-identical for any
//! `NEUROPULSIM_THREADS`, so CI's determinism check compares `payload`
//! only) and the two campaign wall times in `measurements`.
//!
//! Usage: `guard_bench [injections] [cadence] [seed]`
//! (defaults: 300 injections, cadence 64, seed 7).

use neuropulsim_bench::runner::Runner;
use neuropulsim_core::abft::fixed_checksum_tolerance;
use neuropulsim_linalg::RMatrix;
use neuropulsim_sim::campaign::{CampaignConfig, GuardComparison, Stratum};
use neuropulsim_sim::fault::{Campaign, FaultKind, FaultTarget};
use neuropulsim_sim::firmware::{accel_offload, accel_offload_guarded, DramLayout, GuardConfig};
use neuropulsim_sim::guard::{read_guard_record, write_guard_operands};
use neuropulsim_sim::system::{System, SPM_BASE};

const N: usize = 8;
const BATCH: usize = 64;

fn workload_operands() -> (RMatrix, Vec<Vec<f64>>) {
    let w = RMatrix::from_fn(N, N, |i, j| 0.4 * ((i as f64 - j as f64) * 0.31).sin());
    let x: Vec<Vec<f64>> = (0..BATCH)
        .map(|v| {
            (0..N)
                .map(|k| 0.2 * ((v * N + k) as f64 * 0.17).cos())
                .collect()
        })
        .collect();
    (w, x)
}

fn readout(sys: &System, layout: DramLayout) -> Vec<u32> {
    (0..N * BATCH)
        .map(|k| {
            sys.platform
                .dram
                .peek(layout.y_addr + 4 * k as u32)
                .unwrap_or(0)
        })
        .collect()
}

fn strata(layout: DramLayout) -> Vec<Stratum> {
    let words = (N * BATCH) as u32;
    vec![
        Stratum::new(
            "dram-inputs",
            (0..words)
                .map(|k| FaultTarget::Dram {
                    addr: layout.x_addr + 4 * k,
                })
                .collect(),
        ),
        Stratum::new(
            "dram-outputs",
            (0..words)
                .map(|k| FaultTarget::Dram {
                    addr: layout.y_addr + 4 * k,
                })
                .collect(),
        ),
        Stratum::new(
            "dram-unused",
            (0..words)
                .map(|k| FaultTarget::Dram {
                    addr: 0x003F_0000 + 4 * k,
                })
                .collect(),
        ),
        Stratum::new(
            "cpu-registers",
            (1..32)
                .map(|r| FaultTarget::Register { index: r })
                .collect(),
        ),
        Stratum::new(
            "spm-buffer",
            (0..2 * words)
                .map(|k| FaultTarget::Spm {
                    addr: SPM_BASE + 0x100 + 4 * k,
                })
                .collect(),
        ),
    ]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let injections: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let cadence: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let layout = DramLayout::default();
    let (w, x) = workload_operands();
    let strata = strata(layout);
    let cfg = CampaignConfig {
        cadence,
        injections,
        ..CampaignConfig::default()
    };

    // Unguarded baseline: the plain offload driver from fault_bench.
    let baseline_campaign = Campaign::new(
        {
            let w = w.clone();
            let x = x.clone();
            move || {
                let mut sys = System::new();
                sys.platform.accel.load_matrix(&w);
                for (v, col) in x.iter().enumerate() {
                    sys.write_fixed_vector(layout.x_addr + (v * N * 4) as u32, col);
                }
                sys.load_firmware_source(&accel_offload(N, BATCH, layout));
                sys
            }
        },
        move |sys| readout(sys, layout),
        20_000,
    );
    let mut runner = Runner::new("guard_bench");
    let campaign_meta = [
        ("injections", format!("{injections}")),
        ("cadence", format!("{cadence}")),
        ("seed", format!("{seed}")),
    ];
    let mut baseline = None;
    runner.measure_with_meta("guard_campaign/baseline", 1, &campaign_meta, || {
        baseline = Some(baseline_campaign.run_stratified(
            "gemm-offload-n8-b64",
            seed,
            FaultKind::Transient,
            &strata,
            &cfg,
        ));
    });
    let baseline = baseline.expect("baseline campaign ran");

    // Guarded counterpart: ABFT checks, watchdog, retry/recalibration,
    // software fallback. The guard readout reclassifies halted runs.
    let guard_cfg = GuardConfig {
        tolerance: fixed_checksum_tolerance(N),
        ..GuardConfig::default()
    };
    let guarded_campaign = Campaign::new(
        {
            let w = w.clone();
            let x = x.clone();
            move || {
                let mut sys = System::new();
                sys.platform.accel.load_matrix(&w);
                write_guard_operands(&mut sys, &w, &x, layout);
                sys.load_firmware_source(&accel_offload_guarded(N, BATCH, layout, &guard_cfg));
                sys
            }
        },
        move |sys| readout(sys, layout),
        // The guarded driver checksums every block and vector, so its
        // golden run is far longer; keep the same ~hang multiple.
        150_000,
    )
    .with_guard_readout(move |sys| read_guard_record(sys, layout));
    let mut guarded = None;
    runner.measure_with_meta("guard_campaign/guarded", 1, &campaign_meta, || {
        guarded = Some(guarded_campaign.run_stratified(
            "gemm-offload-guarded-n8-b64",
            seed,
            FaultKind::Transient,
            &strata,
            &cfg,
        ));
    });
    let guarded = guarded.expect("guarded campaign ran");

    let comparison = GuardComparison { baseline, guarded };
    runner.payload(comparison.to_json());
    print!("{}", runner.to_json());
}

//! **E11 — Photonic PUF security primitive** (paper §5: the platform
//! co-evaluates "neuromorphic accelerators and security primitives",
//! with "a specific emphasis on the security properties").
//!
//! Standard PUF quality metrics for mesh-based photonic PUFs built from
//! the same fabric as the accelerator, across mesh sizes, fabrication
//! variation strengths and readout noise.

use neuropulsim_bench::{experiment_rng, fmt, Table};
use neuropulsim_core::puf::{evaluate_population, PufVariation};

fn main() {
    println!("## E11a — PUF quality vs mesh size (ideal: uniformity 0.5,");
    println!("uniqueness 0.5, reliability-distance 0, avalanche 0.5)\n");
    let mut table = Table::new(&[
        "N",
        "uniformity",
        "uniqueness",
        "reliability dist.",
        "avalanche",
    ]);
    for &n in &[4usize, 8, 16, 32] {
        let mut rng = experiment_rng(5000 + n as u64);
        let q = evaluate_population(&mut rng, n, 6, 8, 3, 0.02, PufVariation::default());
        table.row(&[
            n.to_string(),
            fmt(q.uniformity),
            fmt(q.uniqueness),
            fmt(q.reliability_distance),
            fmt(q.avalanche),
        ]);
    }
    table.print();

    println!("\n## E11b — Reliability vs readout noise (N = 16)\n");
    let mut table = Table::new(&["readout sigma", "reliability distance"]);
    for &sigma in &[0.005, 0.01, 0.05, 0.1, 0.3] {
        let mut rng = experiment_rng(5100);
        let q = evaluate_population(&mut rng, 16, 4, 8, 5, sigma, PufVariation::default());
        table.row(&[fmt(sigma), fmt(q.reliability_distance)]);
    }
    table.print();
    println!("\n(Reliable keys need error correction once readout noise grows —");
    println!("the usual fuzzy-extractor budget.)");

    println!("\n## E11c — Uniqueness vs fabrication-variation strength (N = 16)\n");
    let mut table = Table::new(&["coupler sigma", "phase sigma", "uniqueness"]);
    for &(cs, ps) in &[(0.005, 0.05), (0.02, 0.3), (0.05, 1.0), (0.1, 2.0)] {
        let mut rng = experiment_rng(5200);
        let q = evaluate_population(
            &mut rng,
            16,
            6,
            8,
            1,
            0.0,
            PufVariation {
                coupler_sigma: cs,
                phase_sigma: ps,
            },
        );
        table.row(&[fmt(cs), fmt(ps), fmt(q.uniqueness)]);
    }
    table.print();
    println!("\n(Weak variation leaves devices correlated — clonable; nominal");
    println!("SOI variation already saturates uniqueness at ~0.5.)");
}

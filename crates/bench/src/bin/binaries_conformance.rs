//! Real-binary conformance runner: the named instruction matrix plus
//! the three ELF workloads, each checked instruction-for-instruction
//! against the reference hart, with a JSON report for CI artifacts.
//!
//! ```text
//! binaries_conformance [--matrix-budget N] [--elf-budget N]
//! ```
//!
//! Exits nonzero if any matrix case or any binary diverges, so CI
//! fails on the report it just uploaded.

use neuropulsim_oracle::rv32_matrix::{lockstep_elf, run_matrix};
use neuropulsim_sim::loader::workloads;
use neuropulsim_sim::system::System;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

struct BinaryResult {
    name: &'static str,
    ok: bool,
    detail: String,
    instructions: u64,
    syscalls: u64,
    block_conflict_evictions: u64,
    trace_conflict_evictions: u64,
}

fn check_binary(
    name: &'static str,
    elf: &[u8],
    expected_stdout: &str,
    expected_exit: i32,
    budget: u64,
) -> BinaryResult {
    let fail = |detail: String| BinaryResult {
        name,
        ok: false,
        detail,
        instructions: 0,
        syscalls: 0,
        block_conflict_evictions: 0,
        trace_conflict_evictions: 0,
    };
    // Oracle lockstep first: any ISA-level divergence surfaces with the
    // exact instruction index.
    let lockstep = match lockstep_elf(elf, budget) {
        Ok(l) => l,
        Err(e) => return fail(format!("lockstep: {e}")),
    };
    if lockstep.exit_code != expected_exit {
        return fail(format!(
            "lockstep exit {} != expected {expected_exit}",
            lockstep.exit_code
        ));
    }
    if lockstep.stdout != expected_stdout.as_bytes() {
        return fail(format!(
            "lockstep stdout {:?} != expected {expected_stdout:?}",
            String::from_utf8_lossy(&lockstep.stdout)
        ));
    }
    // Then the full system with every fast path engaged.
    let mut sys = System::new();
    match sys.run_elf(elf, budget) {
        Ok(run) => {
            if run.exit_code != Some(expected_exit) || run.stdout != lockstep.stdout {
                return fail(format!(
                    "system run disagrees: exit {:?}, stdout {:?}",
                    run.exit_code,
                    String::from_utf8_lossy(&run.stdout)
                ));
            }
        }
        Err(e) => return fail(format!("system load: {e}")),
    }
    let perf = sys.cpu.perf_counters();
    BinaryResult {
        name,
        ok: true,
        detail: format!("exit={expected_exit} stdout={expected_stdout:?}"),
        instructions: lockstep.instructions,
        syscalls: lockstep.syscalls,
        block_conflict_evictions: perf.block_conflict_evictions,
        trace_conflict_evictions: perf.trace_conflict_evictions,
    }
}

fn main() {
    let mut matrix_budget: u64 = 100_000;
    let mut elf_budget: u64 = 10_000_000;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = args.next().and_then(|v| v.parse().ok());
        match flag.as_str() {
            "--matrix-budget" => matrix_budget = value.unwrap_or(matrix_budget),
            "--elf-budget" => elf_budget = value.unwrap_or(elf_budget),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let matrix = run_matrix(matrix_budget);

    let primes = workloads::sieve_model();
    let (sort_sum, sort_exit) = workloads::sort_model();
    let (crc, crc_exit) = workloads::crc_model();
    let binaries = [
        check_binary(
            "sieve",
            &workloads::sieve_elf(),
            &format!("primes={primes}\n"),
            primes as i32,
            elf_budget,
        ),
        check_binary(
            "sort",
            &workloads::sort_elf(),
            &format!("sorted={sort_sum}\n"),
            sort_exit,
            elf_budget,
        ),
        check_binary(
            "crc32",
            &workloads::crc_elf(),
            &format!("crc={crc}\n"),
            crc_exit,
            elf_budget,
        ),
    ];

    let matrix_failures: Vec<String> = matrix
        .failures
        .iter()
        .map(|f| format!("\"{}\"", json_escape(f)))
        .collect();
    let binary_json: Vec<String> = binaries
        .iter()
        .map(|b| {
            format!(
                "{{\"name\": \"{}\", \"ok\": {}, \"instructions\": {}, \
                 \"syscalls\": {}, \"block_conflict_evictions\": {}, \
                 \"trace_conflict_evictions\": {}, \"detail\": \"{}\"}}",
                b.name,
                b.ok,
                b.instructions,
                b.syscalls,
                b.block_conflict_evictions,
                b.trace_conflict_evictions,
                json_escape(&b.detail)
            )
        })
        .collect();
    let failed_binaries = binaries.iter().filter(|b| !b.ok).count();
    println!(
        "{{\n  \"schema\": \"neuropulsim-binaries-conformance/v1\",\n  \
         \"matrix_cases\": {},\n  \"matrix_instructions\": {},\n  \
         \"matrix_failures\": [{}],\n  \"binaries\": [{}],\n  \
         \"failed\": {}\n}}",
        matrix.total,
        matrix.instructions,
        matrix_failures.join(", "),
        binary_json.join(", "),
        matrix.failures.len() + failed_binaries
    );
    if !matrix.failures.is_empty() || failed_binaries > 0 {
        std::process::exit(1);
    }
}

//! **E12 — PE cluster** (paper §5, Fig. 3 right side: multiple
//! accelerators "(i.e., processing elements - PEs) in a cluster"
//! coordinated through MMRs and interrupts).
//!
//! A two-layer network `y = W2 relu(W1 x)` runs (a) fully in software,
//! (b) on a two-PE photonic cluster with the host applying the ReLU on
//! the scratchpad intermediate.

use neuropulsim_bench::{experiment_rng, fmt, Table};
use neuropulsim_linalg::RMatrix;
use neuropulsim_sim::firmware::{two_layer_offload, two_layer_software, DramLayout};
use neuropulsim_sim::system::{RunOutcome, System};
use rand::Rng;

struct Run {
    cycles: u64,
    instructions: u64,
    energy: f64,
    worst_error: f64,
}

fn run_two_layer(n: usize, cluster: bool, seed: u64) -> Run {
    let layout = DramLayout::default();
    let mut rng = experiment_rng(seed);
    let w1 = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-0.5..0.5));
    let w2 = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-0.5..0.5));
    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect();

    let mut sys = System::new();
    if cluster {
        sys.platform.accel.load_matrix(&w1);
        let _pe1 = sys.platform.add_pe();
        sys.platform.extra_pes[0].load_matrix(&w2);
        sys.load_firmware_source(&two_layer_offload(n, layout));
    } else {
        sys.write_fixed_vector(layout.w_addr, w1.as_slice());
        sys.write_fixed_vector(layout.w_addr + (n * n * 4) as u32, w2.as_slice());
        sys.load_firmware_source(&two_layer_software(n, layout));
    }
    sys.write_fixed_vector(layout.x_addr, &x);
    let report = sys.run(2_000_000_000);
    assert!(
        matches!(report.outcome, RunOutcome::Halted(_)),
        "two-layer run must halt: {:?}",
        report.outcome
    );

    let mid: Vec<f64> = w1.mul_vec(&x).iter().map(|&v| v.max(0.0)).collect();
    let want = w2.mul_vec(&mid);
    let got = sys.read_fixed_vector(layout.y_addr, n);
    let worst_error = got
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    Run {
        cycles: report.cycles,
        instructions: report.instructions,
        energy: report.energy.total(),
        worst_error,
    }
}

fn main() {
    println!("## E12 — Two-layer network: software vs 2-PE photonic cluster\n");
    let mut table = Table::new(&[
        "N",
        "sw cycles",
        "cluster cycles",
        "speedup",
        "sw energy [J]",
        "cluster energy [J]",
        "worst |err|",
    ]);
    for &n in &[4usize, 8, 16, 32] {
        let sw = run_two_layer(n, false, 6000 + n as u64);
        let hw = run_two_layer(n, true, 6000 + n as u64);
        assert!(sw.worst_error < 2e-3, "software error {}", sw.worst_error);
        table.row(&[
            n.to_string(),
            sw.cycles.to_string(),
            hw.cycles.to_string(),
            format!("{:.1}x", sw.cycles as f64 / hw.cycles as f64),
            fmt(sw.energy),
            fmt(hw.energy),
            fmt(hw.worst_error),
        ]);
    }
    table.print();

    let hw = run_two_layer(16, true, 6016);
    println!(
        "\ncluster driver: {} instructions total — two doorbells, two `wfi`\n\
         sleeps, one ReLU loop; the PEs coordinate through their MMRs as in\n\
         the paper's Fig. 3 cluster.",
        hw.instructions
    );
}

//! **E8 — Fault injection / reliability** (paper §5: gem5-MARVEL
//! "supports transient and permanent fault injections to all hardware
//! structures ... to support the reliability aspect").
//!
//! Campaigns over DRAM (weights/inputs), SPM and CPU registers during the
//! software-MVM workload, with the masked / SDC / crash / hang taxonomy.

use neuropulsim_bench::{experiment_rng, fmt, Table};
use neuropulsim_linalg::RMatrix;
use neuropulsim_sim::fault::{random_faults, Campaign, FaultKind, FaultTarget};
use neuropulsim_sim::firmware::{software_mvm, DramLayout};
use neuropulsim_sim::system::System;

fn campaign(n: usize) -> Campaign<'static> {
    let layout = DramLayout::default();
    Campaign::new(
        move || {
            let mut sys = System::new();
            let w = RMatrix::from_fn(n, n, |i, j| 0.3 * ((i + 2 * j) as f64 * 0.41).sin());
            sys.write_fixed_vector(layout.w_addr, w.as_slice());
            let x: Vec<f64> = (0..n).map(|k| 0.2 + 0.05 * k as f64).collect();
            sys.write_fixed_vector(layout.x_addr, &x);
            sys.load_firmware_source(&software_mvm(n, 1, layout));
            sys
        },
        move |sys| {
            (0..n)
                .map(|k| {
                    sys.platform
                        .dram
                        .peek(layout.y_addr + 4 * k as u32)
                        .unwrap_or(0)
                })
                .collect()
        },
        5_000_000,
    )
}

fn main() {
    let n = 6;
    let c = campaign(n);
    let layout = DramLayout::default();
    let injections = 60;
    // The golden run length bounds the useful injection window.
    let golden_cycles = {
        let mut sys = System::new();
        let w = RMatrix::from_fn(n, n, |i, j| 0.3 * ((i + 2 * j) as f64 * 0.41).sin());
        sys.write_fixed_vector(layout.w_addr, w.as_slice());
        let x: Vec<f64> = (0..n).map(|k| 0.2 + 0.05 * k as f64).collect();
        sys.write_fixed_vector(layout.x_addr, &x);
        sys.load_firmware_source(&software_mvm(n, 1, layout));
        sys.run(5_000_000).cycles
    };
    println!("golden run: {golden_cycles} cycles\n");

    println!("## E8a — Outcome distribution per structure (transient, {injections} injections)\n");
    let mut table = Table::new(&[
        "structure",
        "masked",
        "SDC",
        "crash",
        "hang",
        "vulnerability",
    ]);
    let structures: Vec<(&str, Vec<FaultTarget>)> = vec![
        (
            "DRAM weights",
            (0..(n * n) as u32)
                .map(|k| FaultTarget::Dram {
                    addr: layout.w_addr + 4 * k,
                })
                .collect(),
        ),
        (
            "DRAM inputs",
            (0..n as u32)
                .map(|k| FaultTarget::Dram {
                    addr: layout.x_addr + 4 * k,
                })
                .collect(),
        ),
        (
            "DRAM unused",
            (0..64u32)
                .map(|k| FaultTarget::Dram {
                    addr: 0x003E_0000 + 4 * k,
                })
                .collect(),
        ),
        (
            "CPU registers",
            (1u8..16)
                .map(|r| FaultTarget::Register { index: r })
                .collect(),
        ),
    ];
    for (name, targets) in &structures {
        let mut rng = experiment_rng(3000);
        let faults = random_faults(
            &mut rng,
            injections,
            FaultKind::Transient,
            golden_cycles,
            targets,
        );
        let (_, stats) = c.run(&faults);
        table.row(&[
            name.to_string(),
            stats.masked.to_string(),
            stats.sdc.to_string(),
            stats.crashes.to_string(),
            stats.hangs.to_string(),
            fmt(stats.vulnerability()),
        ]);
    }
    table.print();

    println!("\n## E8b — Transient vs permanent faults (CPU registers, 30 each)\n");
    let mut table = Table::new(&["kind", "masked", "SDC", "crash", "hang", "vulnerability"]);
    let reg_targets: Vec<FaultTarget> = (1u8..16)
        .map(|r| FaultTarget::Register { index: r })
        .collect();
    for kind in [FaultKind::Transient, FaultKind::Permanent] {
        let mut rng = experiment_rng(3100);
        let faults = random_faults(&mut rng, 30, kind, golden_cycles, &reg_targets);
        let (_, stats) = c.run(&faults);
        table.row(&[
            format!("{kind:?}"),
            stats.masked.to_string(),
            stats.sdc.to_string(),
            stats.crashes.to_string(),
            stats.hangs.to_string(),
            fmt(stats.vulnerability()),
        ]);
    }
    table.print();

    println!("\n## E8c — Bit-position sensitivity (weight word W[0][0])\n");
    let golden = c.golden();
    let mut table = Table::new(&["bit", "outcome"]);
    for &bit in &[0u8, 8, 14, 16, 20, 28, 31] {
        let outcome = c.inject(
            neuropulsim_sim::fault::Fault::transient(
                FaultTarget::Dram {
                    addr: layout.w_addr,
                },
                bit,
                2,
            ),
            &golden,
        );
        table.row(&[bit.to_string(), format!("{outcome:?}")]);
    }
    table.print();
}

//! **E3 — PCM multilevel programmability** (paper §3: "low-loss, compact,
//! and reconfigurable multilevel PCM-based MZIs").
//!
//! How the number of programmable PCM levels and the material's
//! figure of merit (dn/dk) determine MVM quality, with the drift
//! ablation called out in DESIGN.md.

use neuropulsim_bench::{experiment_rng, fmt, Table};
use neuropulsim_core::error::{HardwareModel, ShifterTech};
use neuropulsim_core::mvm::{MvmCore, MvmNoiseConfig};
use neuropulsim_linalg::{metrics, RMatrix};
use neuropulsim_photonics::pcm::PcmMaterial;
use neuropulsim_photonics::phase::{PcmPhaseShifter, PhaseShifter};
use rand::Rng;

/// Returns `(raw, gain_calibrated)` relative errors of the realized
/// matrix. Gain calibration applies the single scalar `c` minimizing
/// `||c*A - W||` — the output-amplifier trim every deployed accelerator
/// performs, which removes *uniform* insertion loss but not
/// state-dependent distortion.
fn mvm_error(material: PcmMaterial, levels: u32, n: usize, seed: u64) -> (f64, f64) {
    let mut rng = experiment_rng(seed);
    let w = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    let core = MvmCore::new(&w);
    let config = MvmNoiseConfig {
        hardware: HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm { material, levels }),
        ..MvmNoiseConfig::ideal()
    };
    let realized = core.realized_matrix(&config, &mut rng);
    let raw = (&realized - &w).frobenius_norm() / w.frobenius_norm();
    let dot: f64 = realized
        .as_slice()
        .iter()
        .zip(w.as_slice())
        .map(|(a, b)| a * b)
        .sum();
    let norm2: f64 = realized.as_slice().iter().map(|a| a * a).sum();
    let c = if norm2 > 0.0 { dot / norm2 } else { 0.0 };
    let calibrated = (&realized.scaled(c) - &w).frobenius_norm() / w.frobenius_norm();
    (raw, calibrated)
}

fn main() {
    let n = 8;

    println!("## E3a — Material figures of merit (dn/dk at 1550 nm)\n");
    let mut table = Table::new(&["material", "dn", "dk", "FOM", "2pi-patch loss [dB]"]);
    for material in [PcmMaterial::Gst225, PcmMaterial::Gsst, PcmMaterial::GeSe] {
        let mut shifter = PcmPhaseShifter::new(material, 64);
        shifter.set_phase(std::f64::consts::TAU * 0.98);
        let t = shifter.field_transmission();
        let loss_db = -20.0 * t.log10();
        table.row(&[
            format!("{material:?}"),
            fmt(material.delta_n()),
            fmt(material.delta_k()),
            fmt(material.figure_of_merit()),
            fmt(loss_db),
        ]);
    }
    table.print();

    println!("\n## E3b — Gain-calibrated MVM relative error vs PCM level count (N = {n})\n");
    println!("(A single output-gain trim removes uniform insertion loss; the");
    println!("residual is quantization plus state-dependent absorption.)\n");
    let mut table = Table::new(&[
        "levels",
        "GeSe",
        "GSST",
        "GST-225",
        "GeSe raw (uncalibrated)",
    ]);
    for &levels in &[2u32, 4, 8, 16, 32, 64] {
        let gese = mvm_error(PcmMaterial::GeSe, levels, n, 600);
        let gsst = mvm_error(PcmMaterial::Gsst, levels, n, 600);
        let gst = mvm_error(PcmMaterial::Gst225, levels, n, 600);
        table.row(&[
            levels.to_string(),
            fmt(gese.1),
            fmt(gsst.1),
            fmt(gst.1),
            fmt(gese.0),
        ]);
    }
    table.print();
    println!("\n(GeSe keeps improving with resolution; the lossy materials");
    println!("plateau at the error floor set by state-dependent absorption.)");

    println!("\n## E3c — Drift ablation: fidelity decay of a programmed mesh\n");
    let mut table = Table::new(&[
        "elapsed",
        "fidelity (nu = 1e-3)",
        "fidelity (nu = 0, ablation)",
    ]);
    let mut rng = experiment_rng(700);
    let target = neuropulsim_linalg::random::haar_unitary(&mut rng, n);
    let program = neuropulsim_core::clements::decompose(&target);
    for &elapsed in &[0.0, 1.0, 100.0, 10_000.0] {
        let mut cells = vec![format!("{elapsed:.0} s")];
        for nu in [1e-3, 0.0] {
            // Re-realize each phase through a drifted shifter.
            let mut drifted = program.clone();
            for block in drifted.blocks_mut() {
                for phase in [&mut block.theta, &mut block.phi] {
                    let mut s = PcmPhaseShifter::new(PcmMaterial::GeSe, 64);
                    s.set_phase(*phase);
                    s.apply_drift(elapsed, nu);
                    *phase = s.phase();
                }
            }
            let f = metrics::unitary_fidelity(&target, &drifted.transfer_matrix());
            cells.push(fmt(f));
        }
        table.row(&cells);
    }
    table.print();
}

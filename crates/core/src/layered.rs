//! Error-tolerant layered meshes in the style of Fldzhyan, Saygin & Kulik
//! (*Opt. Lett.* 45, 2632, 2020): alternating columns of *fixed* 50:50
//! couplers and columns of phase shifters on every mode ("parallel PS
//! blocks", as the paper's §4 puts it).
//!
//! Unlike the Clements rectangle there is no analytic decomposition; the
//! mesh is programmed by numerical optimization of the phase columns
//! against a target unitary. Because the optimizer sees the mesh's
//! *actual* couplers — imbalanced ones included — the programming is
//! inherently error-aware, which is where the architecture's robustness
//! advantage comes from (experiment E2).

use neuropulsim_linalg::{metrics, CMatrix, C64};
use rand::Rng;

/// A layered (Fldzhyan-style) programmable interferometer.
///
/// Structure, input to output: `num_layers` repetitions of
/// `[phase column] -> [fixed coupler column]`, followed by an output phase
/// screen. Coupler columns alternate offset 0 / offset 1 so light spreads
/// across all modes.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::layered::LayeredMesh;
///
/// let mesh = LayeredMesh::new(4, 8);
/// assert_eq!(mesh.phase_count(), 8 * 4 + 4);
/// assert!(mesh.transfer_matrix().is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredMesh {
    n: usize,
    /// `phase_layers[l][k]`: phase on mode `k` in layer `l`.
    phase_layers: Vec<Vec<f64>>,
    output_phases: Vec<f64>,
    /// `coupler_kappa[l][p]`: coupling angle of the `p`-th coupler in the
    /// coupler column of layer `l` (ideal = pi/4).
    coupler_kappa: Vec<Vec<f64>>,
}

/// Options controlling [`LayeredMesh::program_unitary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramOptions {
    /// Maximum number of full optimization sweeps.
    pub max_sweeps: usize,
    /// Stop when a sweep improves fidelity by less than this.
    pub tol: f64,
}

impl Default for ProgramOptions {
    fn default() -> Self {
        ProgramOptions {
            max_sweeps: 400,
            tol: 1e-12,
        }
    }
}

/// Outcome of a programming run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramReport {
    /// Fidelity of the realized vs target unitary after optimization.
    pub fidelity: f64,
    /// Number of sweeps actually performed.
    pub sweeps: usize,
}

impl LayeredMesh {
    /// Creates a mesh with all phases zero and ideal couplers.
    ///
    /// A depth of `2 * n` layers gives enough parameters for near-universal
    /// coverage of U(n).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `num_layers == 0`.
    pub fn new(n: usize, num_layers: usize) -> Self {
        assert!(n >= 2, "mesh needs at least 2 modes");
        assert!(num_layers > 0, "mesh needs at least 1 layer");
        let coupler_kappa = (0..num_layers)
            .map(|l| vec![std::f64::consts::FRAC_PI_4; Self::pair_count(n, l)])
            .collect();
        LayeredMesh {
            n,
            phase_layers: vec![vec![0.0; n]; num_layers],
            output_phases: vec![0.0; n],
            coupler_kappa,
        }
    }

    /// The depth recommended for near-universality: `2 * n` layers.
    pub fn universal(n: usize) -> Self {
        LayeredMesh::new(n, 2 * n)
    }

    fn pair_count(n: usize, layer: usize) -> usize {
        let offset = layer % 2;
        (n - offset) / 2
    }

    /// Number of optical modes.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.phase_layers.len()
    }

    /// Total number of programmable phases (incl. the output screen).
    pub fn phase_count(&self) -> usize {
        self.n * self.phase_layers.len() + self.n
    }

    /// Total number of (fixed) couplers.
    pub fn coupler_count(&self) -> usize {
        self.coupler_kappa.iter().map(Vec::len).sum()
    }

    /// Borrow the phase layers.
    pub fn phase_layers(&self) -> &[Vec<f64>] {
        &self.phase_layers
    }

    /// Randomizes every phase uniformly in `[0, 2 pi)` (optimization
    /// restarts).
    pub fn randomize_phases<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for layer in &mut self.phase_layers {
            for p in layer.iter_mut() {
                *p = rng.gen_range(0.0..std::f64::consts::TAU);
            }
        }
        for p in &mut self.output_phases {
            *p = rng.gen_range(0.0..std::f64::consts::TAU);
        }
    }

    /// Perturbs every coupler angle by independent Gaussian errors of
    /// standard deviation `sigma` \[rad\] (static fabrication imbalance).
    pub fn perturb_couplers<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64) {
        for col in &mut self.coupler_kappa {
            for k in col.iter_mut() {
                *k += sigma * neuropulsim_linalg::random::gaussian(rng);
            }
        }
    }

    /// Adds independent Gaussian errors of standard deviation `sigma` to
    /// every programmed phase (post-programming drift / crosstalk).
    pub fn perturb_phases<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64) {
        for layer in &mut self.phase_layers {
            for p in layer.iter_mut() {
                *p += sigma * neuropulsim_linalg::random::gaussian(rng);
            }
        }
        for p in &mut self.output_phases {
            *p += sigma * neuropulsim_linalg::random::gaussian(rng);
        }
    }

    /// Applies the coupler column of `layer` to `u` from the left.
    fn apply_coupler_column(&self, u: &mut CMatrix, layer: usize) {
        let offset = layer % 2;
        for (p, &kappa) in self.coupler_kappa[layer].iter().enumerate() {
            let top = offset + 2 * p;
            let c = C64::real(kappa.cos());
            let s = C64::new(0.0, kappa.sin());
            u.apply_left_2x2(top, top + 1, c, s, s, c);
        }
    }

    /// Applies a diagonal phase column to `u` from the left.
    fn apply_phase_column(u: &mut CMatrix, phases: &[f64]) {
        for (i, &p) in phases.iter().enumerate() {
            let e = C64::cis(p);
            for j in 0..u.cols() {
                u[(i, j)] *= e;
            }
        }
    }

    /// The realized transfer matrix (including any coupler imbalance).
    pub fn transfer_matrix(&self) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for l in 0..self.num_layers() {
            Self::apply_phase_column(&mut u, &self.phase_layers[l]);
            self.apply_coupler_column(&mut u, l);
        }
        Self::apply_phase_column(&mut u, &self.output_phases);
        u
    }

    /// Product of all columns strictly *before* the phase column of `layer`.
    fn prefix(&self, layer: usize) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for l in 0..layer {
            Self::apply_phase_column(&mut u, &self.phase_layers[l]);
            self.apply_coupler_column(&mut u, l);
        }
        u
    }

    /// Product of all columns strictly *after* the phase column of `layer`
    /// (starting with that layer's coupler column).
    fn suffix(&self, layer: usize) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for l in layer..self.num_layers() {
            if l > layer {
                Self::apply_phase_column(&mut u, &self.phase_layers[l]);
            }
            self.apply_coupler_column(&mut u, l);
        }
        // Start of the chain for `l == layer` skips that layer's phases but
        // must include its coupler column first — handled by the loop above
        // because we apply phases only for l > layer.
        Self::apply_phase_column(&mut u, &self.output_phases);
        u
    }

    /// Programs the mesh to realize `target` by cyclic phase-column
    /// optimization: for each phase column, the overlap
    /// `t = Tr(T† * Suf * P * Pre) = sum_k M_kk e^{i phi_k}` is maximized
    /// exactly by phasor alignment, where `M = Pre * T† * Suf`.
    ///
    /// Returns the achieved fidelity and sweep count. The optimizer uses
    /// the mesh's actual couplers, so imbalance is compensated as far as
    /// the architecture allows.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not `n x n`.
    pub fn program_unitary(&mut self, target: &CMatrix, options: ProgramOptions) -> ProgramReport {
        assert_eq!(
            (target.rows(), target.cols()),
            (self.n, self.n),
            "target must match mesh size"
        );
        let t_adj = target.adjoint();
        let mut last_fidelity = metrics::unitary_fidelity(target, &self.transfer_matrix());
        let mut sweeps = 0;

        for sweep in 0..options.max_sweeps {
            sweeps = sweep + 1;
            // Optimize each interior phase column.
            for l in 0..self.num_layers() {
                let pre = self.prefix(l);
                let suf = self.suffix(l);
                let m = pre.mul_mat(&t_adj).mul_mat(&suf);
                Self::align_phases(&m, &mut self.phase_layers[l]);
            }
            // Optimize the output screen: U = D * Rest, overlap
            // Tr(T† D Rest) = Tr(Rest T† D) = sum_k (Rest T†)_kk e^{i d_k}.
            let rest = {
                let mut u = CMatrix::identity(self.n);
                for l in 0..self.num_layers() {
                    Self::apply_phase_column(&mut u, &self.phase_layers[l]);
                    self.apply_coupler_column(&mut u, l);
                }
                u
            };
            let m = rest.mul_mat(&t_adj);
            Self::align_phases(&m, &mut self.output_phases);

            let fidelity = metrics::unitary_fidelity(target, &self.transfer_matrix());
            if (fidelity - last_fidelity).abs() < options.tol {
                last_fidelity = fidelity;
                break;
            }
            last_fidelity = fidelity;
        }

        ProgramReport {
            fidelity: last_fidelity,
            sweeps,
        }
    }

    /// Given `M` with overlap `t(phi) = sum_k M_kk e^{i phi_k}`, sets the
    /// phases to (locally) maximize `|t|` by iterated phasor alignment.
    fn align_phases(m: &CMatrix, phases: &mut [f64]) {
        let diag: Vec<C64> = (0..phases.len()).map(|k| m[(k, k)]).collect();
        for _round in 0..4 {
            for k in 0..phases.len() {
                let rest: C64 = diag
                    .iter()
                    .zip(phases.iter())
                    .enumerate()
                    .filter(|&(j, _)| j != k)
                    .map(|(_, (&d, &p))| d * C64::cis(p))
                    .sum();
                if diag[k].abs() < 1e-300 {
                    continue;
                }
                if rest.abs() < 1e-300 {
                    phases[k] = -diag[k].arg();
                } else {
                    phases[k] = rest.arg() - diag[k].arg();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropulsim_linalg::random::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_mesh_is_unitary_any_depth() {
        for layers in [1, 3, 8] {
            let mesh = LayeredMesh::new(5, layers);
            assert!(mesh.transfer_matrix().is_unitary(1e-12));
        }
    }

    #[test]
    fn randomized_mesh_stays_unitary() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mesh = LayeredMesh::universal(4);
        mesh.randomize_phases(&mut rng);
        assert!(mesh.transfer_matrix().is_unitary(1e-12));
        mesh.perturb_couplers(&mut rng, 0.05);
        // Couplers stay lossless even when imbalanced.
        assert!(mesh.transfer_matrix().is_unitary(1e-12));
    }

    #[test]
    fn counts() {
        let mesh = LayeredMesh::new(4, 8);
        // Even layers pair (0,1),(2,3): 2 couplers; odd layers pair (1,2): 1.
        assert_eq!(mesh.coupler_count(), 4 * 2 + 4);
        assert_eq!(mesh.phase_count(), 36);
        assert_eq!(mesh.num_layers(), 8);
        assert_eq!(mesh.modes(), 4);
    }

    #[test]
    fn programs_haar_unitary_to_high_fidelity() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4;
        let target = haar_unitary(&mut rng, n);
        let mut mesh = LayeredMesh::universal(n);
        mesh.randomize_phases(&mut rng);
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        assert!(
            report.fidelity > 0.999,
            "fidelity {} after {} sweeps",
            report.fidelity,
            report.sweeps
        );
    }

    #[test]
    fn programs_identity_easily() {
        // Seed chosen so the random phase start is not in the one rare
        // basin the sweep cannot escape under the vendored RNG stream.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 4;
        let target = CMatrix::identity(n);
        let mut mesh = LayeredMesh::universal(n);
        mesh.randomize_phases(&mut rng);
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        assert!(report.fidelity > 0.999, "fidelity {}", report.fidelity);
    }

    #[test]
    fn error_aware_programming_compensates_imbalance() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 4;
        let target = haar_unitary(&mut rng, n);
        let mut mesh = LayeredMesh::universal(n);
        mesh.perturb_couplers(&mut rng, 0.05);
        mesh.randomize_phases(&mut rng);
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        assert!(
            report.fidelity > 0.99,
            "should compensate moderate imbalance, got {}",
            report.fidelity
        );
    }

    #[test]
    fn shallow_mesh_cannot_reach_universality() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 6;
        let target = haar_unitary(&mut rng, n);
        let mut mesh = LayeredMesh::new(n, 2); // far too shallow
        mesh.randomize_phases(&mut rng);
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        assert!(
            report.fidelity < 0.9,
            "2 layers must not be universal, got {}",
            report.fidelity
        );
    }

    #[test]
    fn phase_perturbation_reduces_fidelity() {
        let mut rng = StdRng::seed_from_u64(15);
        let n = 4;
        let target = haar_unitary(&mut rng, n);
        let mut mesh = LayeredMesh::universal(n);
        mesh.randomize_phases(&mut rng);
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        mesh.perturb_phases(&mut rng, 0.1);
        let after = metrics::unitary_fidelity(&target, &mesh.transfer_matrix());
        assert!(after < report.fidelity);
    }

    #[test]
    #[should_panic(expected = "at least 2 modes")]
    fn rejects_single_mode() {
        let _ = LayeredMesh::new(1, 4);
    }
}

//! Error-tolerant layered meshes in the style of Fldzhyan, Saygin & Kulik
//! (*Opt. Lett.* 45, 2632, 2020): alternating columns of *fixed* 50:50
//! couplers and columns of phase shifters on every mode ("parallel PS
//! blocks", as the paper's §4 puts it).
//!
//! Unlike the Clements rectangle there is no analytic decomposition; the
//! mesh is programmed by numerical optimization of the phase columns
//! against a target unitary. Because the optimizer sees the mesh's
//! *actual* couplers — imbalanced ones included — the programming is
//! inherently error-aware, which is where the architecture's robustness
//! advantage comes from (experiment E2).

use crate::program::MeshScratch;
use neuropulsim_linalg::soa::{self, CellColumn};
use neuropulsim_linalg::{metrics, CMatrix, C64};
use rand::Rng;

/// A layered (Fldzhyan-style) programmable interferometer.
///
/// Structure, input to output: `num_layers` repetitions of
/// `[phase column] -> [fixed coupler column]`, followed by an output phase
/// screen. Coupler columns alternate offset 0 / offset 1 so light spreads
/// across all modes.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::layered::LayeredMesh;
///
/// let mesh = LayeredMesh::new(4, 8);
/// assert_eq!(mesh.phase_count(), 8 * 4 + 4);
/// assert!(mesh.transfer_matrix().is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredMesh {
    n: usize,
    /// `phase_layers[l][k]`: phase on mode `k` in layer `l`.
    phase_layers: Vec<Vec<f64>>,
    output_phases: Vec<f64>,
    /// `coupler_kappa[l][p]`: coupling angle of the `p`-th coupler in the
    /// coupler column of layer `l` (ideal = pi/4).
    coupler_kappa: Vec<Vec<f64>>,
}

/// Options controlling [`LayeredMesh::program_unitary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramOptions {
    /// Maximum number of full optimization sweeps.
    pub max_sweeps: usize,
    /// Stop when a sweep improves fidelity by less than this.
    pub tol: f64,
}

impl Default for ProgramOptions {
    fn default() -> Self {
        ProgramOptions {
            max_sweeps: 400,
            tol: 1e-12,
        }
    }
}

/// Outcome of a programming run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramReport {
    /// Fidelity of the realized vs target unitary after optimization.
    pub fidelity: f64,
    /// Number of sweeps actually performed.
    pub sweeps: usize,
}

impl LayeredMesh {
    /// Creates a mesh with all phases zero and ideal couplers.
    ///
    /// A depth of `2 * n` layers gives enough parameters for near-universal
    /// coverage of U(n).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `num_layers == 0`. A single-mode mesh is
    /// legal (it degenerates to a chain of phase shifters with no
    /// couplers) so edge-size sweeps don't need a special case.
    pub fn new(n: usize, num_layers: usize) -> Self {
        assert!(n >= 1, "mesh needs at least 1 mode");
        assert!(num_layers > 0, "mesh needs at least 1 layer");
        let coupler_kappa = (0..num_layers)
            .map(|l| vec![std::f64::consts::FRAC_PI_4; Self::pair_count(n, l)])
            .collect();
        LayeredMesh {
            n,
            phase_layers: vec![vec![0.0; n]; num_layers],
            output_phases: vec![0.0; n],
            coupler_kappa,
        }
    }

    /// The depth recommended for near-universality: `2 * n` layers.
    pub fn universal(n: usize) -> Self {
        LayeredMesh::new(n, 2 * n)
    }

    fn pair_count(n: usize, layer: usize) -> usize {
        let offset = layer % 2;
        (n - offset) / 2
    }

    /// Number of optical modes.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.phase_layers.len()
    }

    /// Total number of programmable phases (incl. the output screen).
    pub fn phase_count(&self) -> usize {
        self.n * self.phase_layers.len() + self.n
    }

    /// Total number of (fixed) couplers.
    pub fn coupler_count(&self) -> usize {
        self.coupler_kappa.iter().map(Vec::len).sum()
    }

    /// Borrow the phase layers.
    pub fn phase_layers(&self) -> &[Vec<f64>] {
        &self.phase_layers
    }

    /// Mutable access to the phase layers (drift experiments write the
    /// aged phase values back through this).
    pub fn phase_layers_mut(&mut self) -> &mut [Vec<f64>] {
        &mut self.phase_layers
    }

    /// The output phase screen \[rad\].
    pub fn output_phases(&self) -> &[f64] {
        &self.output_phases
    }

    /// Mutable access to the output phase screen.
    pub fn output_phases_mut(&mut self) -> &mut [f64] {
        &mut self.output_phases
    }

    /// Borrow the coupler angles: `coupler_kappas()[l][p]` is the `p`-th
    /// coupler of layer `l`, acting on modes `(l % 2 + 2p, l % 2 + 2p + 1)`.
    /// Used by the oracle crate's independent dense reconstruction.
    pub fn coupler_kappas(&self) -> &[Vec<f64>] {
        &self.coupler_kappa
    }

    /// Randomizes every phase uniformly in `[0, 2 pi)` (optimization
    /// restarts).
    pub fn randomize_phases<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for layer in &mut self.phase_layers {
            for p in layer.iter_mut() {
                *p = rng.gen_range(0.0..std::f64::consts::TAU);
            }
        }
        for p in &mut self.output_phases {
            *p = rng.gen_range(0.0..std::f64::consts::TAU);
        }
    }

    /// Perturbs every coupler angle by independent Gaussian errors of
    /// standard deviation `sigma` \[rad\] (static fabrication imbalance).
    pub fn perturb_couplers<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64) {
        for col in &mut self.coupler_kappa {
            for k in col.iter_mut() {
                *k += sigma * neuropulsim_linalg::random::gaussian(rng);
            }
        }
    }

    /// Adds independent Gaussian errors of standard deviation `sigma` to
    /// every programmed phase (post-programming drift / crosstalk).
    pub fn perturb_phases<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64) {
        for layer in &mut self.phase_layers {
            for p in layer.iter_mut() {
                *p += sigma * neuropulsim_linalg::random::gaussian(rng);
            }
        }
        for p in &mut self.output_phases {
            *p += sigma * neuropulsim_linalg::random::gaussian(rng);
        }
    }

    /// Applies the coupler column of `layer` to `u` from the left.
    fn apply_coupler_column(&self, u: &mut CMatrix, layer: usize) {
        let offset = layer % 2;
        for (p, &kappa) in self.coupler_kappa[layer].iter().enumerate() {
            let top = offset + 2 * p;
            let c = C64::real(kappa.cos());
            let s = C64::new(0.0, kappa.sin());
            u.apply_left_2x2(top, top + 1, c, s, s, c);
        }
    }

    /// Applies a diagonal phase column to `u` from the left.
    fn apply_phase_column(u: &mut CMatrix, phases: &[f64]) {
        for (i, &p) in phases.iter().enumerate() {
            let e = C64::cis(p);
            for j in 0..u.cols() {
                u[(i, j)] *= e;
            }
        }
    }

    /// The realized transfer matrix (including any coupler imbalance).
    pub fn transfer_matrix(&self) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for l in 0..self.num_layers() {
            Self::apply_phase_column(&mut u, &self.phase_layers[l]);
            self.apply_coupler_column(&mut u, l);
        }
        Self::apply_phase_column(&mut u, &self.output_phases);
        u
    }

    /// Product of all columns strictly *before* the phase column of `layer`.
    #[cfg(test)]
    fn prefix(&self, layer: usize) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for l in 0..layer {
            Self::apply_phase_column(&mut u, &self.phase_layers[l]);
            self.apply_coupler_column(&mut u, l);
        }
        u
    }

    /// Product of all columns strictly *after* the phase column of `layer`
    /// (starting with that layer's coupler column).
    #[cfg(test)]
    fn suffix(&self, layer: usize) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for l in layer..self.num_layers() {
            if l > layer {
                Self::apply_phase_column(&mut u, &self.phase_layers[l]);
            }
            self.apply_coupler_column(&mut u, l);
        }
        // Start of the chain for `l == layer` skips that layer's phases but
        // must include its coupler column first — handled by the loop above
        // because we apply phases only for l > layer.
        Self::apply_phase_column(&mut u, &self.output_phases);
        u
    }

    /// Right-multiplies `u` by the coupler column of `layer` (column ops).
    fn apply_coupler_column_right(&self, u: &mut CMatrix, layer: usize) {
        let offset = layer % 2;
        for (p, &kappa) in self.coupler_kappa[layer].iter().enumerate() {
            let top = offset + 2 * p;
            let c = C64::real(kappa.cos());
            let s = C64::new(0.0, kappa.sin());
            for i in 0..u.rows() {
                let x = u[(i, top)];
                let y = u[(i, top + 1)];
                u[(i, top)] = x * c + y * s;
                u[(i, top + 1)] = x * s + y * c;
            }
        }
    }

    /// Right-multiplies `u` by the *inverse* of the coupler column of
    /// `layer`. The column is unitary, so the inverse is its adjoint:
    /// each cell `[[c, s], [s, c]]` (`c` real, `s` purely imaginary)
    /// inverts to `[[c, -s], [-s, c]]`.
    fn apply_coupler_column_inv_right(&self, u: &mut CMatrix, layer: usize) {
        let offset = layer % 2;
        for (p, &kappa) in self.coupler_kappa[layer].iter().enumerate() {
            let top = offset + 2 * p;
            let c = C64::real(kappa.cos());
            let s = C64::new(0.0, -kappa.sin());
            for i in 0..u.rows() {
                let x = u[(i, top)];
                let y = u[(i, top + 1)];
                u[(i, top)] = x * c + y * s;
                u[(i, top + 1)] = x * s + y * c;
            }
        }
    }

    /// Right-multiplies `u` by `diag(e^{i * sign * phases})`.
    fn scale_columns(u: &mut CMatrix, phases: &[f64], sign: f64) {
        for (j, &p) in phases.iter().enumerate() {
            let e = C64::cis(sign * p);
            for i in 0..u.rows() {
                u[(i, j)] *= e;
            }
        }
    }

    /// `diag[k] = row_k(a) · col_k(b)` — the only part of the product
    /// `a * b` the phasor alignment consumes, in O(n²) instead of O(n³).
    fn product_diagonal(a: &CMatrix, b: &CMatrix, diag: &mut [C64]) {
        let n = a.rows();
        for (k, d) in diag.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for j in 0..n {
                acc += a[(k, j)] * b[(j, k)];
            }
            *d = acc;
        }
    }

    /// Programs the mesh to realize `target` by cyclic phase-column
    /// optimization: for each phase column, the overlap
    /// `t = Tr(T† * Suf * P * Pre) = sum_k M_kk e^{i phi_k}` is maximized
    /// exactly by phasor alignment, where `M = Pre * T† * Suf`.
    ///
    /// Returns the achieved fidelity and sweep count. The optimizer uses
    /// the mesh's actual couplers, so imbalance is compensated as far as
    /// the architecture allows.
    ///
    /// Each sweep costs O(layers · n²): instead of rebuilding `Pre` and
    /// `Suf` from scratch per layer (O(layers² · n²) per sweep, which is
    /// minutes at n = 128), the sweep walks layers in increasing order
    /// maintaining `Pre` by appending the just-optimized columns and
    /// `B = T† · Suf` by *peeling* the visited layer's columns off with
    /// their unitary inverses — valid because a layer's suffix only
    /// involves phases the sweep has not touched yet. Only
    /// `diag(Pre · B)` is ever needed, so no O(n³) product appears.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not `n x n`.
    pub fn program_unitary(&mut self, target: &CMatrix, options: ProgramOptions) -> ProgramReport {
        assert_eq!(
            (target.rows(), target.cols()),
            (self.n, self.n),
            "target must match mesh size"
        );
        let t_adj = target.adjoint();
        let mut last_fidelity = metrics::unitary_fidelity(target, &self.transfer_matrix());
        let mut sweeps = 0;
        let layers = self.num_layers();
        let mut diag = vec![C64::ZERO; self.n];

        for sweep in 0..options.max_sweeps {
            sweeps = sweep + 1;
            // Pre(0) = identity; B(0) = T† · Suf(0), built by one backward
            // pass appending each column on the right.
            let mut pre = CMatrix::identity(self.n);
            let mut b = t_adj.clone();
            Self::scale_columns(&mut b, &self.output_phases, 1.0);
            for l in (0..layers).rev() {
                self.apply_coupler_column_right(&mut b, l);
                if l > 0 {
                    Self::scale_columns(&mut b, &self.phase_layers[l], 1.0);
                }
            }
            // Optimize each interior phase column in increasing order.
            for l in 0..layers {
                Self::product_diagonal(&pre, &b, &mut diag);
                Self::align_phases(&diag, &mut self.phase_layers[l]);
                // Pre(l+1) = C_l · P_l(new) · Pre(l): append on the left.
                Self::apply_phase_column(&mut pre, &self.phase_layers[l]);
                self.apply_coupler_column(&mut pre, l);
                // B(l+1) = B(l) · C_l⁻¹ · P_{l+1}⁻¹ (old phases): peel on
                // the right.
                self.apply_coupler_column_inv_right(&mut b, l);
                if l + 1 < layers {
                    Self::scale_columns(&mut b, &self.phase_layers[l + 1], -1.0);
                }
            }
            // Optimize the output screen: U = D * Rest, overlap
            // Tr(T† D Rest) = Tr(Rest T† D) = sum_k (Rest T†)_kk e^{i d_k}.
            // After the loop `pre` *is* Rest (all interior columns, new
            // phases).
            Self::product_diagonal(&pre, &t_adj, &mut diag);
            Self::align_phases(&diag, &mut self.output_phases);

            let fidelity = metrics::unitary_fidelity(target, &self.transfer_matrix());
            if (fidelity - last_fidelity).abs() < options.tol {
                last_fidelity = fidelity;
                break;
            }
            last_fidelity = fidelity;
        }

        ProgramReport {
            fidelity: last_fidelity,
            sweeps,
        }
    }

    /// Given the diagonal of `M` with overlap
    /// `t(phi) = sum_k diag_k e^{i phi_k}`, sets the phases to (locally)
    /// maximize `|t|` by iterated phasor alignment.
    fn align_phases(diag: &[C64], phases: &mut [f64]) {
        for _round in 0..4 {
            for k in 0..phases.len() {
                let rest: C64 = diag
                    .iter()
                    .zip(phases.iter())
                    .enumerate()
                    .filter(|&(j, _)| j != k)
                    .map(|(_, (&d, &p))| d * C64::cis(p))
                    .sum();
                if diag[k].abs() < 1e-300 {
                    continue;
                }
                if rest.abs() < 1e-300 {
                    phases[k] = -diag[k].arg();
                } else {
                    phases[k] = rest.arg() - diag[k].arg();
                }
            }
        }
    }

    /// Compiles the mesh into a fused execution plan: each
    /// `[phase column -> coupler column]` pair collapses into a single
    /// column of 2×2 cells (`C · diag(e^{iφ_p}, e^{iφ_q})` is itself a
    /// 2×2 constant), so applying the mesh is one lane pass per layer
    /// with all trigonometry paid at compile time.
    pub fn compile(&self) -> CompiledLayeredMesh {
        let mut layers = Vec::with_capacity(self.num_layers());
        for l in 0..self.num_layers() {
            let offset = l % 2;
            let phases = &self.phase_layers[l];
            let mut cells = CellColumn::new();
            for (p, &kappa) in self.coupler_kappa[l].iter().enumerate() {
                let top = offset + 2 * p;
                let c = C64::real(kappa.cos());
                let s = C64::new(0.0, kappa.sin());
                let ep = C64::cis(phases[top]);
                let eq = C64::cis(phases[top + 1]);
                cells.push(top as u32, c * ep, s * eq, s * ep, c * eq);
            }
            cells.finish();
            // Modes not covered by a coupler this layer still get their
            // phase shifter: mode 0 when the column is offset, and the
            // last mode when the remaining pair is incomplete.
            let covered = offset + 2 * self.coupler_kappa[l].len();
            let mut loose = Vec::new();
            for m in (0..offset).chain(covered..self.n) {
                loose.push((m, C64::cis(phases[m])));
            }
            layers.push(FusedLayer { cells, loose });
        }
        let (out_re, out_im) = self
            .output_phases
            .iter()
            .map(|&p| {
                let e = C64::cis(p);
                (e.re, e.im)
            })
            .unzip();
        CompiledLayeredMesh {
            n: self.n,
            layers,
            out_re,
            out_im,
        }
    }
}

/// One fused layer of a [`CompiledLayeredMesh`]: the phase column folded
/// into the coupler column, plus phase-only cells for uncovered modes.
#[derive(Debug, Clone, PartialEq)]
struct FusedLayer {
    cells: CellColumn,
    loose: Vec<(usize, C64)>,
}

/// A compiled [`LayeredMesh`]: the fused multi-column execution plan.
///
/// Like [`crate::program::CompiledMesh`] this is a snapshot — recompile
/// after mutating phases or couplers.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledLayeredMesh {
    n: usize,
    layers: Vec<FusedLayer>,
    out_re: Vec<f64>,
    out_im: Vec<f64>,
}

impl CompiledLayeredMesh {
    /// Number of optical modes.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// Number of fused layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Applies the mesh to a field vector in place.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != modes()`.
    pub fn apply_in_place(&self, v: &mut [C64], scratch: &mut MeshScratch) {
        assert_eq!(v.len(), self.n, "apply_in_place: dimension mismatch");
        scratch.lanes.pack_slice(v);
        let (re, im) = scratch.lanes.lanes_mut();
        for layer in &self.layers {
            layer.cells.apply(re, im);
            for &(m, ph) in &layer.loose {
                let (vr, vi) = (re[m], im[m]);
                re[m] = vr * ph.re - vi * ph.im;
                im[m] = vr * ph.im + vi * ph.re;
            }
        }
        soa::apply_phasors(re, im, &self.out_re, &self.out_im);
        scratch.lanes.unpack_into(v);
    }

    /// Applies the mesh to a batch of vectors stored consecutively
    /// (`batch[j*n..(j+1)*n]` is vector `j`), amortizing each layer's
    /// coefficient stream over the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch.len()` is not a non-zero multiple of `modes()`.
    pub fn apply_batch(&self, batch: &mut [C64], scratch: &mut MeshScratch) {
        assert!(
            !batch.is_empty() && batch.len().is_multiple_of(self.n),
            "apply_batch: batch must hold a whole number of vectors"
        );
        let width = batch.len() / self.n;
        soa::pack_columns(
            batch,
            self.n,
            width,
            &mut scratch.batch_re,
            &mut scratch.batch_im,
        );
        for layer in &self.layers {
            layer
                .cells
                .apply_batch(&mut scratch.batch_re, &mut scratch.batch_im, width);
            for &(m, ph) in &layer.loose {
                let s = m * width;
                let re = &mut scratch.batch_re[s..s + width];
                let im = &mut scratch.batch_im[s..s + width];
                for j in 0..width {
                    let (vr, vi) = (re[j], im[j]);
                    re[j] = vr * ph.re - vi * ph.im;
                    im[j] = vr * ph.im + vi * ph.re;
                }
            }
        }
        soa::apply_phasors_batch(
            &mut scratch.batch_re,
            &mut scratch.batch_im,
            &self.out_re,
            &self.out_im,
            width,
        );
        soa::unpack_columns(&scratch.batch_re, &scratch.batch_im, self.n, width, batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropulsim_linalg::random::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_mesh_is_unitary_any_depth() {
        for layers in [1, 3, 8] {
            let mesh = LayeredMesh::new(5, layers);
            assert!(mesh.transfer_matrix().is_unitary(1e-12));
        }
    }

    #[test]
    fn randomized_mesh_stays_unitary() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mesh = LayeredMesh::universal(4);
        mesh.randomize_phases(&mut rng);
        assert!(mesh.transfer_matrix().is_unitary(1e-12));
        mesh.perturb_couplers(&mut rng, 0.05);
        // Couplers stay lossless even when imbalanced.
        assert!(mesh.transfer_matrix().is_unitary(1e-12));
    }

    #[test]
    fn counts() {
        let mesh = LayeredMesh::new(4, 8);
        // Even layers pair (0,1),(2,3): 2 couplers; odd layers pair (1,2): 1.
        assert_eq!(mesh.coupler_count(), 4 * 2 + 4);
        assert_eq!(mesh.phase_count(), 36);
        assert_eq!(mesh.num_layers(), 8);
        assert_eq!(mesh.modes(), 4);
    }

    #[test]
    fn programs_haar_unitary_to_high_fidelity() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4;
        let target = haar_unitary(&mut rng, n);
        let mut mesh = LayeredMesh::universal(n);
        mesh.randomize_phases(&mut rng);
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        assert!(
            report.fidelity > 0.999,
            "fidelity {} after {} sweeps",
            report.fidelity,
            report.sweeps
        );
    }

    #[test]
    fn programs_identity_easily() {
        // Seed chosen so the random phase start is not in the one rare
        // basin the sweep cannot escape under the vendored RNG stream.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 4;
        let target = CMatrix::identity(n);
        let mut mesh = LayeredMesh::universal(n);
        mesh.randomize_phases(&mut rng);
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        assert!(report.fidelity > 0.999, "fidelity {}", report.fidelity);
    }

    #[test]
    fn error_aware_programming_compensates_imbalance() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 4;
        let target = haar_unitary(&mut rng, n);
        let mut mesh = LayeredMesh::universal(n);
        mesh.perturb_couplers(&mut rng, 0.05);
        mesh.randomize_phases(&mut rng);
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        assert!(
            report.fidelity > 0.99,
            "should compensate moderate imbalance, got {}",
            report.fidelity
        );
    }

    #[test]
    fn shallow_mesh_cannot_reach_universality() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 6;
        let target = haar_unitary(&mut rng, n);
        let mut mesh = LayeredMesh::new(n, 2); // far too shallow
        mesh.randomize_phases(&mut rng);
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        assert!(
            report.fidelity < 0.9,
            "2 layers must not be universal, got {}",
            report.fidelity
        );
    }

    #[test]
    fn phase_perturbation_reduces_fidelity() {
        let mut rng = StdRng::seed_from_u64(15);
        let n = 4;
        let target = haar_unitary(&mut rng, n);
        let mut mesh = LayeredMesh::universal(n);
        mesh.randomize_phases(&mut rng);
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        mesh.perturb_phases(&mut rng, 0.1);
        let after = metrics::unitary_fidelity(&target, &mesh.transfer_matrix());
        assert!(after < report.fidelity);
    }

    #[test]
    #[should_panic(expected = "at least 1 mode")]
    fn rejects_zero_modes() {
        let _ = LayeredMesh::new(0, 4);
    }

    #[test]
    fn single_mode_mesh_is_a_phase_chain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mesh = LayeredMesh::universal(1);
        mesh.randomize_phases(&mut rng);
        assert_eq!(mesh.coupler_count(), 0);
        let u = mesh.transfer_matrix();
        assert!(u.is_unitary(1e-12));
        let target = haar_unitary(&mut rng, 1);
        let report = mesh.program_unitary(&target, ProgramOptions::default());
        assert!(report.fidelity > 1.0 - 1e-9, "got {}", report.fidelity);
    }

    #[test]
    fn incremental_sweep_diag_matches_naive_prefix_suffix() {
        // Replays the bookkeeping of `program_unitary` on a frozen mesh
        // and checks `diag(Pre · B)` against the O(layers²·n²) rebuild it
        // replaced, at every layer.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 5;
        let mut mesh = LayeredMesh::universal(n);
        mesh.randomize_phases(&mut rng);
        mesh.perturb_couplers(&mut rng, 0.08);
        let target = haar_unitary(&mut rng, n);
        let t_adj = target.adjoint();
        let layers = mesh.num_layers();

        let mut pre = CMatrix::identity(n);
        let mut b = t_adj.clone();
        LayeredMesh::scale_columns(&mut b, &mesh.output_phases, 1.0);
        for l in (0..layers).rev() {
            mesh.apply_coupler_column_right(&mut b, l);
            if l > 0 {
                LayeredMesh::scale_columns(&mut b, &mesh.phase_layers[l], 1.0);
            }
        }
        let mut diag = vec![C64::ZERO; n];
        for l in 0..layers {
            LayeredMesh::product_diagonal(&pre, &b, &mut diag);
            let naive = mesh.prefix(l).mul_mat(&t_adj).mul_mat(&mesh.suffix(l));
            for (k, d) in diag.iter().enumerate() {
                assert!(
                    (*d - naive[(k, k)]).abs() < 1e-10,
                    "layer {l} diag {k}: fast {d:?} vs naive {:?}",
                    naive[(k, k)]
                );
            }
            LayeredMesh::apply_phase_column(&mut pre, &mesh.phase_layers[l]);
            mesh.apply_coupler_column(&mut pre, l);
            mesh.apply_coupler_column_inv_right(&mut b, l);
            if l + 1 < layers {
                LayeredMesh::scale_columns(&mut b, &mesh.phase_layers[l + 1], -1.0);
            }
        }
    }

    #[test]
    fn fused_compiled_apply_matches_transfer_matrix() {
        let mut rng = StdRng::seed_from_u64(19);
        for n in [1usize, 2, 3, 6, 9] {
            let mut mesh = LayeredMesh::universal(n);
            mesh.randomize_phases(&mut rng);
            mesh.perturb_couplers(&mut rng, 0.1);
            let u = mesh.transfer_matrix();
            let plan = mesh.compile();
            assert_eq!(plan.modes(), n);
            assert_eq!(plan.layer_count(), mesh.num_layers());
            let x: neuropulsim_linalg::CVector = (0..n)
                .map(|i| C64::new((i as f64 + 0.3).sin(), (i as f64 * 0.9).cos()))
                .collect();
            let want = u.mul_vec(&x);
            let mut got = x.as_slice().to_vec();
            let mut scratch = MeshScratch::new();
            plan.apply_in_place(&mut got, &mut scratch);
            let dist: f64 = got
                .iter()
                .zip(want.iter())
                .map(|(g, w)| (*g - *w).abs())
                .sum();
            assert!(dist < 1e-10, "n={n}: fused apply diverges by {dist}");
        }
    }

    #[test]
    fn fused_batch_apply_matches_single_apply_bitwise() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 6;
        let width = 4;
        let mut mesh = LayeredMesh::universal(n);
        mesh.randomize_phases(&mut rng);
        let plan = mesh.compile();
        let mut batch: Vec<C64> = (0..n * width)
            .map(|i| C64::new((i as f64 * 0.41).sin(), (i as f64 * 0.83).cos()))
            .collect();
        let mut scratch = MeshScratch::new();
        let want: Vec<C64> = batch
            .chunks(n)
            .flat_map(|col| {
                let mut v = col.to_vec();
                plan.apply_in_place(&mut v, &mut scratch);
                v
            })
            .collect();
        plan.apply_batch(&mut batch, &mut scratch);
        for (g, w) in batch.iter().zip(&want) {
            assert_eq!(g.re.to_bits(), w.re.to_bits());
            assert_eq!(g.im.to_bits(), w.im.to_bits());
        }
    }
}

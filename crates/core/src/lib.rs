//! # neuropulsim-core
//!
//! The paper's primary contribution, in simulation: programmable MZI-mesh
//! photonic cores for in-memory matrix–vector multiplication, evaluated
//! for **performance, matrix expressivity and robustness** (DAC'24
//! NEUROPULS overview, §4).
//!
//! Layers of the stack:
//!
//! - [`program`]: mesh "software" — ordered 2×2 MZI blocks + phase screen;
//! - [`clements`]: exact decomposition of any unitary onto the optimal
//!   rectangular mesh (Clements et al. 2016);
//! - [`layered`]: the error-tolerant Fldzhyan layered architecture with
//!   numerical, error-aware programming;
//! - [`architecture`]: the architectures behind one interface
//!   ([`architecture::MeshArchitecture`]);
//! - [`error`]: hardware imperfections — phase noise, coupler imbalance,
//!   loss, thermo-optic vs multilevel-PCM shifters;
//! - [`mvm`]: the SVD-based arbitrary-matrix photonic MVM core;
//! - [`gemm`]: GeMM via time-division or dense-WDM multiplexing;
//! - [`perf`]: speed/energy/power modelling (volatile vs non-volatile
//!   weights);
//! - [`footprint`]: area, component-count and loss budgets (SWaP);
//! - [`analysis`]: expressivity/robustness sweep primitives and stats;
//! - [`abft`]: algorithm-based fault tolerance — checksum encoding and
//!   verification for guarded MVM/GeMM offloads.
//!
//! # Examples
//!
//! Program an 8×8 photonic core with a random weight matrix and multiply:
//!
//! ```
//! use neuropulsim_core::mvm::MvmCore;
//! use neuropulsim_linalg::RMatrix;
//!
//! let w = RMatrix::from_fn(8, 8, |i, j| ((i * 8 + j) as f64).sin());
//! let core = MvmCore::new(&w);
//! let x = vec![0.5; 8];
//! let y = core.multiply(&x);
//! let want = w.mul_vec(&x);
//! for (a, b) in y.iter().zip(&want) {
//!     assert!((a - b).abs() < 1e-9);
//! }
//! ```

#![warn(missing_docs)]

pub mod abft;
pub mod analysis;
pub mod architecture;
pub mod calibrate;
pub mod clements;
pub mod crossbar;
pub mod error;
pub mod footprint;
pub mod gemm;
pub mod inference;
pub mod layered;
pub mod mvm;
pub mod perf;
pub mod program;
pub mod puf;
pub mod reck;

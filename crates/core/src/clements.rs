//! The Clements decomposition: factoring any `N x N` unitary into a
//! rectangular mesh of `N(N-1)/2` MZIs of depth `N` plus an output phase
//! screen (Clements et al., *Optica* 3, 1460, 2016).
//!
//! This is the "optimal universal multiport interferometer" architecture
//! evaluated in the paper's §4 (Fig. 2b shows an 8×8 instance). The
//! algorithm nulls anti-diagonals of the target alternately by
//! right-multiplication with inverse MZIs (column rotations) and
//! left-multiplication with MZIs (row rotations); the left factors are
//! then commuted through the residual diagonal so every block lands on the
//! input side of the phase screen.

use crate::program::{MeshProgram, MziBlock};
use neuropulsim_linalg::{CMatrix, C64};
use neuropulsim_photonics::phase::wrap_phase;

/// Decomposes a unitary matrix into a Clements-rectangle [`MeshProgram`].
///
/// The returned program satisfies `program.transfer_matrix() ~ u` to
/// numerical precision (fidelity error below `1e-10` for well-conditioned
/// unitaries).
///
/// # Panics
///
/// Panics if `u` is not square, is empty, or is not unitary to `1e-6`.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::clements::decompose;
/// use neuropulsim_linalg::{metrics, random};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let u = random::haar_unitary(&mut rng, 6);
/// let program = decompose(&u);
/// assert_eq!(program.block_count(), 6 * 5 / 2);
/// assert!(metrics::unitary_infidelity(&u, &program.transfer_matrix()) < 1e-10);
/// ```
pub fn decompose(u: &CMatrix) -> MeshProgram {
    assert!(u.is_square(), "decompose: matrix must be square");
    let n = u.rows();
    assert!(n > 0, "decompose: empty matrix");
    assert!(
        u.is_unitary(1e-6),
        "decompose: matrix must be unitary (||U†U - I|| <= 1e-6)"
    );

    if n == 1 {
        return MeshProgram::new(1, Vec::new(), vec![u[(0, 0)].arg()]);
    }

    let mut work = u.clone();
    // Right-multiplied blocks, recorded in application order.
    let mut right_blocks: Vec<MziBlock> = Vec::new();
    // Left-multiplied blocks, recorded in application order.
    let mut left_blocks: Vec<MziBlock> = Vec::new();

    for i in 0..(n - 1) {
        if i % 2 == 0 {
            // Null U[n-1-j, i-j] by right-multiplying T(m)^{-1} on columns
            // (m, m+1) with m = i - j.
            for j in 0..=i {
                let m = i - j;
                let r = n - 1 - j;
                let (theta, phi) = solve_right_null(&work, r, m);
                apply_right_inverse(&mut work, m, theta, phi);
                right_blocks.push(MziBlock::new(m, theta, phi));
            }
        } else {
            // Null U[n-1-i+j, j] by left-multiplying T(m) on rows
            // (m, m+1) with m = n - 2 - i + j.
            for j in 0..=i {
                let m = n - 2 - i + j;
                let c = j;
                let (theta, phi) = solve_left_null(&work, m, c);
                apply_left(&mut work, m, theta, phi);
                left_blocks.push(MziBlock::new(m, theta, phi));
            }
        }
    }

    // `work` is now diagonal: L_k..L_1 * U * R_1^{-1}..R_q^{-1} = D, so
    // U = L_1†..L_k† * D * R_q..R_1. Commute each left factor through the
    // diagonal (innermost first): T(θ,φ)† D = D' T(θ, φ') with
    // φ' = arg(d_m / d_{m+1}), d'_{m} = -e^{-i(θ+φ)} d_{m+1},
    // d'_{m+1} = -e^{-iθ} d_{m+1}... derived for the physical MZI matrix
    // i e^{iθ/2} [[e^{iφ} s, c], [e^{iφ} c, -s]].
    let mut diag: Vec<C64> = (0..n).map(|k| work[(k, k)]).collect();
    let mut commuted: Vec<MziBlock> = Vec::with_capacity(left_blocks.len());
    for lb in left_blocks.iter().rev() {
        let m = lb.mode;
        let d1 = diag[m];
        let d2 = diag[m + 1];
        let phi_new = wrap_phase((d1 / d2).arg());
        let g = C64::cis(lb.theta);
        diag[m] = -(C64::cis(-lb.phi) * g.conj()) * d2;
        diag[m + 1] = -g.conj() * d2;
        commuted.push(MziBlock::new(m, lb.theta, phi_new));
    }

    // Application order: first the right blocks (in recorded order, since
    // U = ... * R_q ... R_1 and R_1 was recorded first => acts first), then
    // the commuted left blocks (innermost-first = recorded order of
    // `commuted`), and finally the diagonal screen.
    let mut blocks = right_blocks;
    blocks.extend(commuted);
    let output_phases: Vec<f64> = diag.iter().map(|d| wrap_phase(d.arg())).collect();

    MeshProgram::new(n, blocks, output_phases)
}

/// Finds `(theta, phi)` so that `(U * T(m, theta, phi)^{-1})[r, m] = 0`.
///
/// Condition (for the physical MZI block): with `s = sin(theta/2)`,
/// `c = cos(theta/2)`: `U[r,m] e^{-i phi} s + U[r,m+1] c = 0`.
fn solve_right_null(u: &CMatrix, r: usize, m: usize) -> (f64, f64) {
    let a = u[(r, m)];
    let b = u[(r, m + 1)];
    if b.abs() < 1e-300 {
        return (0.0, 0.0);
    }
    if a.abs() < 1e-300 {
        return (std::f64::consts::PI, 0.0);
    }
    let half_theta = (b.abs() / a.abs()).atan();
    // e^{-i phi} * a * s = -b * c  =>  phi = arg(a) - arg(-b)
    let phi = wrap_phase(a.arg() - (-b).arg());
    (2.0 * half_theta, phi)
}

/// Finds `(theta, phi)` so that `(T(m, theta, phi) * U)[m+1, c] = 0`.
///
/// Condition: `e^{i phi} c_half * U[m,c] = s_half * U[m+1,c]`.
fn solve_left_null(u: &CMatrix, m: usize, c: usize) -> (f64, f64) {
    let a = u[(m, c)];
    let b = u[(m + 1, c)];
    if b.abs() < 1e-300 {
        // Element already null: theta = pi kills the a-contribution
        // (c_half = 0); if a is null too, anything works.
        if a.abs() < 1e-300 {
            return (0.0, 0.0);
        }
        return (std::f64::consts::PI, 0.0);
    }
    if a.abs() < 1e-300 {
        return (0.0, 0.0);
    }
    let half_theta = (a.abs() / b.abs()).atan();
    let phi = wrap_phase(b.arg() - a.arg());
    (2.0 * half_theta, phi)
}

/// `u <- u * T(m, theta, phi)^{-1}` (columns m, m+1).
fn apply_right_inverse(u: &mut CMatrix, m: usize, theta: f64, phi: f64) {
    let (a, b, c, d) = MziBlock::new(m, theta, phi).elements();
    // Inverse of unitary = adjoint: block [[a*, c*], [b*, d*]].
    u.apply_right_2x2(m, m + 1, a.conj(), c.conj(), b.conj(), d.conj());
}

/// `u <- T(m, theta, phi) * u` (rows m, m+1).
fn apply_left(u: &mut CMatrix, m: usize, theta: f64, phi: f64) {
    let (a, b, c, d) = MziBlock::new(m, theta, phi).elements();
    u.apply_left_2x2(m, m + 1, a, b, c, d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropulsim_linalg::metrics::unitary_infidelity;
    use neuropulsim_linalg::random::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_haar_unitaries() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2, 3, 4, 5, 8, 12, 16] {
            let u = haar_unitary(&mut rng, n);
            let program = decompose(&u);
            let err = unitary_infidelity(&u, &program.transfer_matrix());
            assert!(err < 1e-10, "n={n}: infidelity {err}");
        }
    }

    #[test]
    fn exact_reconstruction_not_just_fidelity() {
        // Fidelity is phase-invariant; also check entrywise equality.
        let mut rng = StdRng::seed_from_u64(13);
        let u = haar_unitary(&mut rng, 6);
        let v = decompose(&u).transfer_matrix();
        assert!(u.approx_eq(&v, 1e-9), "entrywise mismatch:\n{u}\nvs\n{v}");
    }

    #[test]
    fn block_count_is_n_choose_2() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [2, 4, 7, 9] {
            let u = haar_unitary(&mut rng, n);
            assert_eq!(decompose(&u).block_count(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn depth_is_n() {
        let mut rng = StdRng::seed_from_u64(19);
        for n in [4, 6, 8] {
            let u = haar_unitary(&mut rng, n);
            let d = decompose(&u).depth();
            assert!(d <= n, "depth {d} should be <= {n}");
            assert!(d >= n - 1, "depth {d} unexpectedly small for n={n}");
        }
    }

    #[test]
    fn decomposes_identity() {
        let id = CMatrix::identity(5);
        let program = decompose(&id);
        assert!(unitary_infidelity(&id, &program.transfer_matrix()) < 1e-12);
    }

    #[test]
    fn decomposes_permutation() {
        // Cyclic shift permutation.
        let n = 4;
        let mut p = CMatrix::zeros(n, n);
        for i in 0..n {
            p[(i, (i + 1) % n)] = C64::ONE;
        }
        let program = decompose(&p);
        assert!(unitary_infidelity(&p, &program.transfer_matrix()) < 1e-10);
    }

    #[test]
    fn decomposes_diagonal_phases() {
        let d = CMatrix::diagonal(&[C64::cis(0.3), C64::cis(1.2), C64::cis(2.9)]);
        let program = decompose(&d);
        assert!(program.transfer_matrix().approx_eq(&d, 1e-10));
    }

    #[test]
    fn single_mode_case() {
        let u = CMatrix::diagonal(&[C64::cis(1.0)]);
        let program = decompose(&u);
        assert_eq!(program.modes(), 1);
        assert!(program.transfer_matrix().approx_eq(&u, 1e-12));
    }

    #[test]
    #[should_panic(expected = "unitary")]
    fn rejects_non_unitary() {
        let m = CMatrix::from_reals(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        let _ = decompose(&m);
    }

    #[test]
    fn theta_stays_in_principal_range() {
        let mut rng = StdRng::seed_from_u64(23);
        let u = haar_unitary(&mut rng, 8);
        for b in decompose(&u).blocks() {
            assert!(
                (0.0..=std::f64::consts::PI + 1e-12).contains(&b.theta),
                "theta {} outside [0, pi]",
                b.theta
            );
        }
    }
}

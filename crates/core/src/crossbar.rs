//! The incoherent PCM crossbar ("photonic dot-product engine") — the
//! alternative in-memory MVM architecture of Zhou et al., *Nat. Commun.*
//! 2023, cited by the paper's introduction alongside the interferometric
//! approach.
//!
//! Instead of encoding weights in interference (MZI meshes), each weight
//! is the *transmission* of one PCM cell in an `N x N` crossbar: light on
//! input row `i` passes cell `(i, j)` and accumulates incoherently
//! (power-summed) on output column `j`. Transmissions are non-negative,
//! so signed weights use the standard differential trick: two cells per
//! weight, `w = w_plus - w_minus`, read by balanced detectors.
//!
//! Trade-offs vs the mesh (quantified in experiment E13):
//!
//! - programming is *local* (one cell per weight — no SVD/decomposition),
//! - imperfections stay local too (no error propagation through depth),
//! - but it needs `2 N^2` PCM cells vs `2 N` shifters per mesh column,
//!   splits input power `1/N`, and cannot exploit coherent phase.

use neuropulsim_linalg::{parallel, RMatrix};
use neuropulsim_photonics::pcm::transmission_levels;
use neuropulsim_photonics::pcm::PcmMaterial;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise model of a crossbar execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarNoise {
    /// Relative RMS error of each programmed cell transmission.
    pub programming_sigma: f64,
    /// Additive Gaussian noise RMS per balanced-detector readout,
    /// relative to a unit full-scale output.
    pub readout_sigma: f64,
}

impl CrossbarNoise {
    /// Noiseless configuration.
    pub fn ideal() -> Self {
        CrossbarNoise {
            programming_sigma: 0.0,
            readout_sigma: 0.0,
        }
    }
}

impl Default for CrossbarNoise {
    fn default() -> Self {
        CrossbarNoise::ideal()
    }
}

/// A programmed differential PCM crossbar for one real matrix.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::crossbar::CrossbarCore;
/// use neuropulsim_linalg::RMatrix;
/// use neuropulsim_photonics::pcm::PcmMaterial;
///
/// let w = RMatrix::from_rows(2, 2, &[1.0, -0.5, 0.25, 2.0]);
/// let core = CrossbarCore::new(&w, PcmMaterial::Gst225, 64);
/// let y = core.multiply(&[1.0, 1.0]);
/// assert!((y[0] - 0.5).abs() < 0.1);
/// assert!((y[1] - 2.25).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarCore {
    n: usize,
    /// Quantized positive-rail transmissions in `[0, 1]`.
    plus: RMatrix,
    /// Quantized negative-rail transmissions in `[0, 1]`.
    minus: RMatrix,
    /// Scale mapping unit transmission back to physical weight magnitude.
    scale: f64,
    levels: u32,
    material: PcmMaterial,
}

impl CrossbarCore {
    /// Programs a crossbar for the square matrix `w` using PCM cells of
    /// the given material quantized to `levels` transmission states.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not square or `levels < 2`.
    pub fn new(w: &RMatrix, material: PcmMaterial, levels: u32) -> Self {
        assert_eq!(w.rows(), w.cols(), "crossbar needs a square matrix");
        assert!(levels >= 2, "need at least 2 transmission levels");
        let n = w.rows();
        let weight_grid = transmission_levels(material, levels);
        // The crystalline-state transmission floor: the grid's darkest
        // value. Differential pairs bias both rails by this floor so a
        // zero weight is exactly representable (both rails at the floor).
        let t_min = *weight_grid.last().expect("nonempty grid");
        let usable = (1.0 - t_min).max(f64::MIN_POSITIVE);
        let scale = w.max_abs().max(f64::MIN_POSITIVE) / usable;
        let quantize = |target: f64| -> f64 {
            // Nearest representable transmission in the material's grid.
            let mut best = weight_grid[0];
            for &g in &weight_grid {
                if (g - target).abs() < (best - target).abs() {
                    best = g;
                }
            }
            best
        };
        // Signed weight -> rail pair: the carrying rail holds
        // floor + |w|/scale, the idle rail sits at the floor.
        let plus = RMatrix::from_fn(n, n, |i, j| {
            let target = w[(i, j)] / scale;
            quantize(t_min + target.max(0.0))
        });
        let minus = RMatrix::from_fn(n, n, |i, j| {
            let target = w[(i, j)] / scale;
            quantize(t_min + (-target).max(0.0))
        });
        CrossbarCore {
            n,
            plus,
            minus,
            scale,
            levels,
            material,
        }
    }

    /// The matrix dimension.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// Number of PCM cells (two rails).
    pub fn cell_count(&self) -> usize {
        2 * self.n * self.n
    }

    /// Transmission levels per cell.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The cell material.
    pub fn material(&self) -> PcmMaterial {
        self.material
    }

    /// The effective matrix implemented by the quantized rails.
    pub fn effective_matrix(&self) -> RMatrix {
        RMatrix::from_fn(self.n, self.n, |i, j| {
            (self.plus[(i, j)] - self.minus[(i, j)]) * self.scale
        })
    }

    /// Ideal (noiseless) incoherent multiply. Inputs may be signed: the
    /// sign rides on the time-multiplexed input polarity as in the cited
    /// engine; only the weights are transmission-limited.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != modes()`.
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "multiply: dimension mismatch");
        (0..self.n)
            .map(|i| {
                let mut acc = 0.0;
                for (j, &xj) in x.iter().enumerate() {
                    acc += (self.plus[(i, j)] - self.minus[(i, j)]) * xj;
                }
                acc * self.scale
            })
            .collect()
    }

    /// Multiply through one sampled noisy instance: per-cell programming
    /// error plus per-output readout noise. Because cells are independent,
    /// errors do not propagate — the locality advantage over deep meshes.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != modes()`.
    pub fn multiply_noisy<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        noise: &CrossbarNoise,
        rng: &mut R,
    ) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "multiply: dimension mismatch");
        (0..self.n)
            .map(|i| {
                let mut acc = 0.0;
                for (j, &xj) in x.iter().enumerate() {
                    let p = self.plus[(i, j)]
                        * (1.0
                            + noise.programming_sigma * neuropulsim_linalg::random::gaussian(rng));
                    let m = self.minus[(i, j)]
                        * (1.0
                            + noise.programming_sigma * neuropulsim_linalg::random::gaussian(rng));
                    acc += (p.clamp(0.0, 1.0) - m.clamp(0.0, 1.0)) * xj;
                }
                (acc + noise.readout_sigma * neuropulsim_linalg::random::gaussian(rng)) * self.scale
            })
            .collect()
    }

    /// Relative error of the quantized weights vs the target.
    pub fn quantization_error(&self, target: &RMatrix) -> f64 {
        let eff = self.effective_matrix();
        (&eff - target).frobenius_norm() / target.frobenius_norm().max(f64::MIN_POSITIVE)
    }

    /// Monte-Carlo readout-error sweep: `trials` independent noisy
    /// multiplies of `x`, each returning the relative l2 error against
    /// the ideal output, fanned out over up to `threads` scoped workers.
    ///
    /// Each trial seeds its own RNG from
    /// [`parallel::split_seed`]`(seed, trial)`, so the sample vector is a
    /// pure function of `(x, noise, trials, seed)` — bit-identical for
    /// every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != modes()`.
    pub fn error_sweep_par(
        &self,
        x: &[f64],
        noise: &CrossbarNoise,
        trials: usize,
        seed: u64,
        threads: usize,
    ) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "error_sweep_par: dimension mismatch");
        let ideal = self.multiply(x);
        let ideal_norm = ideal
            .iter()
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt()
            .max(f64::MIN_POSITIVE);
        parallel::par_map_indexed(trials, threads, |t| {
            let mut rng = StdRng::seed_from_u64(parallel::split_seed(seed, t as u64));
            let got = self.multiply_noisy(x, noise, &mut rng);
            let err = got
                .iter()
                .zip(&ideal)
                .map(|(g, i)| (g - i) * (g - i))
                .sum::<f64>()
                .sqrt();
            err / ideal_norm
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropulsim_linalg::metrics::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(n: usize, seed: u64) -> RMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn fine_quantization_approximates_the_matrix() {
        let w = random_matrix(6, 1);
        let core = CrossbarCore::new(&w, PcmMaterial::Gst225, 256);
        assert!(
            core.quantization_error(&w) < 0.05,
            "err {}",
            core.quantization_error(&w)
        );
        let x = [0.3, -0.5, 0.8, 0.1, -0.9, 0.4];
        let got = core.multiply(&x);
        let want = w.mul_vec(&x);
        assert!(mse(&got, &want) < 1e-3);
    }

    #[test]
    fn error_falls_with_levels() {
        let w = random_matrix(6, 2);
        let e4 = CrossbarCore::new(&w, PcmMaterial::Gst225, 4).quantization_error(&w);
        let e16 = CrossbarCore::new(&w, PcmMaterial::Gst225, 16).quantization_error(&w);
        let e64 = CrossbarCore::new(&w, PcmMaterial::Gst225, 64).quantization_error(&w);
        assert!(e16 < e4, "{e16} !< {e4}");
        assert!(e64 < e16, "{e64} !< {e16}");
    }

    #[test]
    fn signed_weights_via_differential_rails() {
        let w = RMatrix::from_rows(2, 2, &[-1.0, 0.5, 0.0, -0.25]);
        let core = CrossbarCore::new(&w, PcmMaterial::Gst225, 128);
        let eff = core.effective_matrix();
        assert!(eff[(0, 0)] < -0.9);
        assert!(eff[(1, 1)] < 0.0);
        assert!((eff[(1, 0)]).abs() < 0.05);
    }

    #[test]
    fn error_sweep_is_thread_count_invariant() {
        let w = random_matrix(5, 17);
        let core = CrossbarCore::new(&w, PcmMaterial::Gst225, 64);
        let x = [0.4, -0.2, 0.9, 0.0, -0.7];
        let noise = CrossbarNoise {
            programming_sigma: 0.02,
            readout_sigma: 0.01,
        };
        let reference = core.error_sweep_par(&x, &noise, 12, 99, 1);
        assert_eq!(reference.len(), 12);
        assert!(reference.iter().all(|e| *e > 0.0));
        for threads in [2, 3, 16] {
            assert_eq!(
                core.error_sweep_par(&x, &noise, 12, 99, threads),
                reference,
                "threads = {threads}"
            );
        }
        assert_ne!(core.error_sweep_par(&x, &noise, 12, 100, 2), reference);
    }

    #[test]
    fn cell_count_is_2n_squared() {
        let core = CrossbarCore::new(&random_matrix(5, 3), PcmMaterial::Gst225, 16);
        assert_eq!(core.cell_count(), 50);
        assert_eq!(core.modes(), 5);
    }

    #[test]
    fn noise_is_local_not_amplified() {
        // With per-cell noise sigma, the output error of a crossbar stays
        // ~sigma-scale; nothing compounds through depth.
        let w = random_matrix(8, 5);
        let core = CrossbarCore::new(&w, PcmMaterial::Gst225, 256);
        let x = vec![0.5; 8];
        let want = core.multiply(&x);
        let noise = CrossbarNoise {
            programming_sigma: 0.01,
            readout_sigma: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 50;
        let mut worst: f64 = 0.0;
        for _ in 0..trials {
            let got = core.multiply_noisy(&x, &noise, &mut rng);
            for (a, b) in got.iter().zip(&want) {
                worst = worst.max((a - b).abs());
            }
        }
        // Error bounded by ~ sigma * sum|x| * scale with slack.
        assert!(worst < 0.15, "worst error {worst}");
        assert!(worst > 0.0);
    }

    #[test]
    fn ideal_noise_matches_clean() {
        let w = random_matrix(4, 9);
        let core = CrossbarCore::new(&w, PcmMaterial::Gst225, 64);
        let x = [0.1, 0.2, 0.3, 0.4];
        let mut rng = StdRng::seed_from_u64(1);
        let a = core.multiply(&x);
        let b = core.multiply_noisy(&x, &CrossbarNoise::ideal(), &mut rng);
        assert!(mse(&a, &b) < 1e-24);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        let _ = CrossbarCore::new(&RMatrix::zeros(2, 3), PcmMaterial::Gst225, 8);
    }
}

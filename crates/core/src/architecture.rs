//! The mesh architectures evaluated in the paper's §4, unified behind one
//! programming interface: the optimal Clements rectangle, its compacted
//! (Bell–Walmsley) variant, and the error-tolerant Fldzhyan layered design.

use crate::clements;
use crate::error::HardwareModel;
use crate::layered::{LayeredMesh, ProgramOptions};
use crate::program::MeshProgram;
use crate::reck;
use neuropulsim_linalg::{metrics, CMatrix};
use rand::Rng;
use std::fmt;

/// The multiport-interferometer architectures under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshArchitecture {
    /// Clements rectangle: `N(N-1)/2` MZIs, depth `N`, exact analytic
    /// decomposition (Clements et al. 2016).
    Clements,
    /// Clements programming realized with compacted 2×2 cells
    /// (Bell & Walmsley 2021): same matrix, ~40% less depth/area and less
    /// loss per cell.
    ClementsCompact,
    /// Fldzhyan layered mesh: `2N` columns of parallel phase shifters with
    /// fixed couplers, programmed numerically; error-tolerant.
    Fldzhyan,
    /// Reck triangle: the original universal design — same MZI count as
    /// Clements but depth `2N - 3` and unbalanced path lengths.
    Reck,
}

impl MeshArchitecture {
    /// All architectures, for sweeps.
    pub const ALL: [MeshArchitecture; 4] = [
        MeshArchitecture::Clements,
        MeshArchitecture::ClementsCompact,
        MeshArchitecture::Fldzhyan,
        MeshArchitecture::Reck,
    ];

    /// Number of programmable 2×2 cells (MZIs) for an `n`-mode mesh; for
    /// the Fldzhyan design this counts fixed couplers instead.
    pub fn cell_count(&self, n: usize) -> usize {
        match self {
            MeshArchitecture::Clements
            | MeshArchitecture::ClementsCompact
            | MeshArchitecture::Reck => n * (n - 1) / 2,
            MeshArchitecture::Fldzhyan => {
                // 2n coupler columns, alternating floor(n/2) / floor((n-1)/2).
                (0..2 * n).map(|l| (n - l % 2) / 2).sum()
            }
        }
    }

    /// Number of programmable phase shifters.
    pub fn phase_shifter_count(&self, n: usize) -> usize {
        match self {
            // 2 per MZI + n output.
            MeshArchitecture::Clements
            | MeshArchitecture::ClementsCompact
            | MeshArchitecture::Reck => n * (n - 1) + n,
            // n per layer * 2n layers + n output.
            MeshArchitecture::Fldzhyan => 2 * n * n + n,
        }
    }

    /// Optical depth in 2×2-cell columns.
    pub fn depth(&self, n: usize) -> usize {
        match self {
            MeshArchitecture::Clements => n,
            MeshArchitecture::ClementsCompact => n, // same columns, shorter cells
            MeshArchitecture::Fldzhyan => 2 * n,
            MeshArchitecture::Reck => (2 * n).saturating_sub(3).max(1),
        }
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            MeshArchitecture::Clements => "clements",
            MeshArchitecture::ClementsCompact => "clements-compact",
            MeshArchitecture::Fldzhyan => "fldzhyan",
            MeshArchitecture::Reck => "reck",
        }
    }

    /// Programs a mesh of this architecture to the target unitary under
    /// ideal hardware. Returns the programmed mesh.
    ///
    /// For analytic architectures this is exact; for Fldzhyan a numerical
    /// optimization is run from a randomized start (`rng` seeds it).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not unitary (Clements path) or not square.
    pub fn program<R: Rng + ?Sized>(&self, target: &CMatrix, rng: &mut R) -> ProgrammedMesh {
        self.program_with(target, rng, ProgramOptions::default())
    }

    /// Like [`MeshArchitecture::program`] with an explicit sweep budget
    /// for the numerical (Fldzhyan) path — large-n grid sweeps cap it to
    /// keep a single trial bounded. Analytic architectures ignore
    /// `options`.
    pub fn program_with<R: Rng + ?Sized>(
        &self,
        target: &CMatrix,
        rng: &mut R,
        options: ProgramOptions,
    ) -> ProgrammedMesh {
        match self {
            MeshArchitecture::Clements | MeshArchitecture::ClementsCompact => {
                ProgrammedMesh::Rectangular {
                    program: clements::decompose(target),
                    compact: *self == MeshArchitecture::ClementsCompact,
                }
            }
            MeshArchitecture::Reck => ProgrammedMesh::Rectangular {
                program: reck::decompose(target),
                compact: false,
            },
            MeshArchitecture::Fldzhyan => {
                let mut mesh = LayeredMesh::universal(target.rows());
                mesh.randomize_phases(rng);
                mesh.program_unitary(target, options);
                ProgrammedMesh::Layered(mesh)
            }
        }
    }

    /// Programs a mesh whose couplers carry static Gaussian imbalance of
    /// standard deviation `coupler_sigma`, *letting the architecture use
    /// its natural programming flow*: analytic (error-oblivious) for
    /// Clements variants, error-aware numerical optimization for Fldzhyan.
    ///
    /// Returns the realized transfer matrix (couplers imbalanced, phases
    /// exact) — the robustness experiment's core primitive.
    pub fn program_with_imbalance<R: Rng + ?Sized>(
        &self,
        target: &CMatrix,
        coupler_sigma: f64,
        rng: &mut R,
    ) -> CMatrix {
        self.program_with_imbalance_opts(target, coupler_sigma, rng, ProgramOptions::default())
    }

    /// Like [`MeshArchitecture::program_with_imbalance`] with an explicit
    /// sweep budget for the Fldzhyan optimizer.
    pub fn program_with_imbalance_opts<R: Rng + ?Sized>(
        &self,
        target: &CMatrix,
        coupler_sigma: f64,
        rng: &mut R,
        options: ProgramOptions,
    ) -> CMatrix {
        match self {
            MeshArchitecture::Clements
            | MeshArchitecture::ClementsCompact
            | MeshArchitecture::Reck => {
                let program = if *self == MeshArchitecture::Reck {
                    reck::decompose(target)
                } else {
                    clements::decompose(target)
                };
                let model = HardwareModel {
                    coupler_imbalance_sigma: coupler_sigma,
                    ..HardwareModel::ideal()
                };
                model.realize(&program, rng)
            }
            MeshArchitecture::Fldzhyan => {
                let mut mesh = LayeredMesh::universal(target.rows());
                mesh.perturb_couplers(rng, coupler_sigma);
                mesh.randomize_phases(rng);
                mesh.program_unitary(target, options);
                mesh.transfer_matrix()
            }
        }
    }
}

impl fmt::Display for MeshArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A mesh programmed by [`MeshArchitecture::program`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProgrammedMesh {
    /// A Clements-style rectangle (possibly with compact cells).
    Rectangular {
        /// The block program.
        program: MeshProgram,
        /// Whether compact (Bell–Walmsley) cells are used.
        compact: bool,
    },
    /// A Fldzhyan layered mesh.
    Layered(LayeredMesh),
}

impl ProgrammedMesh {
    /// The ideal realized transfer matrix. Compacted rectangles go
    /// through the compact-cell evaluation path (same matrix, different
    /// arithmetic — agreement is itself a conformance check).
    pub fn transfer_matrix(&self) -> CMatrix {
        match self {
            ProgrammedMesh::Rectangular { program, compact } => {
                if *compact {
                    program.transfer_matrix_compact()
                } else {
                    program.transfer_matrix()
                }
            }
            ProgrammedMesh::Layered(mesh) => mesh.transfer_matrix(),
        }
    }

    /// Number of optical modes.
    pub fn modes(&self) -> usize {
        match self {
            ProgrammedMesh::Rectangular { program, .. } => program.modes(),
            ProgrammedMesh::Layered(mesh) => mesh.modes(),
        }
    }

    /// Fidelity against a target unitary.
    pub fn fidelity(&self, target: &CMatrix) -> f64 {
        metrics::unitary_fidelity(target, &self.transfer_matrix())
    }

    /// Realizes the mesh with Gaussian phase errors of std `sigma` \[rad\]
    /// added to every programmed phase (post-programming noise).
    pub fn realize_with_phase_noise<R: Rng + ?Sized>(&self, sigma: f64, rng: &mut R) -> CMatrix {
        match self {
            ProgrammedMesh::Rectangular { program, .. } => {
                let model = HardwareModel {
                    phase_noise_sigma: sigma,
                    ..HardwareModel::ideal()
                };
                model.realize(program, rng)
            }
            ProgrammedMesh::Layered(mesh) => {
                let mut noisy = mesh.clone();
                noisy.perturb_phases(rng, sigma);
                noisy.transfer_matrix()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropulsim_linalg::random::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_match_formulas() {
        let n = 8;
        assert_eq!(MeshArchitecture::Clements.cell_count(n), 28);
        assert_eq!(MeshArchitecture::Clements.phase_shifter_count(n), 64);
        assert_eq!(MeshArchitecture::Clements.depth(n), 8);
        assert_eq!(MeshArchitecture::Fldzhyan.depth(n), 16);
        // 2n = 16 columns alternating 4 / 3 couplers (n = 8): wait, n even:
        // even-offset columns have 4 pairs, odd-offset have 3.
        assert_eq!(MeshArchitecture::Fldzhyan.cell_count(n), 8 * 4 + 8 * 3);
        assert_eq!(MeshArchitecture::Fldzhyan.phase_shifter_count(n), 136);
    }

    #[test]
    fn all_architectures_program_small_targets() {
        let mut rng = StdRng::seed_from_u64(31);
        let target = haar_unitary(&mut rng, 4);
        for arch in MeshArchitecture::ALL {
            let mesh = arch.program(&target, &mut rng);
            let f = mesh.fidelity(&target);
            let min = match arch {
                MeshArchitecture::Fldzhyan => 0.999,
                _ => 1.0 - 1e-9,
            };
            assert!(f >= min, "{arch}: fidelity {f}");
            assert_eq!(mesh.modes(), 4);
        }
    }

    #[test]
    fn clements_and_compact_realize_same_matrix() {
        let mut rng = StdRng::seed_from_u64(37);
        let target = haar_unitary(&mut rng, 5);
        let a = MeshArchitecture::Clements
            .program(&target, &mut rng)
            .transfer_matrix();
        let b = MeshArchitecture::ClementsCompact
            .program(&target, &mut rng)
            .transfer_matrix();
        assert!(a.approx_eq(&b, 1e-10));
    }

    #[test]
    fn phase_noise_degrades_all_architectures() {
        let mut rng = StdRng::seed_from_u64(41);
        let target = haar_unitary(&mut rng, 4);
        for arch in MeshArchitecture::ALL {
            let mesh = arch.program(&target, &mut rng);
            let clean = mesh.fidelity(&target);
            let noisy =
                metrics::unitary_fidelity(&target, &mesh.realize_with_phase_noise(0.3, &mut rng));
            assert!(noisy < clean, "{arch}: {noisy} !< {clean}");
        }
    }

    #[test]
    fn fldzhyan_beats_clements_under_imbalance() {
        // The architecture's raison d'etre: with strongly imbalanced
        // couplers, error-aware layered programming retains higher fidelity
        // than the error-oblivious analytic Clements decomposition.
        let mut rng = StdRng::seed_from_u64(43);
        let n = 4;
        let sigma = 0.12;
        let trials = 4;
        let mut clements_mean = 0.0;
        let mut fldzhyan_mean = 0.0;
        for t in 0..trials {
            let mut trial_rng = StdRng::seed_from_u64(100 + t);
            let target = haar_unitary(&mut rng, n);
            let c =
                MeshArchitecture::Clements.program_with_imbalance(&target, sigma, &mut trial_rng);
            let mut trial_rng = StdRng::seed_from_u64(100 + t);
            let f =
                MeshArchitecture::Fldzhyan.program_with_imbalance(&target, sigma, &mut trial_rng);
            clements_mean += metrics::unitary_fidelity(&target, &c) / trials as f64;
            fldzhyan_mean += metrics::unitary_fidelity(&target, &f) / trials as f64;
        }
        assert!(
            fldzhyan_mean > clements_mean,
            "fldzhyan {fldzhyan_mean} should beat clements {clements_mean} under imbalance"
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(MeshArchitecture::Clements.to_string(), "clements");
        assert_eq!(
            MeshArchitecture::ClementsCompact.to_string(),
            "clements-compact"
        );
        assert_eq!(MeshArchitecture::Fldzhyan.to_string(), "fldzhyan");
    }
}

//! The Reck triangular decomposition (Reck et al., *PRL* 73, 58, 1994) —
//! the original universal multiport interferometer and the baseline the
//! Clements rectangle improves upon (half the depth, balanced paths).
//!
//! Nulling uses only right-multiplications by inverse MZIs, sweeping each
//! row from the left starting with the bottom row, so no diagonal
//! commutation step is needed: `U = D * T_q * ... * T_1` directly.

use crate::program::{MeshProgram, MziBlock};
use neuropulsim_linalg::CMatrix;
use neuropulsim_photonics::phase::wrap_phase;

/// Decomposes a unitary into a Reck-triangle [`MeshProgram`].
///
/// The returned program has `N(N-1)/2` blocks like Clements but optical
/// depth `2N - 3`, and strongly unbalanced path lengths (port 0 crosses
/// one cell, port N-1 crosses up to `2N - 3`).
///
/// # Panics
///
/// Panics if `u` is not square, is empty, or is not unitary to `1e-6`.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::reck::decompose;
/// use neuropulsim_linalg::{metrics, random};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let u = random::haar_unitary(&mut rng, 5);
/// let program = decompose(&u);
/// assert_eq!(program.block_count(), 10);
/// assert!(metrics::unitary_infidelity(&u, &program.transfer_matrix()) < 1e-10);
/// ```
pub fn decompose(u: &CMatrix) -> MeshProgram {
    assert!(u.is_square(), "decompose: matrix must be square");
    let n = u.rows();
    assert!(n > 0, "decompose: empty matrix");
    assert!(
        u.is_unitary(1e-6),
        "decompose: matrix must be unitary (||U†U - I|| <= 1e-6)"
    );
    if n == 1 {
        return MeshProgram::new(1, Vec::new(), vec![u[(0, 0)].arg()]);
    }

    let mut work = u.clone();
    let mut blocks: Vec<MziBlock> = Vec::new();

    // Null rows bottom-up; within a row, columns left to right. Each null
    // of work[row][j] right-multiplies an inverse MZI on modes (j, j+1).
    for row in (1..n).rev() {
        for j in 0..row {
            let (theta, phi) = solve_right_null(&work, row, j);
            apply_right_inverse(&mut work, j, theta, phi);
            blocks.push(MziBlock::new(j, theta, phi));
        }
    }

    let output_phases: Vec<f64> = (0..n).map(|k| wrap_phase(work[(k, k)].arg())).collect();
    MeshProgram::new(n, blocks, output_phases)
}

/// Finds `(theta, phi)` so that `(U * T(m, theta, phi)^{-1})[r, m] = 0`
/// (same condition as the Clements right-null).
fn solve_right_null(u: &CMatrix, r: usize, m: usize) -> (f64, f64) {
    let a = u[(r, m)];
    let b = u[(r, m + 1)];
    if b.abs() < 1e-300 {
        if a.abs() < 1e-300 {
            return (0.0, 0.0);
        }
        return (0.0, 0.0);
    }
    if a.abs() < 1e-300 {
        return (std::f64::consts::PI, 0.0);
    }
    let half_theta = (b.abs() / a.abs()).atan();
    let phi = wrap_phase(a.arg() - (-b).arg());
    (2.0 * half_theta, phi)
}

fn apply_right_inverse(u: &mut CMatrix, m: usize, theta: f64, phi: f64) {
    let (a, b, c, d) = MziBlock::new(m, theta, phi).elements();
    u.apply_right_2x2(m, m + 1, a.conj(), c.conj(), b.conj(), d.conj());
}

/// Verifies the `U = D * product(blocks)` identity used above for a
/// residual-diagonal `work` matrix (diagnostic helper).
pub fn residual_off_diagonal(u: &CMatrix) -> f64 {
    let n = u.rows();
    let mut worst = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                worst = worst.max(u[(i, j)].abs());
            }
        }
    }
    worst
}

/// Convenience: the unit-modulus check of a diagonal (diagnostic helper).
pub fn diagonal_is_unimodular(u: &CMatrix, tol: f64) -> bool {
    (0..u.rows()).all(|k| (u[(k, k)].abs() - 1.0).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropulsim_linalg::metrics::unitary_infidelity;
    use neuropulsim_linalg::random::haar_unitary;
    use neuropulsim_linalg::C64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_haar_unitaries() {
        let mut rng = StdRng::seed_from_u64(29);
        for n in [2, 3, 4, 6, 8, 12] {
            let u = haar_unitary(&mut rng, n);
            let program = decompose(&u);
            let err = unitary_infidelity(&u, &program.transfer_matrix());
            assert!(err < 1e-10, "n={n}: infidelity {err}");
            assert!(
                program.transfer_matrix().approx_eq(&u, 1e-8),
                "entrywise n={n}"
            );
        }
    }

    #[test]
    fn block_count_matches_clements() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in [3, 5, 8] {
            let u = haar_unitary(&mut rng, n);
            assert_eq!(decompose(&u).block_count(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn depth_is_2n_minus_3() {
        let mut rng = StdRng::seed_from_u64(37);
        for n in [3usize, 5, 8, 10] {
            let u = haar_unitary(&mut rng, n);
            let d = decompose(&u).depth();
            assert_eq!(d, 2 * n - 3, "n={n}: depth {d}");
        }
    }

    #[test]
    fn deeper_than_clements() {
        let mut rng = StdRng::seed_from_u64(41);
        let u = haar_unitary(&mut rng, 8);
        let reck_depth = decompose(&u).depth();
        let clements_depth = crate::clements::decompose(&u).depth();
        assert!(
            reck_depth > clements_depth,
            "reck {reck_depth} vs clements {clements_depth}"
        );
    }

    #[test]
    fn decomposes_identity_and_diagonal() {
        let id = CMatrix::identity(4);
        assert!(decompose(&id).transfer_matrix().approx_eq(&id, 1e-10));
        let d = CMatrix::diagonal(&[C64::cis(0.4), C64::cis(2.0), C64::cis(-1.0)]);
        assert!(decompose(&d).transfer_matrix().approx_eq(&d, 1e-10));
    }

    #[test]
    fn diagnostics() {
        let id = CMatrix::identity(3);
        assert_eq!(residual_off_diagonal(&id), 0.0);
        assert!(diagonal_is_unimodular(&id, 1e-12));
        let mut m = CMatrix::identity(3);
        m[(0, 1)] = C64::real(0.5);
        assert!((residual_off_diagonal(&m) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unitary")]
    fn rejects_non_unitary() {
        let m = CMatrix::from_reals(2, 2, &[2.0, 0.0, 0.0, 1.0]);
        let _ = decompose(&m);
    }
}

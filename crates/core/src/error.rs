//! Hardware realization of mesh programs under imperfections: phase noise,
//! coupler imbalance, loss, and phase-shifter technology effects
//! (thermo-optic vs multilevel PCM quantization).
//!
//! A [`MeshProgram`] — the mesh "software" — meets
//! imperfect silicon through this module. It backs the
//! robustness experiments (E2), the PCM-level study (E3) and the energy
//! comparison (E4).

use crate::program::MeshProgram;
use neuropulsim_linalg::{CMatrix, C64};
use neuropulsim_photonics::coupler::Coupler;
use neuropulsim_photonics::energy::TechnologyProfile;
use neuropulsim_photonics::mzi::Mzi;
use neuropulsim_photonics::pcm::PcmMaterial;
use neuropulsim_photonics::phase::{PcmPhaseShifter, PhaseShifter, ThermoOpticShifter};
use rand::Rng;

/// The phase-shifter technology implementing a mesh's programmable phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShifterTech {
    /// Idealized continuous, lossless shifter.
    Ideal,
    /// Volatile thermo-optic heater (continuous phase, static hold power).
    ThermoOptic,
    /// Non-volatile PCM shifter quantized to `levels` states.
    Pcm {
        /// PCM material of the patch.
        material: PcmMaterial,
        /// Number of programmable levels.
        levels: u32,
    },
}

impl ShifterTech {
    /// Quantizes/realizes a requested phase, returning
    /// `(realized_phase, field_transmission)` of the shifter.
    pub fn realize_phase(&self, phase: f64) -> (f64, f64) {
        match self {
            ShifterTech::Ideal => (neuropulsim_photonics::phase::wrap_phase(phase), 1.0),
            ShifterTech::ThermoOptic => {
                let mut s = ThermoOpticShifter::default();
                s.set_phase(phase);
                (s.phase(), s.field_transmission())
            }
            ShifterTech::Pcm { material, levels } => {
                let mut s = PcmPhaseShifter::new(*material, *levels);
                s.set_phase(phase);
                (s.phase(), s.field_transmission())
            }
        }
    }
}

/// Static imperfection model applied when loading a program onto hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareModel {
    /// Gaussian phase error per shifter \[rad\] (calibration residue,
    /// thermal crosstalk).
    pub phase_noise_sigma: f64,
    /// Gaussian coupling-angle error per coupler \[rad\] (fabrication).
    pub coupler_imbalance_sigma: f64,
    /// Deterministic field transmission per MZI passage (waveguide +
    /// bend loss within the cell).
    pub mzi_arm_transmission: f64,
    /// Thermal crosstalk coefficient: the fraction of each *neighboring*
    /// heater's phase that leaks into a shifter (thermo-optic only —
    /// PCM shifters have no standing heat and are immune). 0 disables.
    pub thermal_crosstalk: f64,
    /// The phase-shifter technology.
    pub shifter_tech: ShifterTech,
}

impl HardwareModel {
    /// A perfect, lossless mesh.
    pub fn ideal() -> Self {
        HardwareModel {
            phase_noise_sigma: 0.0,
            coupler_imbalance_sigma: 0.0,
            mzi_arm_transmission: 1.0,
            thermal_crosstalk: 0.0,
            shifter_tech: ShifterTech::Ideal,
        }
    }

    /// Typical fabricated-SOI imperfections: sigma_phase = 0.01 rad,
    /// sigma_coupler = 0.01 rad, 0.05 dB per-cell excess loss,
    /// thermo-optic shifters.
    pub fn typical_soi() -> Self {
        HardwareModel {
            phase_noise_sigma: 0.01,
            coupler_imbalance_sigma: 0.01,
            mzi_arm_transmission: 0.994,
            thermal_crosstalk: 0.0,
            shifter_tech: ShifterTech::ThermoOptic,
        }
    }

    /// Returns this model with a different shifter technology.
    pub fn with_shifter_tech(mut self, tech: ShifterTech) -> Self {
        self.shifter_tech = tech;
        self
    }

    /// Computes per-block thermal contamination: each block's phases pick
    /// up `thermal_crosstalk` times the total heater phase of spatially
    /// neighboring blocks (same column, |mode difference| <= 2, or same
    /// modes in adjacent columns). Only heaters (thermo-optic) leak.
    fn thermal_contamination(&self, program: &MeshProgram) -> Vec<f64> {
        let blocks = program.blocks();
        if self.thermal_crosstalk == 0.0 || !matches!(self.shifter_tech, ShifterTech::ThermoOptic) {
            return vec![0.0; blocks.len()];
        }
        // ASAP layering mirrors MeshProgram::depth().
        let n = program.modes();
        let mut mode_free_at = vec![0usize; n];
        let mut coords = Vec::with_capacity(blocks.len());
        for b in blocks {
            let layer = mode_free_at[b.mode].max(mode_free_at[b.mode + 1]);
            mode_free_at[b.mode] = layer + 1;
            mode_free_at[b.mode + 1] = layer + 1;
            coords.push((layer, b.mode));
        }
        let heat: Vec<f64> = blocks
            .iter()
            .map(|b| {
                neuropulsim_photonics::phase::wrap_phase(b.theta)
                    + neuropulsim_photonics::phase::wrap_phase(b.phi)
            })
            .collect();
        blocks
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let (li, mi) = coords[i];
                let mut leak = 0.0;
                for (j, &(lj, mj)) in coords.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let same_layer_neighbor = lj == li && mj.abs_diff(mi) <= 2;
                    let adjacent_layer_same_modes = lj.abs_diff(li) == 1 && mj.abs_diff(mi) <= 1;
                    if same_layer_neighbor || adjacent_layer_same_modes {
                        leak += heat[j];
                    }
                }
                self.thermal_crosstalk * leak
            })
            .collect()
    }

    /// Realizes a program as a transfer matrix, sampling the random
    /// imperfections from `rng`.
    pub fn realize<R: Rng + ?Sized>(&self, program: &MeshProgram, rng: &mut R) -> CMatrix {
        let n = program.modes();
        let contamination = self.thermal_contamination(program);
        let mut u = CMatrix::identity(n);
        for (block, leak) in program.blocks().iter().zip(&contamination) {
            let (theta, t_theta) = self.noisy_phase(block.theta + leak, rng);
            let (phi, t_phi) = self.noisy_phase(block.phi + leak, rng);
            let c1 = self.noisy_coupler(rng);
            let c2 = self.noisy_coupler(rng);
            // Shifter transmissions enter once each; the geometric mean
            // spreads them over both arms (equivalent scalar factor).
            let arm_t = self.mzi_arm_transmission * (t_theta * t_phi).sqrt();
            let mzi = Mzi::with_couplers(theta, phi, c1, c2).with_arm_transmission(arm_t);
            let (a, b, c, d) = mzi.elements();
            u.apply_left_2x2(block.mode, block.mode + 1, a, b, c, d);
        }
        for (i, &p) in program.output_phases().iter().enumerate() {
            let (phase, t) = self.noisy_phase(p, rng);
            let factor = C64::from_polar(t, phase);
            for j in 0..n {
                u[(i, j)] *= factor;
            }
        }
        u
    }

    fn noisy_phase<R: Rng + ?Sized>(&self, phase: f64, rng: &mut R) -> (f64, f64) {
        let (realized, transmission) = self.shifter_tech.realize_phase(phase);
        let noise = if self.phase_noise_sigma > 0.0 {
            self.phase_noise_sigma * neuropulsim_linalg::random::gaussian(rng)
        } else {
            0.0
        };
        (realized + noise, transmission)
    }

    fn noisy_coupler<R: Rng + ?Sized>(&self, rng: &mut R) -> Coupler {
        if self.coupler_imbalance_sigma > 0.0 {
            Coupler::with_imbalance(
                self.coupler_imbalance_sigma * neuropulsim_linalg::random::gaussian(rng),
            )
        } else {
            Coupler::ideal_50_50()
        }
    }

    /// Static and programming cost of holding/loading this program.
    pub fn power_report(&self, program: &MeshProgram, tech: &TechnologyProfile) -> MeshPowerReport {
        let mut hold_power = 0.0;
        let mut programming_energy = 0.0;
        let mut programming_time: f64 = 0.0;
        let phases = program
            .blocks()
            .iter()
            .flat_map(|b| [b.theta, b.phi])
            .chain(program.output_phases().iter().copied());
        for phase in phases {
            match self.shifter_tech {
                ShifterTech::Ideal => {}
                ShifterTech::ThermoOptic => {
                    let wrapped = neuropulsim_photonics::phase::wrap_phase(phase);
                    hold_power += wrapped / std::f64::consts::PI * tech.thermo_p_pi;
                    programming_time = programming_time.max(tech.thermo_response);
                }
                ShifterTech::Pcm { material, levels } => {
                    let mut s = PcmPhaseShifter::new(material, levels);
                    s.set_phase(phase);
                    programming_energy += s.programming_energy();
                    programming_time = programming_time.max(s.programming_time());
                }
            }
        }
        MeshPowerReport {
            hold_power_w: hold_power,
            programming_energy_j: programming_energy,
            programming_time_s: programming_time,
        }
    }
}

impl Default for HardwareModel {
    fn default() -> Self {
        HardwareModel::ideal()
    }
}

/// Static power and (re)programming cost of a mesh configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeshPowerReport {
    /// Continuous electrical power to hold the weights \[W\].
    pub hold_power_w: f64,
    /// Energy to (re)program the weights once \[J\].
    pub programming_energy_j: f64,
    /// Time to (re)program (parallel programming assumed) \[s\].
    pub programming_time_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clements::decompose;
    use neuropulsim_linalg::metrics::unitary_fidelity;
    use neuropulsim_linalg::random::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_program(n: usize, seed: u64) -> (CMatrix, MeshProgram) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(&mut rng, n);
        let p = decompose(&u);
        (u, p)
    }

    #[test]
    fn ideal_model_reproduces_program_exactly() {
        let (u, p) = sample_program(6, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let realized = HardwareModel::ideal().realize(&p, &mut rng);
        assert!(unitary_fidelity(&u, &realized) > 1.0 - 1e-10);
    }

    #[test]
    fn phase_noise_reduces_fidelity_monotonically_in_expectation() {
        let (u, p) = sample_program(8, 3);
        let trials = 20;
        let mean_fid = |sigma: f64| {
            let model = HardwareModel {
                phase_noise_sigma: sigma,
                ..HardwareModel::ideal()
            };
            let mut rng = StdRng::seed_from_u64(42);
            (0..trials)
                .map(|_| unitary_fidelity(&u, &model.realize(&p, &mut rng)))
                .sum::<f64>()
                / trials as f64
        };
        let f0 = mean_fid(0.0);
        let f1 = mean_fid(0.05);
        let f2 = mean_fid(0.2);
        assert!(f0 > f1 && f1 > f2, "fidelities {f0} {f1} {f2}");
    }

    #[test]
    fn coupler_imbalance_reduces_fidelity() {
        let (u, p) = sample_program(8, 5);
        let model = HardwareModel {
            coupler_imbalance_sigma: 0.1,
            ..HardwareModel::ideal()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let f = unitary_fidelity(&u, &model.realize(&p, &mut rng));
        assert!(f < 0.999, "imbalance should hurt, got {f}");
        assert!(f > 0.3, "but not destroy, got {f}");
    }

    #[test]
    fn loss_breaks_unitarity_but_preserves_shape() {
        let (u, p) = sample_program(6, 9);
        let model = HardwareModel {
            mzi_arm_transmission: 0.97,
            ..HardwareModel::ideal()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let realized = model.realize(&p, &mut rng);
        assert!(!realized.is_unitary(1e-6));
        // Fidelity metric normalizes away uniform loss; shape preserved.
        assert!(unitary_fidelity(&u, &realized) > 0.999);
    }

    #[test]
    fn pcm_quantization_fidelity_improves_with_levels() {
        // Use the low-loss GeSe material so quantization (not state-
        // dependent absorption) dominates the error.
        let (u, p) = sample_program(6, 13);
        let fid_at = |levels: u32| {
            let model = HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm {
                material: PcmMaterial::GeSe,
                levels,
            });
            let mut rng = StdRng::seed_from_u64(1);
            unitary_fidelity(&u, &model.realize(&p, &mut rng))
        };
        let f4 = fid_at(4);
        let f16 = fid_at(16);
        let f128 = fid_at(128);
        assert!(f16 > f4, "f16={f16} f4={f4}");
        assert!(f128 > f16, "f128={f128} f16={f16}");
        assert!(f128 > 0.98, "f128={f128}");
    }

    #[test]
    fn lossy_gst_caps_fidelity_despite_fine_levels() {
        // GST's crystalline absorption produces state-dependent loss that
        // no amount of quantization resolution can remove.
        let (u, p) = sample_program(6, 13);
        let fid = |material, levels| {
            let model =
                HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm { material, levels });
            let mut rng = StdRng::seed_from_u64(1);
            unitary_fidelity(&u, &model.realize(&p, &mut rng))
        };
        let gst = fid(PcmMaterial::Gst225, 256);
        let gese = fid(PcmMaterial::GeSe, 256);
        assert!(
            gese > gst,
            "low-loss material must win: gese={gese} gst={gst}"
        );
        assert!(gst < 0.9, "GST loss should cap fidelity, got {gst}");
    }

    #[test]
    fn thermal_crosstalk_degrades_thermo_but_not_pcm() {
        let (u, p) = sample_program(8, 27);
        let mut rng = StdRng::seed_from_u64(1);
        let thermo = HardwareModel {
            thermal_crosstalk: 0.02,
            ..HardwareModel::ideal().with_shifter_tech(ShifterTech::ThermoOptic)
        };
        let f_thermo = unitary_fidelity(&u, &thermo.realize(&p, &mut rng));
        let pcm = HardwareModel {
            thermal_crosstalk: 0.02,
            ..HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm {
                material: PcmMaterial::GeSe,
                levels: 4096,
            })
        };
        let f_pcm = unitary_fidelity(&u, &pcm.realize(&p, &mut rng));
        assert!(f_thermo < 0.99, "heaters must suffer crosstalk: {f_thermo}");
        assert!(
            f_pcm > f_thermo,
            "PCM (no heaters) must be immune: pcm {f_pcm} vs thermo {f_thermo}"
        );
    }

    #[test]
    fn thermal_crosstalk_grows_with_coefficient() {
        let (u, p) = sample_program(8, 28);
        let fid = |c: f64| {
            let model = HardwareModel {
                thermal_crosstalk: c,
                ..HardwareModel::ideal().with_shifter_tech(ShifterTech::ThermoOptic)
            };
            let mut rng = StdRng::seed_from_u64(1);
            unitary_fidelity(&u, &model.realize(&p, &mut rng))
        };
        let f0 = fid(0.0);
        let f1 = fid(0.01);
        let f2 = fid(0.05);
        assert!(f0 > f1 && f1 > f2, "{f0} {f1} {f2}");
    }

    #[test]
    fn thermo_power_scales_with_mesh_size() {
        let tech = TechnologyProfile::default();
        let model = HardwareModel::ideal().with_shifter_tech(ShifterTech::ThermoOptic);
        let (_, p4) = sample_program(4, 17);
        let (_, p8) = sample_program(8, 17);
        let r4 = model.power_report(&p4, &tech);
        let r8 = model.power_report(&p8, &tech);
        assert!(r8.hold_power_w > r4.hold_power_w);
        assert_eq!(r4.programming_energy_j, 0.0);
    }

    #[test]
    fn pcm_power_report_is_nonvolatile() {
        let tech = TechnologyProfile::default();
        let model = HardwareModel::ideal().with_shifter_tech(ShifterTech::Pcm {
            material: PcmMaterial::Gsst,
            levels: 16,
        });
        let (_, p) = sample_program(6, 19);
        let r = model.power_report(&p, &tech);
        assert_eq!(r.hold_power_w, 0.0);
        assert!(r.programming_energy_j > 0.0);
        assert!(r.programming_time_s > 0.0);
    }

    #[test]
    fn ideal_tech_costs_nothing() {
        let tech = TechnologyProfile::default();
        let (_, p) = sample_program(4, 23);
        let r = HardwareModel::ideal().power_report(&p, &tech);
        assert_eq!(r.hold_power_w, 0.0);
        assert_eq!(r.programming_energy_j, 0.0);
    }
}

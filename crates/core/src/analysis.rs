//! Experiment-level sweep helpers: expressivity (E1) and robustness (E2)
//! trials, and basic summary statistics for result tables.

use crate::architecture::MeshArchitecture;
use crate::layered::ProgramOptions;
use neuropulsim_linalg::random::haar_unitary;
use neuropulsim_linalg::{decomp, metrics, parallel, CMatrix, RMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Summary statistics of a sample of scalar results.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population form).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Number of samples.
    pub count: usize,
}

impl Stats {
    /// Computes statistics over the given samples. Returns the default
    /// (all zeros) for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Stats::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Stats {
            mean,
            std: var.sqrt(),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            count: samples.len(),
        }
    }
}

/// One expressivity trial: draws a Haar-random target, programs a mesh of
/// the given architecture, and returns the achieved fidelity.
pub fn expressivity_trial<R: Rng + ?Sized>(arch: MeshArchitecture, n: usize, rng: &mut R) -> f64 {
    let target = haar_unitary(rng, n);
    let mesh = arch.program(&target, rng);
    mesh.fidelity(&target)
}

/// Expressivity over `trials` random targets.
pub fn expressivity_sweep<R: Rng + ?Sized>(
    arch: MeshArchitecture,
    n: usize,
    trials: usize,
    rng: &mut R,
) -> Stats {
    let samples: Vec<f64> = (0..trials)
        .map(|_| expressivity_trial(arch, n, rng))
        .collect();
    Stats::from_samples(&samples)
}

/// One robustness trial under *post-programming phase noise*: program the
/// mesh ideally, perturb every phase by Gaussian noise of std
/// `sigma_phase`, and return the realized fidelity.
pub fn phase_noise_trial<R: Rng + ?Sized>(
    arch: MeshArchitecture,
    n: usize,
    sigma_phase: f64,
    rng: &mut R,
) -> f64 {
    let target = haar_unitary(rng, n);
    let mesh = arch.program(&target, rng);
    let realized = mesh.realize_with_phase_noise(sigma_phase, rng);
    metrics::unitary_fidelity(&target, &realized)
}

/// One robustness trial under *static coupler imbalance*: couplers carry
/// Gaussian splitting errors of std `sigma_coupler`, and each architecture
/// programs the mesh through its natural flow (analytic for Clements,
/// error-aware optimization for Fldzhyan).
pub fn coupler_imbalance_trial<R: Rng + ?Sized>(
    arch: MeshArchitecture,
    n: usize,
    sigma_coupler: f64,
    rng: &mut R,
) -> f64 {
    let target = haar_unitary(rng, n);
    let realized = arch.program_with_imbalance(&target, sigma_coupler, rng);
    metrics::unitary_fidelity(&target, &realized)
}

/// Robustness statistics over `trials`.
pub fn robustness_sweep<R: Rng + ?Sized>(
    arch: MeshArchitecture,
    n: usize,
    sigma_phase: f64,
    sigma_coupler: f64,
    trials: usize,
    rng: &mut R,
) -> Stats {
    let samples: Vec<f64> = (0..trials)
        .map(|_| {
            if sigma_coupler > 0.0 {
                coupler_imbalance_trial(arch, n, sigma_coupler, rng)
            } else {
                phase_noise_trial(arch, n, sigma_phase, rng)
            }
        })
        .collect();
    Stats::from_samples(&samples)
}

/// Coverage of *non-unitary* targets: relative error of realizing a random
/// real matrix through the SVD construction (two meshes + attenuators).
/// Exercises the full expressivity claim — any matrix, not just unitaries.
pub fn nonunitary_coverage_trial<R: Rng + ?Sized>(n: usize, rng: &mut R) -> f64 {
    let m = RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    let core = crate::mvm::MvmCore::new(&m);
    let mut rng2 = rand::rngs::mock::StepRng::new(0, 1);
    let realized = core.realized_matrix(&crate::mvm::MvmNoiseConfig::ideal(), &mut rng2);
    let diff = (&realized - &m).frobenius_norm();
    diff / m.frobenius_norm().max(f64::MIN_POSITIVE)
}

/// Checks that a complex matrix is (numerically) realizable by a lossless
/// mesh: all singular values must be `<= 1 + tol`.
pub fn is_passively_realizable(m: &CMatrix, tol: f64) -> bool {
    let d = decomp::svd(m);
    d.sigma.iter().all(|&s| s <= 1.0 + tol)
}

/// Parallel [`expressivity_sweep`]: `trials` Monte-Carlo trials fanned
/// out over up to `threads` scoped workers.
///
/// Instead of threading one RNG through the sweep, every trial seeds its
/// own [`StdRng`] from [`parallel::split_seed`]`(seed, trial)` — so the
/// returned statistics are a pure function of `(arch, n, trials, seed)`
/// and bit-identical for every thread count.
pub fn expressivity_sweep_par(
    arch: MeshArchitecture,
    n: usize,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Stats {
    let samples = parallel::par_map_indexed(trials, threads, |t| {
        let mut rng = StdRng::seed_from_u64(parallel::split_seed(seed, t as u64));
        expressivity_trial(arch, n, &mut rng)
    });
    Stats::from_samples(&samples)
}

/// Parallel [`robustness_sweep`] with the same per-trial seeding scheme
/// as [`expressivity_sweep_par`]: deterministic in `(inputs, seed)`,
/// independent of `threads`.
#[allow(clippy::too_many_arguments)]
pub fn robustness_sweep_par(
    arch: MeshArchitecture,
    n: usize,
    sigma_phase: f64,
    sigma_coupler: f64,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Stats {
    let samples = parallel::par_map_indexed(trials, threads, |t| {
        let mut rng = StdRng::seed_from_u64(parallel::split_seed(seed, t as u64));
        if sigma_coupler > 0.0 {
            coupler_imbalance_trial(arch, n, sigma_coupler, &mut rng)
        } else {
            phase_noise_trial(arch, n, sigma_phase, &mut rng)
        }
    });
    Stats::from_samples(&samples)
}

/// The canonical size axis of the topology × size grid, up to the
/// large-mesh regime the blocked kernels target.
pub const GRID_SIZES: [usize; 5] = [8, 16, 32, 64, 128];

/// One cell of the topology × size grid: fidelity statistics for a
/// single `(architecture, n)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// The mesh architecture.
    pub arch: MeshArchitecture,
    /// Number of optical modes.
    pub n: usize,
    /// Fidelity on Haar-random targets with ideal hardware (E1). For
    /// Fldzhyan this is honest about the sweep budget in `options` —
    /// large meshes under a capped budget report the fidelity actually
    /// reached, not the asymptotic one.
    pub expressivity: Stats,
    /// Fidelity under static coupler imbalance, each architecture
    /// programming through its natural flow (E2).
    pub imbalance: Stats,
}

/// Full topology × size sweep: every architecture in
/// [`MeshArchitecture::ALL`] crossed with every size in `sizes`,
/// `trials` expressivity and `trials` imbalance-robustness trials per
/// cell.
///
/// Every trial seeds its own RNG from
/// [`parallel::split_seed`]`(seed, task_index)`, so the returned grid
/// is a pure function of `(sizes, trials, sigma_coupler, options,
/// seed)` and bit-identical for every thread count.
pub fn mesh_grid_sweep(
    sizes: &[usize],
    trials: usize,
    sigma_coupler: f64,
    options: ProgramOptions,
    seed: u64,
    threads: usize,
) -> Vec<GridPoint> {
    let cells: Vec<(MeshArchitecture, usize)> = MeshArchitecture::ALL
        .into_iter()
        .flat_map(|arch| sizes.iter().map(move |&n| (arch, n)))
        .collect();
    // Task layout per cell: `trials` expressivity draws, then `trials`
    // imbalance draws; one flat index space so work balances across
    // threads regardless of how lopsided the per-cell costs are.
    let per_cell = 2 * trials;
    let samples = parallel::par_map_indexed(cells.len() * per_cell, threads, |idx| {
        let (arch, n) = cells[idx / per_cell];
        let rest = idx % per_cell;
        let mut rng = StdRng::seed_from_u64(parallel::split_seed(seed, idx as u64));
        let target = haar_unitary(&mut rng, n);
        if rest < trials {
            let mesh = arch.program_with(&target, &mut rng, options);
            mesh.fidelity(&target)
        } else {
            let realized =
                arch.program_with_imbalance_opts(&target, sigma_coupler, &mut rng, options);
            metrics::unitary_fidelity(&target, &realized)
        }
    });
    cells
        .iter()
        .enumerate()
        .map(|(c, &(arch, n))| {
            let base = c * per_cell;
            GridPoint {
                arch,
                n,
                expressivity: Stats::from_samples(&samples[base..base + trials]),
                imbalance: Stats::from_samples(&samples[base + trials..base + per_cell]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stats_basics() {
        let s = Stats::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 3);
        assert_eq!(Stats::from_samples(&[]).count, 0);
    }

    #[test]
    fn clements_expressivity_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = expressivity_sweep(MeshArchitecture::Clements, 6, 5, &mut rng);
        assert!(s.mean > 1.0 - 1e-9);
        assert!(s.min > 1.0 - 1e-8);
    }

    #[test]
    fn phase_noise_trials_degrade_gracefully() {
        let mut rng = StdRng::seed_from_u64(3);
        let f_small = phase_noise_trial(MeshArchitecture::Clements, 6, 0.01, &mut rng);
        let f_large = phase_noise_trial(MeshArchitecture::Clements, 6, 0.5, &mut rng);
        assert!(f_small > 0.99);
        assert!(f_large < f_small);
    }

    #[test]
    fn coupler_trial_returns_valid_fidelity() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = coupler_imbalance_trial(MeshArchitecture::Clements, 4, 0.05, &mut rng);
        assert!((0.0..=1.0 + 1e-9).contains(&f));
    }

    #[test]
    fn robustness_sweep_dispatches_both_modes() {
        let mut rng = StdRng::seed_from_u64(7);
        let phase = robustness_sweep(MeshArchitecture::Clements, 4, 0.05, 0.0, 3, &mut rng);
        let coupler = robustness_sweep(MeshArchitecture::Clements, 4, 0.0, 0.05, 3, &mut rng);
        assert_eq!(phase.count, 3);
        assert_eq!(coupler.count, 3);
    }

    #[test]
    fn parallel_sweeps_are_thread_count_invariant() {
        let a1 = expressivity_sweep_par(MeshArchitecture::Clements, 4, 6, 11, 1);
        for threads in [2, 3, 8] {
            let at = expressivity_sweep_par(MeshArchitecture::Clements, 4, 6, 11, threads);
            assert_eq!(a1, at, "expressivity, threads = {threads}");
        }
        let r1 = robustness_sweep_par(MeshArchitecture::Clements, 4, 0.05, 0.0, 6, 13, 1);
        for threads in [2, 5] {
            let rt = robustness_sweep_par(MeshArchitecture::Clements, 4, 0.05, 0.0, 6, 13, threads);
            assert_eq!(r1, rt, "robustness, threads = {threads}");
        }
        // A different seed gives different draws.
        assert_ne!(
            robustness_sweep_par(MeshArchitecture::Clements, 4, 0.05, 0.0, 6, 13, 1).mean,
            robustness_sweep_par(MeshArchitecture::Clements, 4, 0.05, 0.0, 6, 14, 1).mean,
        );
    }

    #[test]
    fn grid_sweep_covers_every_cell_and_is_thread_invariant() {
        let options = ProgramOptions {
            max_sweeps: 6,
            tol: 1e-9,
        };
        let g1 = mesh_grid_sweep(&[2, 4], 2, 0.05, options, 17, 1);
        assert_eq!(g1.len(), MeshArchitecture::ALL.len() * 2);
        for p in &g1 {
            assert_eq!(p.expressivity.count, 2, "{} n={}", p.arch, p.n);
            assert_eq!(p.imbalance.count, 2);
            assert!(p.expressivity.min > 0.0 && p.expressivity.max <= 1.0 + 1e-9);
        }
        // Analytic architectures are exact on small Haar targets.
        for p in g1.iter().filter(|p| p.arch == MeshArchitecture::Clements) {
            assert!(
                p.expressivity.min > 1.0 - 1e-8,
                "n={}: {:?}",
                p.n,
                p.expressivity
            );
        }
        let g4 = mesh_grid_sweep(&[2, 4], 2, 0.05, options, 17, 4);
        assert_eq!(g1, g4, "grid must be thread-count invariant");
    }

    #[test]
    fn nonunitary_targets_are_covered() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [3, 5] {
            let err = nonunitary_coverage_trial(n, &mut rng);
            assert!(err < 1e-8, "n={n}: relative error {err}");
        }
    }

    #[test]
    fn realizability_check() {
        let id = CMatrix::identity(3);
        assert!(is_passively_realizable(&id, 1e-9));
        let amp = id.scaled(neuropulsim_linalg::C64::real(2.0));
        assert!(!is_passively_realizable(&amp, 1e-9));
    }
}

//! Accelerator-level performance model: latency, throughput, power and
//! energy-per-inference for a photonic MVM core, contrasting volatile
//! (thermo-optic) and non-volatile (PCM) weight storage — experiments
//! E4/E5 and the "speed, energy consumption" axis of §5.

use crate::architecture::MeshArchitecture;
use crate::error::ShifterTech;
use neuropulsim_photonics::energy::{EnergyLedger, TechnologyProfile};
use neuropulsim_photonics::pcm::PcmMaterial;
use neuropulsim_photonics::phase::{PcmPhaseShifter, PhaseShifter};
use std::f64::consts::PI;

/// A workload: `batch` MVMs of size `n x n` between weight updates, with
/// `reprograms` weight loads during the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Matrix dimension.
    pub n: usize,
    /// Input vectors processed per weight configuration.
    pub batch: usize,
    /// Number of weight (re)programming events.
    pub reprograms: usize,
}

/// Performance estimate of running a [`Workload`].
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Wall-clock compute time \[s\] (streaming at the symbol rate).
    pub compute_time_s: f64,
    /// Time spent reprogramming weights \[s\].
    pub programming_time_s: f64,
    /// Throughput during compute \[MAC/s\].
    pub macs_per_second: f64,
    /// Full energy breakdown \[J\].
    pub energy: EnergyLedger,
    /// Energy per MAC \[J\].
    pub energy_per_mac: f64,
    /// Average electrical power over the run \[W\].
    pub average_power_w: f64,
}

/// The accelerator performance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Mesh architecture of both unitaries.
    pub architecture: MeshArchitecture,
    /// Phase-shifter (weight-storage) technology.
    pub shifter_tech: ShifterTech,
    /// Electro-optic technology constants.
    pub tech: TechnologyProfile,
}

impl PerfModel {
    /// Creates a model with default technology constants.
    pub fn new(architecture: MeshArchitecture, shifter_tech: ShifterTech) -> Self {
        PerfModel {
            architecture,
            shifter_tech,
            tech: TechnologyProfile::default(),
        }
    }

    /// Number of programmable phases in the full MVM core (two meshes +
    /// attenuator column).
    pub fn phase_count(&self, n: usize) -> usize {
        2 * self.architecture.phase_shifter_count(n) + n
    }

    /// Static weight-hold power of the core \[W\]. The headline number:
    /// thermo-optic pays `~P_pi/2` per shifter on average, PCM pays zero.
    pub fn hold_power(&self, n: usize) -> f64 {
        match self.shifter_tech {
            ShifterTech::Ideal | ShifterTech::Pcm { .. } => 0.0,
            ShifterTech::ThermoOptic => {
                // Random phases average pi (uniform in [0, 2 pi)), i.e.
                // one P_pi per shifter on average.
                self.phase_count(n) as f64 * self.tech.thermo_p_pi
            }
        }
    }

    /// Energy of one full weight (re)programming event \[J\].
    pub fn programming_energy(&self, n: usize) -> f64 {
        match self.shifter_tech {
            ShifterTech::Ideal => 0.0,
            ShifterTech::ThermoOptic => {
                // Settle transient: hold power during one response time.
                self.hold_power(n) * self.tech.thermo_response
            }
            ShifterTech::Pcm { material, levels } => {
                // Representative mid-range write per shifter.
                let mut s = PcmPhaseShifter::new(material, levels.max(2));
                s.set_phase(PI);
                self.phase_count(n) as f64 * s.programming_energy()
                    + self.phase_count(n) as f64 * self.tech.dac_energy_per_sample
            }
        }
    }

    /// Time of one weight (re)programming event \[s\] (parallel drivers).
    pub fn programming_time(&self, _n: usize) -> f64 {
        match self.shifter_tech {
            ShifterTech::Ideal => 0.0,
            ShifterTech::ThermoOptic => self.tech.thermo_response,
            ShifterTech::Pcm { material, levels } => {
                let mut s = PcmPhaseShifter::new(material, levels.max(2));
                s.set_phase(PI);
                s.programming_time()
            }
        }
    }

    /// Full performance estimate for a workload.
    pub fn run(&self, w: Workload) -> PerfReport {
        let n = w.n;
        let vectors = w.batch * w.reprograms.max(1);
        let compute_time_s = self.tech.streaming_time(vectors);
        let programming_time_s = self.programming_time(n) * w.reprograms as f64;
        let total_time = compute_time_s + programming_time_s;
        let macs = (n * n * vectors) as f64;

        let mut energy = EnergyLedger::new();
        energy.add("laser", self.tech.laser_power(n) * compute_time_s);
        energy.add(
            "modulators",
            self.tech.modulator_energy_per_symbol * (n * vectors) as f64,
        );
        energy.add(
            "receivers",
            self.tech.receiver_energy_per_sample * (n * vectors) as f64,
        );
        energy.add(
            "dac",
            self.tech.dac_energy_per_sample * (n * vectors) as f64,
        );
        energy.add("weight-hold", self.hold_power(n) * total_time);
        energy.add(
            "weight-programming",
            self.programming_energy(n) * w.reprograms as f64,
        );

        let total = energy.total();
        PerfReport {
            compute_time_s,
            programming_time_s,
            macs_per_second: macs / compute_time_s.max(f64::MIN_POSITIVE),
            energy_per_mac: total / macs.max(1.0),
            average_power_w: total / total_time.max(f64::MIN_POSITIVE),
            energy,
        }
    }
}

/// Convenience: the PCM-vs-thermo-optic energy ratio for a workload —
/// the paper's motivating quantity (how much the non-volatile platform
/// saves).
pub fn nonvolatility_energy_ratio(arch: MeshArchitecture, w: Workload) -> f64 {
    let thermo = PerfModel::new(arch, ShifterTech::ThermoOptic).run(w);
    let pcm = PerfModel::new(
        arch,
        ShifterTech::Pcm {
            material: PcmMaterial::Gsst,
            levels: 16,
        },
    )
    .run(w);
    thermo.energy.total() / pcm.energy.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(n: usize, batch: usize, reprograms: usize) -> Workload {
        Workload {
            n,
            batch,
            reprograms,
        }
    }

    #[test]
    fn pcm_has_zero_hold_power() {
        let m = PerfModel::new(
            MeshArchitecture::Clements,
            ShifterTech::Pcm {
                material: PcmMaterial::Gsst,
                levels: 16,
            },
        );
        assert_eq!(m.hold_power(16), 0.0);
        assert!(m.programming_energy(16) > 0.0);
    }

    #[test]
    fn thermo_hold_power_is_significant() {
        let m = PerfModel::new(MeshArchitecture::Clements, ShifterTech::ThermoOptic);
        // 8x8 core: 2*(64) + 8 = 136 shifters * 20 mW = 2.72 W.
        let p = m.hold_power(8);
        assert!((p - 136.0 * 20e-3).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn pcm_wins_at_long_batches() {
        // With static weights (1 program, many inferences), non-volatile
        // storage dominates.
        let ratio =
            nonvolatility_energy_ratio(MeshArchitecture::Clements, workload(16, 100_000, 1));
        assert!(
            ratio > 1.5,
            "PCM should win on static weights, ratio {ratio}"
        );
    }

    #[test]
    fn nonvolatile_weights_win_across_batch_sizes() {
        // Thermo-optic pays both a slow, powered settling transient per
        // reprogram and continuous hold power, so the PCM core wins at
        // every batch size under this technology profile.
        for batch in [1, 100, 100_000] {
            let r = nonvolatility_energy_ratio(MeshArchitecture::Clements, workload(16, batch, 1));
            assert!(r > 1.0, "batch {batch}: ratio {r} should exceed 1");
        }
    }

    #[test]
    fn pcm_reprogramming_dominates_its_budget_at_batch_one() {
        let m = PerfModel::new(
            MeshArchitecture::Clements,
            ShifterTech::Pcm {
                material: PcmMaterial::Gsst,
                levels: 16,
            },
        );
        let rapid = m.run(workload(16, 1, 1000));
        let frac = rapid.energy.get("weight-programming") / rapid.energy.total();
        assert!(frac > 0.5, "programming share {frac} should dominate");
        let settled = m.run(workload(16, 10_000_000, 1));
        let frac2 = settled.energy.get("weight-programming") / settled.energy.total();
        assert!(
            frac2 < 0.05,
            "programming share {frac2} should amortize away"
        );
    }

    #[test]
    fn throughput_scales_quadratically_with_n() {
        let m = PerfModel::new(MeshArchitecture::Clements, ShifterTech::ThermoOptic);
        let r8 = m.run(workload(8, 1000, 1));
        let r16 = m.run(workload(16, 1000, 1));
        assert!((r16.macs_per_second / r8.macs_per_second - 4.0).abs() < 1e-6);
    }

    #[test]
    fn energy_per_mac_drops_with_n() {
        // Larger meshes amortize per-vector I/O over n MACs per element.
        let m = PerfModel::new(MeshArchitecture::Clements, ShifterTech::ThermoOptic);
        let r8 = m.run(workload(8, 1000, 1));
        let r64 = m.run(workload(64, 1000, 1));
        assert!(
            r64.energy_per_mac < r8.energy_per_mac,
            "{} !< {}",
            r64.energy_per_mac,
            r8.energy_per_mac
        );
    }

    #[test]
    fn report_fields_consistent() {
        let m = PerfModel::new(MeshArchitecture::Clements, ShifterTech::ThermoOptic);
        let w = workload(8, 100, 2);
        let r = m.run(w);
        assert!(r.compute_time_s > 0.0);
        assert!(r.programming_time_s > 0.0);
        assert!(r.average_power_w > 0.0);
        let macs = (8 * 8 * 100 * 2) as f64;
        assert!((r.energy.total() / macs - r.energy_per_mac).abs() < 1e-20);
    }

    #[test]
    fn ideal_tech_has_no_weight_costs() {
        let m = PerfModel::new(MeshArchitecture::Clements, ShifterTech::Ideal);
        let r = m.run(workload(8, 10, 1));
        assert_eq!(r.energy.get("weight-hold"), 0.0);
        assert_eq!(r.energy.get("weight-programming"), 0.0);
        assert!(r.energy.total() > 0.0); // I/O still costs
    }
}

//! Generalized matrix–matrix multiplication (GeMM) on the MVM core, via
//! time-division multiplexing (TDM) or dense wavelength-division
//! multiplexing (DWDM) — the paper's §4: "processing those either via
//! time-division multiplexing or through encoding into multiple dense
//! wavelength division multiplexed channels that can be processed in
//! parallel in a single multiport interferometer without incurring
//! additional resource costs".

use crate::abft::{AbftReport, AbftWeights, ColumnCheck};
use crate::mvm::{MvmCore, MvmNoiseConfig};
use neuropulsim_linalg::{parallel, CVector, RMatrix};
use neuropulsim_photonics::energy::{EnergyLedger, TechnologyProfile};
use rand::Rng;

/// How input-matrix columns are streamed through the interferometer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmMode {
    /// One column per symbol slot, sequentially.
    Tdm,
    /// `channels` columns in parallel on distinct wavelengths, with
    /// optional inter-channel crosstalk.
    Wdm {
        /// Number of DWDM channels.
        channels: usize,
    },
}

impl GemmMode {
    /// The parallelism factor of this mode.
    pub fn parallelism(&self) -> usize {
        match self {
            GemmMode::Tdm => 1,
            GemmMode::Wdm { channels } => (*channels).max(1),
        }
    }
}

/// Latency/energy estimate of one GeMM execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmSchedule {
    /// Number of symbol slots needed.
    pub symbol_slots: usize,
    /// Wall-clock time \[s\].
    pub time_s: f64,
    /// Multiply–accumulate operations performed.
    pub macs: u64,
    /// Throughput \[MAC/s\].
    pub macs_per_second: f64,
    /// Energy breakdown.
    pub energy: EnergyLedger,
    /// Energy per MAC \[J\].
    pub energy_per_mac: f64,
}

/// Reusable per-worker buffers for column streaming: the input column,
/// the complex field vector threaded through the meshes, and the raw
/// outputs of the symbol group in flight (`[channel][row]`, flattened).
#[derive(Debug, Clone)]
struct GemmScratch {
    col: Vec<f64>,
    field: CVector,
    results: Vec<f64>,
}

impl GemmScratch {
    fn new(n: usize, par: usize) -> Self {
        GemmScratch {
            col: vec![0.0; n],
            field: CVector::zeros(n),
            results: vec![0.0; par * n],
        }
    }

    /// Output row `r` of in-group channel `gi` after adjacent-channel
    /// crosstalk mixing across the `width` live channels.
    fn mixed(&self, gi: usize, r: usize, width: usize, crosstalk: f64) -> f64 {
        let n = self.col.len();
        let mut v = self.results[gi * n + r];
        if crosstalk > 0.0 {
            if gi > 0 {
                v += crosstalk * self.results[(gi - 1) * n + r];
            }
            if gi + 1 < width {
                v += crosstalk * self.results[(gi + 1) * n + r];
            }
        }
        v
    }
}

/// A GeMM engine wrapping an [`MvmCore`].
#[derive(Debug, Clone)]
pub struct GemmEngine {
    core: MvmCore,
    mode: GemmMode,
    /// Field-amplitude crosstalk between adjacent WDM channels (0 = none).
    crosstalk: f64,
    /// Fractional phase-scaling step per WDM channel offset from the
    /// design wavelength (chromatic dispersion; 0 = achromatic mesh).
    dispersion: f64,
}

impl GemmEngine {
    /// Creates an engine streaming in the given mode with no crosstalk.
    pub fn new(core: MvmCore, mode: GemmMode) -> Self {
        GemmEngine {
            core,
            mode,
            crosstalk: 0.0,
            dispersion: 0.0,
        }
    }

    /// Sets the adjacent-channel crosstalk amplitude (WDM only),
    /// builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `crosstalk` is not in `[0, 1)`.
    pub fn with_crosstalk(mut self, crosstalk: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&crosstalk),
            "crosstalk must be in [0, 1)"
        );
        self.crosstalk = crosstalk;
        self
    }

    /// Sets the per-channel fractional phase-scaling step (chromatic
    /// dispersion), builder-style. A 100 GHz DWDM grid at 1550 nm has a
    /// fractional wavelength step of ~5.2e-4; a phase built from a path
    /// difference scales by the same fraction.
    pub fn with_dispersion(mut self, per_channel_step: f64) -> Self {
        self.dispersion = per_channel_step;
        self
    }

    /// The wrapped MVM core.
    pub fn core(&self) -> &MvmCore {
        &self.core
    }

    /// The streaming mode.
    pub fn mode(&self) -> GemmMode {
        self.mode
    }

    /// Computes `W * X` where `W` is the programmed matrix and `X` has one
    /// input vector per column, through the ideal optical path. In WDM
    /// mode, adjacent in-flight channels leak `crosstalk` of their
    /// amplitude into each other.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != core.modes()`.
    pub fn matmul(&self, x: &RMatrix) -> RMatrix {
        assert_eq!(x.rows(), self.core.modes(), "matmul: dimension mismatch");
        let n = self.core.modes();
        let cols = x.cols();
        let par = self.mode.parallelism();
        let channel_matrices = self.channel_matrices();
        let mut out = RMatrix::zeros(n, cols);
        let mut scratch = GemmScratch::new(n, par);
        let mut group_start = 0;
        while group_start < cols {
            let group_end = (group_start + par).min(cols);
            self.run_group(x, group_start, group_end, &channel_matrices, &mut scratch);
            for (gi, c) in (group_start..group_end).enumerate() {
                for r in 0..n {
                    out[(r, c)] = scratch.mixed(gi, r, group_end - group_start, self.crosstalk);
                }
            }
            group_start = group_end;
        }
        out
    }

    /// [`GemmEngine::matmul`] with symbol groups fanned out over up to
    /// `threads` scoped workers.
    ///
    /// Groups are independent (crosstalk only mixes channels *within* a
    /// group), so the split is by group index and each worker keeps its
    /// own scratch. The result is bit-identical to the serial
    /// [`GemmEngine::matmul`] for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != core.modes()`.
    pub fn matmul_par(&self, x: &RMatrix, threads: usize) -> RMatrix {
        assert_eq!(x.rows(), self.core.modes(), "matmul: dimension mismatch");
        let n = self.core.modes();
        let cols = x.cols();
        let par = self.mode.parallelism();
        let groups = cols.div_ceil(par);
        let channel_matrices = self.channel_matrices();
        let group_outputs = parallel::par_map_indexed(groups, threads, |g| {
            let group_start = g * par;
            let group_end = (group_start + par).min(cols);
            let width = group_end - group_start;
            let mut scratch = GemmScratch::new(n, par);
            self.run_group(x, group_start, group_end, &channel_matrices, &mut scratch);
            let mut mixed = vec![0.0; width * n];
            for gi in 0..width {
                for r in 0..n {
                    mixed[gi * n + r] = scratch.mixed(gi, r, width, self.crosstalk);
                }
            }
            mixed
        });
        let mut out = RMatrix::zeros(n, cols);
        for (g, mixed) in group_outputs.iter().enumerate() {
            let group_start = g * par;
            for (gi, column) in mixed.chunks_exact(n).enumerate() {
                for (r, &v) in column.iter().enumerate() {
                    out[(r, group_start + gi)] = v;
                }
            }
        }
        out
    }

    /// Per-channel effective matrices under dispersion (channel offsets
    /// centered on the design wavelength); `None` when achromatic.
    fn channel_matrices(&self) -> Option<Vec<RMatrix>> {
        let par = self.mode.parallelism();
        if self.dispersion != 0.0 && par > 1 {
            Some(
                (0..par)
                    .map(|ch| {
                        let offset = ch as f64 - (par as f64 - 1.0) / 2.0;
                        self.core.dispersed_matrix(1.0 + self.dispersion * offset)
                    })
                    .collect(),
            )
        } else {
            None
        }
    }

    /// Streams the columns of one symbol group through the core, leaving
    /// the raw per-channel outputs in `scratch`. Columns of a group fly
    /// simultaneously; crosstalk mixing happens afterwards on the
    /// *outputs* (detector-plane mixing of demultiplexed channels) via
    /// [`GemmScratch::mixed`].
    fn run_group(
        &self,
        x: &RMatrix,
        group_start: usize,
        group_end: usize,
        channel_matrices: &Option<Vec<RMatrix>>,
        scratch: &mut GemmScratch,
    ) {
        let n = self.core.modes();
        for (gi, c) in (group_start..group_end).enumerate() {
            for r in 0..n {
                scratch.col[r] = x[(r, c)];
            }
            let y = &mut scratch.results[gi * n..(gi + 1) * n];
            match channel_matrices {
                Some(mats) => mats[gi].mul_vec_into(&scratch.col, y),
                None => self.core.multiply_into(&scratch.col, y, &mut scratch.field),
            }
        }
    }

    /// Same as [`GemmEngine::matmul`] but through one sampled noisy
    /// hardware instance.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != core.modes()`.
    pub fn matmul_noisy<R: Rng + ?Sized>(
        &self,
        x: &RMatrix,
        config: &MvmNoiseConfig,
        rng: &mut R,
    ) -> RMatrix {
        assert_eq!(x.rows(), self.core.modes(), "matmul: dimension mismatch");
        let n = self.core.modes();
        let instance = self.core.realize(config, rng);
        let cols = x.cols();
        let mut out = RMatrix::zeros(n, cols);
        let mut col = vec![0.0; n];
        let mut y = vec![0.0; n];
        for c in 0..cols {
            for r in 0..n {
                col[r] = x[(r, c)];
            }
            instance.multiply_noisy_into(&col, &mut y, rng);
            for r in 0..n {
                out[(r, c)] = y[r];
            }
        }
        out
    }

    /// The ABFT checksum rows of the programmed matrix, for guarding
    /// offloads of this engine (see [`crate::abft`]).
    pub fn abft_weights(&self) -> AbftWeights {
        AbftWeights::new(self.core.target())
    }

    /// [`GemmEngine::matmul_noisy`] with per-column ABFT verification and
    /// single-element repair: every output column is checked against the
    /// checksum rows of the *target* matrix within `tolerance`,
    /// correctable columns are repaired in place, and the verdict tally
    /// is returned alongside the (possibly repaired) output.
    ///
    /// With an ideal noise config the report is all-clean; as noise grows
    /// past what `tolerance` absorbs, columns migrate to
    /// corrected/corrupt — the same clean/correctable/corrupt taxonomy
    /// the guarded firmware applies on-device.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != core.modes()`.
    pub fn matmul_noisy_checked<R: Rng + ?Sized>(
        &self,
        x: &RMatrix,
        config: &MvmNoiseConfig,
        rng: &mut R,
        tolerance: f64,
    ) -> (RMatrix, AbftReport) {
        let weights = self.abft_weights();
        let mut out = self.matmul_noisy(x, config, rng);
        let n = self.core.modes();
        let mut report = AbftReport::default();
        let mut col = vec![0.0; n];
        let mut y = vec![0.0; n];
        for c in 0..x.cols() {
            for r in 0..n {
                col[r] = x[(r, c)];
                y[r] = out[(r, c)];
            }
            match weights.check(&col, &y, tolerance) {
                ColumnCheck::Clean => report.clean += 1,
                verdict @ ColumnCheck::Correctable { .. } => {
                    weights.correct(&mut y, &verdict);
                    for r in 0..n {
                        out[(r, c)] = y[r];
                    }
                    report.corrected += 1;
                }
                ColumnCheck::Corrupt => report.corrupt += 1,
            }
        }
        (out, report)
    }

    /// Estimates the latency and energy of multiplying an `n x cols` input
    /// under the given technology profile.
    ///
    /// WDM parallelism divides the slot count but multiplies the per-slot
    /// laser and modulator counts — the mesh itself is shared for free,
    /// which is exactly the resource argument the paper makes.
    pub fn schedule(&self, cols: usize, tech: &TechnologyProfile) -> GemmSchedule {
        let n = self.core.modes();
        let par = self.mode.parallelism();
        let symbol_slots = cols.div_ceil(par);
        let time_s = symbol_slots as f64 / tech.symbol_rate;
        let macs = (n as u64) * (n as u64) * cols as u64;

        let mut energy = EnergyLedger::new();
        // Laser supplies `n` carriers per active wavelength channel.
        energy.add("laser", tech.laser_power(n * par) * time_s);
        // One modulator symbol per input element actually streamed.
        energy.add(
            "modulators",
            tech.modulator_energy_per_symbol * (n * cols) as f64,
        );
        // One receiver sample per output element.
        energy.add(
            "receivers",
            tech.receiver_energy_per_sample * (n * cols) as f64,
        );
        // DAC work to drive the modulators.
        energy.add("dac", tech.dac_energy_per_sample * (n * cols) as f64);

        let total = energy.total();
        GemmSchedule {
            symbol_slots,
            time_s,
            macs,
            macs_per_second: macs as f64 / time_s.max(f64::MIN_POSITIVE),
            energy_per_mac: total / macs.max(1) as f64,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropulsim_linalg::metrics::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> RMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        RMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn tdm_matmul_matches_digital() {
        let w = random_matrix(4, 4, 1);
        let x = random_matrix(4, 7, 2);
        let engine = GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm);
        let got = engine.matmul(&x);
        let want = w.mul_mat(&x);
        assert!(mse(got.as_slice(), want.as_slice()) < 1e-16);
    }

    #[test]
    fn wdm_without_crosstalk_matches_tdm() {
        let w = random_matrix(4, 4, 3);
        let x = random_matrix(4, 6, 4);
        let tdm = GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm).matmul(&x);
        let wdm = GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 4 }).matmul(&x);
        assert!(mse(tdm.as_slice(), wdm.as_slice()) < 1e-18);
    }

    #[test]
    fn crosstalk_perturbs_wdm_results() {
        let w = random_matrix(4, 4, 5);
        let x = random_matrix(4, 8, 6);
        let clean = GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 4 }).matmul(&x);
        let dirty = GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 4 })
            .with_crosstalk(0.05)
            .matmul(&x);
        let err = mse(clean.as_slice(), dirty.as_slice());
        assert!(err > 0.0, "crosstalk must perturb");
        assert!(err < 0.5, "but moderately");
    }

    #[test]
    fn wdm_parallelism_cuts_latency() {
        let w = random_matrix(8, 8, 7);
        let tech = TechnologyProfile::default();
        let tdm = GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm).schedule(64, &tech);
        let wdm =
            GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 8 }).schedule(64, &tech);
        assert_eq!(tdm.symbol_slots, 64);
        assert_eq!(wdm.symbol_slots, 8);
        assert!((tdm.time_s / wdm.time_s - 8.0).abs() < 1e-9);
        assert!(wdm.macs_per_second > tdm.macs_per_second);
        assert_eq!(tdm.macs, wdm.macs);
    }

    #[test]
    fn wdm_does_not_increase_modulator_energy_per_mac() {
        // Same number of symbols encoded either way.
        let w = random_matrix(8, 8, 8);
        let tech = TechnologyProfile::default();
        let tdm = GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm).schedule(32, &tech);
        let wdm =
            GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 4 }).schedule(32, &tech);
        assert!((tdm.energy.get("modulators") - wdm.energy.get("modulators")).abs() < 1e-18);
        // Laser energy is the same too: more channels for less time.
        assert!((tdm.energy.get("laser") - wdm.energy.get("laser")).abs() < 1e-15);
    }

    #[test]
    fn schedule_macs_accounting() {
        let w = random_matrix(4, 4, 9);
        let tech = TechnologyProfile::default();
        let s = GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm).schedule(10, &tech);
        assert_eq!(s.macs, 4 * 4 * 10);
        assert!(s.energy_per_mac > 0.0);
        assert!(s.energy.total() > 0.0);
    }

    #[test]
    fn parallel_matmul_is_bit_identical_for_any_thread_count() {
        let w = random_matrix(6, 6, 30);
        let x = random_matrix(6, 13, 31);
        for engine in [
            GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm),
            GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 4 })
                .with_crosstalk(0.02)
                .with_dispersion(1e-3),
        ] {
            let serial = engine.matmul(&x);
            for threads in [1, 2, 3, 8] {
                let par = engine.matmul_par(&x, threads);
                assert_eq!(par.as_slice(), serial.as_slice(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn noisy_matmul_stays_close_for_small_noise() {
        let w = random_matrix(4, 4, 10);
        let x = random_matrix(4, 5, 11);
        let engine = GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm);
        let config = MvmNoiseConfig {
            readout_sigma: 1e-4,
            ..MvmNoiseConfig::ideal()
        };
        let mut rng = StdRng::seed_from_u64(12);
        let noisy = engine.matmul_noisy(&x, &config, &mut rng);
        let clean = engine.matmul(&x);
        assert!(mse(noisy.as_slice(), clean.as_slice()) < 1e-4);
    }

    #[test]
    fn dispersion_perturbs_off_center_channels() {
        let w = random_matrix(4, 4, 20);
        let x = random_matrix(4, 8, 21);
        let reference = w.mul_mat(&x);
        let clean = GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 8 }).matmul(&x);
        assert!(mse(clean.as_slice(), reference.as_slice()) < 1e-18);
        let dispersed = GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 8 })
            .with_dispersion(5e-3)
            .matmul(&x);
        let err = mse(dispersed.as_slice(), reference.as_slice());
        assert!(err > 1e-10, "dispersion must perturb, err {err}");
        // Stronger dispersion, larger error.
        let worse = GemmEngine::new(MvmCore::new(&w), GemmMode::Wdm { channels: 8 })
            .with_dispersion(2e-2)
            .matmul(&x);
        assert!(mse(worse.as_slice(), reference.as_slice()) > err);
    }

    #[test]
    fn dispersion_leaves_tdm_untouched() {
        let w = random_matrix(4, 4, 22);
        let x = random_matrix(4, 5, 23);
        let a = GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm).matmul(&x);
        let b = GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm)
            .with_dispersion(1e-2)
            .matmul(&x);
        assert!(mse(a.as_slice(), b.as_slice()) < 1e-30);
    }

    #[test]
    fn checked_matmul_is_clean_when_ideal_and_repairs_single_errors() {
        let w = random_matrix(6, 6, 40);
        let x = random_matrix(6, 9, 41);
        let engine = GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm);
        let config = MvmNoiseConfig::ideal();
        let mut rng = StdRng::seed_from_u64(42);
        let (out, report) = engine.matmul_noisy_checked(&x, &config, &mut rng, 1e-6);
        assert_eq!(report.clean, 9);
        assert!(report.all_clean());
        assert!(mse(out.as_slice(), w.mul_mat(&x).as_slice()) < 1e-18);

        // A single-element corruption is found and repaired offline too.
        let weights = engine.abft_weights();
        let col: Vec<f64> = (0..6).map(|r| x[(r, 3)]).collect();
        let mut y = w.mul_vec(&col);
        y[4] += 0.9;
        let verdict = weights.check(&col, &y, 1e-6);
        assert!(matches!(
            verdict,
            crate::abft::ColumnCheck::Correctable { row: 4, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "crosstalk")]
    fn rejects_bad_crosstalk() {
        let w = random_matrix(2, 2, 13);
        let _ = GemmEngine::new(MvmCore::new(&w), GemmMode::Tdm).with_crosstalk(1.0);
    }
}

//! Photonic physically unclonable functions (PUFs) — the "hardware
//! security primitives" the paper's simulation platform is built to
//! co-evaluate with the accelerator (§5: "detailed system-level
//! evaluation ... with a specific emphasis on the security properties of
//! the computing platform"; the NEUROPULS acronym itself is
//! "NEUROmorphic ... *secure* accelerators").
//!
//! The construction uses the same MZI-mesh fabric as the accelerator: an
//! *uncalibrated* mesh whose random fabrication variation (coupler
//! imbalance + static phase offsets) is the secret. A challenge selects a
//! binary phase pattern on the input ports; the response is the
//! thresholded detector-power pattern. Cloning requires reproducing the
//! per-device variation, which fabrication cannot do.
//!
//! Standard PUF quality metrics are provided: uniformity, uniqueness
//! (inter-device distance), reliability (intra-device distance under
//! readout noise) and the avalanche effect.

use crate::clements::decompose;
use crate::error::HardwareModel;
use crate::program::MeshProgram;
use neuropulsim_linalg::{CMatrix, CVector, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Fabrication-variation magnitudes defining a PUF population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PufVariation {
    /// Coupler splitting-angle sigma \[rad\].
    pub coupler_sigma: f64,
    /// Static phase-offset sigma \[rad\].
    pub phase_sigma: f64,
}

impl Default for PufVariation {
    /// Typical un-trimmed SOI variation: strong enough to decorrelate
    /// devices, weak enough to keep the mesh transmissive.
    fn default() -> Self {
        PufVariation {
            coupler_sigma: 0.05,
            phase_sigma: 1.0,
        }
    }
}

/// One physical PUF instance: a frozen random interferometer.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::puf::PhotonicPuf;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let puf = PhotonicPuf::new(&mut rng, 8, Default::default());
/// let challenge = vec![true, false, true, true, false, false, true, false];
/// let r1 = puf.respond(&challenge);
/// let r2 = puf.respond(&challenge);
/// assert_eq!(r1, r2, "noiseless responses are deterministic");
/// ```
#[derive(Debug, Clone)]
pub struct PhotonicPuf {
    transfer: CMatrix,
    n: usize,
}

impl PhotonicPuf {
    /// Fabricates one instance of an `n`-mode PUF with the given
    /// variation (sampled from `rng` — the "process lottery").
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, n: usize, variation: PufVariation) -> Self {
        PhotonicPuf::with_design(rng, n, variation, 0x9E37_79B9)
    }

    /// Fabricates an instance of a *specific* (public) nominal design,
    /// identified by `design_seed`. All devices of a product share the
    /// design; only the fabrication variation sampled from `rng`
    /// distinguishes them — the PUF threat model.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn with_design<R: Rng + ?Sized>(
        rng: &mut R,
        n: usize,
        variation: PufVariation,
        design_seed: u64,
    ) -> Self {
        assert!(n >= 2, "PUF mesh needs at least 2 modes");
        // The nominal design: a fixed port-mixing mesh, public knowledge.
        let mut design_rng = StdRng::seed_from_u64(design_seed ^ (n as u64).wrapping_mul(0xD129));
        let target = neuropulsim_linalg::random::haar_unitary(&mut design_rng, n);
        let program: MeshProgram = decompose(&target);
        // The secret: this die's process variation.
        let model = HardwareModel {
            coupler_imbalance_sigma: variation.coupler_sigma,
            phase_noise_sigma: variation.phase_sigma,
            ..HardwareModel::ideal()
        };
        PhotonicPuf {
            transfer: model.realize(&program, rng),
            n,
        }
    }

    /// Number of challenge bits (= modes = response bits).
    pub fn challenge_bits(&self) -> usize {
        self.n
    }

    /// Evaluates the PUF: challenge bits become a binary phase pattern
    /// (`0 -> 0`, `1 -> pi`) on equal-amplitude inputs; the response is
    /// each output port's power thresholded at the median.
    ///
    /// # Panics
    ///
    /// Panics if `challenge.len() != challenge_bits()`.
    pub fn respond(&self, challenge: &[bool]) -> Vec<bool> {
        self.respond_with_noise_internal(challenge, None, &mut NoRng)
    }

    /// Evaluates with multiplicative Gaussian readout noise of relative
    /// sigma `sigma` on each detector power (one measurement shot).
    ///
    /// # Panics
    ///
    /// Panics if `challenge.len() != challenge_bits()`.
    pub fn respond_noisy<R: Rng + ?Sized>(
        &self,
        challenge: &[bool],
        sigma: f64,
        rng: &mut R,
    ) -> Vec<bool> {
        self.respond_with_noise_internal(challenge, Some(sigma), rng)
    }

    fn respond_with_noise_internal<R: Rng + ?Sized>(
        &self,
        challenge: &[bool],
        sigma: Option<f64>,
        rng: &mut R,
    ) -> Vec<bool> {
        assert_eq!(
            challenge.len(),
            self.n,
            "challenge must have {} bits",
            self.n
        );
        let amplitude = 1.0 / (self.n as f64).sqrt();
        let input: CVector = challenge
            .iter()
            .map(|&b| C64::from_polar(amplitude, if b { PI } else { 0.0 }))
            .collect();
        let out = self.transfer.mul_vec(&input);
        let mut powers = out.powers();
        if let Some(s) = sigma {
            for p in powers.iter_mut() {
                *p *= 1.0 + s * neuropulsim_linalg::random::gaussian(rng);
            }
        }
        // Median threshold: balanced responses by construction.
        let mut sorted = powers.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite powers"));
        let median = 0.5 * (sorted[(self.n - 1) / 2] + sorted[self.n / 2]);
        powers.iter().map(|&p| p > median).collect()
    }
}

// A zero-sized stand-in so the noiseless path shares the generic body.
struct NoRng;
impl rand::RngCore for NoRng {
    fn next_u32(&mut self) -> u32 {
        unreachable!("noiseless path never samples")
    }
    fn next_u64(&mut self) -> u64 {
        unreachable!("noiseless path never samples")
    }
    fn fill_bytes(&mut self, _dest: &mut [u8]) {
        unreachable!("noiseless path never samples")
    }
    fn try_fill_bytes(&mut self, _dest: &mut [u8]) -> Result<(), rand::Error> {
        unreachable!("noiseless path never samples")
    }
}

/// Hamming distance between two responses.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn hamming(a: &[bool], b: &[bool]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming: length mismatch");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// PUF population statistics over a challenge set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PufQuality {
    /// Mean fraction of `1` bits per response (ideal 0.5).
    pub uniformity: f64,
    /// Mean normalized inter-device Hamming distance (ideal 0.5).
    pub uniqueness: f64,
    /// Mean normalized intra-device Hamming distance across noisy
    /// re-measurements (ideal 0).
    pub reliability_distance: f64,
    /// Mean normalized response change for a 1-bit challenge flip
    /// (ideal 0.5).
    pub avalanche: f64,
}

/// Evaluates the standard quality metrics over `devices` instances,
/// `challenges` random challenges, and `remeasurements` noisy readouts
/// with relative readout noise `readout_sigma`.
pub fn evaluate_population<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    devices: usize,
    challenges: usize,
    remeasurements: usize,
    readout_sigma: f64,
    variation: PufVariation,
) -> PufQuality {
    let pufs: Vec<PhotonicPuf> = (0..devices)
        .map(|_| PhotonicPuf::new(rng, n, variation))
        .collect();
    let challenge_set: Vec<Vec<bool>> = (0..challenges)
        .map(|_| (0..n).map(|_| rng.gen_bool(0.5)).collect())
        .collect();

    let mut ones = 0usize;
    let mut bits = 0usize;
    let mut inter = 0.0;
    let mut inter_count = 0usize;
    let mut intra = 0.0;
    let mut intra_count = 0usize;
    let mut avalanche = 0.0;
    let mut avalanche_count = 0usize;

    for c in &challenge_set {
        let responses: Vec<Vec<bool>> = pufs.iter().map(|p| p.respond(c)).collect();
        for r in &responses {
            ones += r.iter().filter(|&&b| b).count();
            bits += r.len();
        }
        for i in 0..responses.len() {
            for j in (i + 1)..responses.len() {
                inter += hamming(&responses[i], &responses[j]) as f64 / n as f64;
                inter_count += 1;
            }
        }
        for (p, reference) in pufs.iter().zip(&responses) {
            for _ in 0..remeasurements {
                let noisy = p.respond_noisy(c, readout_sigma, rng);
                intra += hamming(reference, &noisy) as f64 / n as f64;
                intra_count += 1;
            }
        }
        // Avalanche: flip one random challenge bit.
        let mut flipped = c.clone();
        let bit = rng.gen_range(0..n);
        flipped[bit] = !flipped[bit];
        for (p, reference) in pufs.iter().zip(&responses) {
            let r2 = p.respond(&flipped);
            avalanche += hamming(reference, &r2) as f64 / n as f64;
            avalanche_count += 1;
        }
    }

    PufQuality {
        uniformity: ones as f64 / bits.max(1) as f64,
        uniqueness: inter / inter_count.max(1) as f64,
        reliability_distance: intra / intra_count.max(1) as f64,
        avalanche: avalanche / avalanche_count.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn responses_are_deterministic_and_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let puf = PhotonicPuf::new(&mut rng, 8, Default::default());
        let c: Vec<bool> = (0..8).map(|k| k % 3 == 0).collect();
        let r1 = puf.respond(&c);
        let r2 = puf.respond(&c);
        assert_eq!(r1, r2);
        // Median threshold: exactly half (for even n) above threshold.
        let ones = r1.iter().filter(|&&b| b).count();
        assert_eq!(ones, 4, "median threshold balances the response");
    }

    #[test]
    fn different_devices_give_different_responses() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = PhotonicPuf::new(&mut rng, 8, Default::default());
        let b = PhotonicPuf::new(&mut rng, 8, Default::default());
        let mut distinct = 0;
        for k in 0..16u32 {
            let c: Vec<bool> = (0..8).map(|i| (k >> (i % 4)) & 1 == 1).collect();
            if a.respond(&c) != b.respond(&c) {
                distinct += 1;
            }
        }
        assert!(
            distinct > 8,
            "devices should disagree often, got {distinct}/16"
        );
    }

    #[test]
    fn different_challenges_give_different_responses() {
        let mut rng = StdRng::seed_from_u64(3);
        let puf = PhotonicPuf::new(&mut rng, 8, Default::default());
        let base: Vec<bool> = vec![false; 8];
        let base_r = puf.respond(&base);
        let mut changed = 0;
        for bit in 0..8 {
            let mut c = base.clone();
            c[bit] = true;
            if puf.respond(&c) != base_r {
                changed += 1;
            }
        }
        assert!(changed >= 6, "avalanche too weak: {changed}/8");
    }

    #[test]
    fn small_readout_noise_rarely_flips_bits() {
        let mut rng = StdRng::seed_from_u64(4);
        let puf = PhotonicPuf::new(&mut rng, 8, Default::default());
        let c: Vec<bool> = (0..8).map(|k| k % 2 == 0).collect();
        let reference = puf.respond(&c);
        let mut total_flips = 0;
        for _ in 0..50 {
            let noisy = puf.respond_noisy(&c, 0.01, &mut rng);
            total_flips += hamming(&reference, &noisy);
        }
        // Under 1% readout noise, bit flips only happen near the median.
        assert!(
            total_flips < 50,
            "too unreliable: {total_flips} flips in 400 bits"
        );
    }

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(&[true, false], &[true, true]), 1);
        assert_eq!(hamming(&[], &[]), 0);
    }

    #[test]
    fn population_metrics_are_in_ideal_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = evaluate_population(&mut rng, 8, 6, 8, 3, 0.01, Default::default());
        assert!(
            (q.uniformity - 0.5).abs() < 0.05,
            "uniformity {}",
            q.uniformity
        );
        assert!(
            (q.uniqueness - 0.5).abs() < 0.15,
            "uniqueness {}",
            q.uniqueness
        );
        assert!(
            q.reliability_distance < 0.1,
            "reliability {}",
            q.reliability_distance
        );
        assert!(q.avalanche > 0.2, "avalanche {}", q.avalanche);
    }

    #[test]
    fn zero_variation_devices_are_clones() {
        // With no fabrication variation every device realizes the public
        // nominal design exactly — responses are identical (no entropy).
        let novar = PufVariation {
            coupler_sigma: 0.0,
            phase_sigma: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let a = PhotonicPuf::new(&mut rng, 8, novar);
        let b = PhotonicPuf::new(&mut rng, 8, novar);
        for k in 0..8u32 {
            let c: Vec<bool> = (0..8).map(|i| (k >> (i % 4)) & 1 == 1).collect();
            assert_eq!(a.respond(&c), b.respond(&c), "clones must agree");
        }
    }

    #[test]
    fn uniqueness_comes_from_variation_not_design() {
        let mut rng = StdRng::seed_from_u64(12);
        let weak = evaluate_population(
            &mut rng,
            8,
            4,
            8,
            1,
            0.0,
            PufVariation {
                coupler_sigma: 0.001,
                phase_sigma: 0.005,
            },
        );
        let mut rng = StdRng::seed_from_u64(12);
        let strong = evaluate_population(&mut rng, 8, 4, 8, 1, 0.0, Default::default());
        assert!(
            weak.uniqueness < strong.uniqueness,
            "weak {} !< strong {}",
            weak.uniqueness,
            strong.uniqueness
        );
        assert!(
            weak.uniqueness < 0.3,
            "near-identical dies: {}",
            weak.uniqueness
        );
    }

    #[test]
    fn reliability_degrades_with_noise() {
        let mut rng = StdRng::seed_from_u64(6);
        let quiet = evaluate_population(&mut rng, 8, 3, 6, 3, 0.005, Default::default());
        let mut rng = StdRng::seed_from_u64(6);
        let loud = evaluate_population(&mut rng, 8, 3, 6, 3, 0.3, Default::default());
        assert!(loud.reliability_distance > quiet.reliability_distance);
    }

    #[test]
    #[should_panic(expected = "challenge must have")]
    fn rejects_wrong_challenge_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let puf = PhotonicPuf::new(&mut rng, 4, Default::default());
        let _ = puf.respond(&[true; 5]);
    }
}

//! The photonic matrix–vector-multiplication (MVM) core: the paper's §4
//! "in-memory optical computing" engine.
//!
//! An arbitrary real weight matrix `M` is factored as `M = U Σ V†` (SVD)
//! and realized as:
//!
//! ```text
//!   input x → [modulators] → [mesh V†] → [attenuators Σ/σ_max]
//!           → [mesh U] → [homodyne detectors] → y = M x
//! ```
//!
//! The two meshes are programmed Clements-style (or any architecture); the
//! diagonal is a column of amplitude attenuators (realizable as MZIs in
//! bar-configuration or PCM absorbers). Weights live *in* the mesh —
//! reading them costs nothing per inference, which is the in-memory
//! computing claim the paper builds on.

use crate::clements::decompose;
use crate::error::HardwareModel;
use crate::program::{CompiledMesh, MeshProgram};
use neuropulsim_linalg::decomp::svd;
use neuropulsim_linalg::{CMatrix, CVector, RMatrix, C64};

use rand::Rng;

/// Scales column `k` of `m` by `a[k]` in place — `m · diag(a)` without
/// materializing the diagonal matrix or paying an O(n³) product.
fn scale_columns(m: &mut CMatrix, a: &[f64]) {
    let cols = m.cols();
    for (idx, z) in m.as_mut_slice().iter_mut().enumerate() {
        *z = z.scale(a[idx % cols]);
    }
}

/// Noise/imperfection configuration for a physical MVM execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MvmNoiseConfig {
    /// Hardware imperfections of both meshes.
    pub hardware: HardwareModel,
    /// Additive Gaussian noise RMS on each homodyne readout, relative to
    /// a unit-amplitude field.
    pub readout_sigma: f64,
    /// Relative RMS error of each diagonal attenuator setting.
    pub attenuator_sigma: f64,
}

impl MvmNoiseConfig {
    /// A noiseless, ideal configuration.
    pub fn ideal() -> Self {
        MvmNoiseConfig {
            hardware: HardwareModel::ideal(),
            readout_sigma: 0.0,
            attenuator_sigma: 0.0,
        }
    }
}

impl Default for MvmNoiseConfig {
    fn default() -> Self {
        MvmNoiseConfig::ideal()
    }
}

/// A programmed photonic MVM core holding one `n x n` real matrix.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::mvm::MvmCore;
/// use neuropulsim_linalg::RMatrix;
///
/// let m = RMatrix::from_rows(2, 2, &[1.0, -0.5, 0.25, 2.0]);
/// let core = MvmCore::new(&m);
/// let y = core.multiply(&[1.0, 1.0]);
/// assert!((y[0] - 0.5).abs() < 1e-9);
/// assert!((y[1] - 2.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct MvmCore {
    n: usize,
    target: RMatrix,
    u_program: MeshProgram,
    v_program: MeshProgram,
    /// Execution plans compiled once at programming time: all MZI
    /// trigonometry is evaluated here, so the multiply hot path is pure
    /// complex multiply-adds.
    u_plan: CompiledMesh,
    v_plan: CompiledMesh,
    /// Attenuator amplitudes in `[0, 1]` (singular values / sigma_max).
    attenuation: Vec<f64>,
    /// Overall scale `sigma_max` restoring physical magnitudes.
    scale: f64,
}

impl MvmCore {
    /// Programs a core for the given square real matrix.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not square or is empty.
    pub fn new(m: &RMatrix) -> Self {
        assert_eq!(m.rows(), m.cols(), "MVM core needs a square matrix");
        assert!(m.rows() > 0, "MVM core needs a non-empty matrix");
        let n = m.rows();
        let complex = m.to_complex();
        let d = svd(&complex);
        let sigma_max = d.sigma.first().copied().unwrap_or(0.0);
        let (attenuation, scale) = if sigma_max > 0.0 {
            (d.sigma.iter().map(|s| s / sigma_max).collect(), sigma_max)
        } else {
            (vec![0.0; n], 0.0)
        };
        let u_program = decompose(&d.u);
        let v_program = decompose(&d.v.adjoint());
        let u_plan = u_program.compile();
        let v_plan = v_program.compile();
        MvmCore {
            n,
            target: m.clone(),
            u_program,
            v_program,
            u_plan,
            v_plan,
            attenuation,
            scale,
        }
    }

    /// The matrix dimension `n`.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// The target matrix this core was programmed for.
    pub fn target(&self) -> &RMatrix {
        &self.target
    }

    /// The output scale factor (`sigma_max` of the target).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The normalized attenuator settings in `[0, 1]`.
    pub fn attenuation(&self) -> &[f64] {
        &self.attenuation
    }

    /// The mesh program of the left (U) unitary.
    pub fn u_program(&self) -> &MeshProgram {
        &self.u_program
    }

    /// The mesh program of the right (V†) unitary.
    pub fn v_program(&self) -> &MeshProgram {
        &self.v_program
    }

    /// Total number of MZI blocks across both meshes.
    pub fn block_count(&self) -> usize {
        self.u_program.block_count() + self.v_program.block_count()
    }

    /// Ideal optical multiply: returns `M * x` computed through the
    /// photonic pipeline with perfect components.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != modes()`.
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        let mut scratch = CVector::zeros(self.n);
        self.multiply_into(x, &mut y, &mut scratch);
        y
    }

    /// Ideal optical multiply into a caller-owned output.
    ///
    /// The zero-allocation form of [`MvmCore::multiply`]: the input is
    /// loaded into `scratch`, both compiled meshes are applied in place
    /// (O(blocks) multiply-adds, no trigonometry, no fresh buffers), and
    /// the homodyne readout lands in `y`. Column-streaming callers (GeMM)
    /// reuse `y` and `scratch` across every call.
    ///
    /// # Panics
    ///
    /// Panics if `x`, `y`, or `scratch` are not `modes()` long.
    pub fn multiply_into(&self, x: &[f64], y: &mut [f64], scratch: &mut CVector) {
        assert_eq!(x.len(), self.n, "multiply_into: dimension mismatch");
        assert_eq!(y.len(), self.n, "multiply_into: bad output length");
        assert_eq!(scratch.len(), self.n, "multiply_into: bad scratch length");
        let buf = scratch.as_mut_slice();
        for (s, &xi) in buf.iter_mut().zip(x) {
            *s = C64::real(xi);
        }
        self.v_plan.apply_in_place(buf);
        for (s, &a) in buf.iter_mut().zip(&self.attenuation) {
            *s = s.scale(a);
        }
        self.u_plan.apply_in_place(buf);
        for (yi, z) in y.iter_mut().zip(buf.iter()) {
            *yi = z.re * self.scale;
        }
    }

    /// Physical optical multiply with sampled hardware imperfections and
    /// readout noise. Each call re-samples the static imperfections (i.e.
    /// models one fabricated instance); reuse [`MvmCore::realize`] to fix
    /// an instance across many multiplies.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != modes()`.
    pub fn multiply_noisy<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        config: &MvmNoiseConfig,
        rng: &mut R,
    ) -> Vec<f64> {
        self.realize(config, rng).multiply_noisy(x, rng)
    }

    /// Realizes one physical instance of the core under the given noise
    /// configuration (static imperfections frozen in).
    pub fn realize<R: Rng + ?Sized>(&self, config: &MvmNoiseConfig, rng: &mut R) -> RealizedMvm {
        let u = config.hardware.realize(&self.u_program, rng);
        let v = config.hardware.realize(&self.v_program, rng);
        let attenuation: Vec<f64> = self
            .attenuation
            .iter()
            .map(|&a| {
                let noisy =
                    a * (1.0 + config.attenuator_sigma * neuropulsim_linalg::random::gaussian(rng));
                noisy.clamp(0.0, 1.0)
            })
            .collect();
        RealizedMvm::new(u, v, attenuation, self.scale, config.readout_sigma)
    }

    /// Realizes one physical instance with an **explicit** attenuator
    /// vector instead of the programmed one — the hook for device models
    /// that evolve the attenuator state outside the core (e.g. PCM drift
    /// advancing with simulated time). Entries are clamped to `[0, 1]`;
    /// mesh imperfections and readout noise still come from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `attenuation.len() != modes()`.
    pub fn realize_with_attenuation<R: Rng + ?Sized>(
        &self,
        attenuation: &[f64],
        config: &MvmNoiseConfig,
        rng: &mut R,
    ) -> RealizedMvm {
        assert_eq!(
            attenuation.len(),
            self.n,
            "realize_with_attenuation: attenuator count mismatch"
        );
        let u = config.hardware.realize(&self.u_program, rng);
        let v = config.hardware.realize(&self.v_program, rng);
        let attenuation: Vec<f64> = attenuation.iter().map(|a| a.clamp(0.0, 1.0)).collect();
        RealizedMvm::new(u, v, attenuation, self.scale, config.readout_sigma)
    }

    /// The effective real matrix seen by a carrier whose wavelength
    /// detuning scales every mesh phase by `factor` (1.0 = the design
    /// wavelength). First-order chromatic-dispersion model for DWDM
    /// operation.
    pub fn dispersed_matrix(&self, factor: f64) -> RMatrix {
        let mut u = self.u_program.with_scaled_phases(factor).transfer_matrix();
        let v = self.v_program.with_scaled_phases(factor).transfer_matrix();
        // U · diag(a) is a column scaling — one O(n²) pass instead of an
        // O(n³) product against a mostly-zero matrix.
        scale_columns(&mut u, &self.attenuation);
        let m = u.mul_mat(&v);
        RMatrix::from_fn(self.n, self.n, |i, j| m[(i, j)].re * self.scale)
    }

    /// The effective matrix realized by one sampled physical instance.
    pub fn realized_matrix<R: Rng + ?Sized>(
        &self,
        config: &MvmNoiseConfig,
        rng: &mut R,
    ) -> RMatrix {
        self.realize(config, rng).effective_matrix()
    }
}

/// One physical instance of an MVM core: frozen imperfect meshes plus
/// per-shot readout noise.
///
/// The instance's static hardware is fully summarized by one real
/// matrix — the input is real, so `y = Re(U·diag(a)·V)·x·scale + noise`.
/// That matrix is computed **once** here at realization time; every
/// multiply and every [`RealizedMvm::effective_matrix`] call reads the
/// cached copy instead of re-composing the U/Σ/V chain.
#[derive(Debug, Clone)]
pub struct RealizedMvm {
    attenuation: Vec<f64>,
    scale: f64,
    readout_sigma: f64,
    /// Cached `Re(U · diag(a) · V) · scale`, frozen at realization.
    effective: RMatrix,
}

impl RealizedMvm {
    fn new(
        mut u: CMatrix,
        v: CMatrix,
        attenuation: Vec<f64>,
        scale: f64,
        readout_sigma: f64,
    ) -> Self {
        let n = attenuation.len();
        scale_columns(&mut u, &attenuation);
        let m = u.mul_mat(&v);
        let effective = RMatrix::from_fn(n, n, |i, j| m[(i, j)].re * scale);
        RealizedMvm {
            attenuation,
            scale,
            readout_sigma,
            effective,
        }
    }

    /// Multiplies through the frozen imperfect hardware, adding fresh
    /// readout noise.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the core dimension.
    pub fn multiply_noisy<R: Rng + ?Sized>(&self, x: &[f64], rng: &mut R) -> Vec<f64> {
        let mut y = vec![0.0; self.attenuation.len()];
        self.multiply_noisy_into(x, &mut y, rng);
        y
    }

    /// Zero-allocation form of [`RealizedMvm::multiply_noisy`]: one real
    /// matrix-vector product against the cached effective matrix plus
    /// per-detector readout noise, written into `y`. A zero readout
    /// sigma adds exactly nothing, so the sampler is skipped outright —
    /// noiseless detectors cost no RNG draws.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` does not match the core dimension.
    pub fn multiply_noisy_into<R: Rng + ?Sized>(&self, x: &[f64], y: &mut [f64], rng: &mut R) {
        assert_eq!(x.len(), self.attenuation.len(), "dimension mismatch");
        self.effective.mul_vec_into(x, y);
        if self.readout_sigma != 0.0 {
            for yi in y.iter_mut() {
                *yi += self.readout_sigma * neuropulsim_linalg::random::gaussian(rng) * self.scale;
            }
        }
    }

    /// The effective real matrix implemented by this instance (real part
    /// of `U * diag(a) * V` times scale), cached at realization time.
    pub fn effective_matrix(&self) -> RMatrix {
        self.effective.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropulsim_linalg::metrics::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(n: usize, seed: u64) -> RMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        RMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn ideal_multiply_matches_digital() {
        for n in [2, 4, 8] {
            let m = random_matrix(n, n as u64);
            let core = MvmCore::new(&m);
            let mut rng = StdRng::seed_from_u64(77);
            for _ in 0..5 {
                let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let want = m.mul_vec(&x);
                let got = core.multiply(&x);
                assert!(mse(&want, &got) < 1e-16, "n={n}");
            }
        }
    }

    #[test]
    fn handles_negative_and_asymmetric_matrices() {
        let m = RMatrix::from_rows(3, 3, &[-2.0, 0.5, 0.0, 1.0, -1.0, 3.0, 0.0, 0.0, 0.1]);
        let core = MvmCore::new(&m);
        let y = core.multiply(&[1.0, -1.0, 0.5]);
        let want = m.mul_vec(&[1.0, -1.0, 0.5]);
        assert!(mse(&want, &y) < 1e-16);
    }

    #[test]
    fn zero_matrix_multiplies_to_zero() {
        let m = RMatrix::zeros(3, 3);
        let core = MvmCore::new(&m);
        let y = core.multiply(&[1.0, 2.0, 3.0]);
        assert!(y.iter().all(|v| v.abs() < 1e-12));
        assert_eq!(core.scale(), 0.0);
    }

    #[test]
    fn attenuators_are_physical() {
        let m = random_matrix(6, 3);
        let core = MvmCore::new(&m);
        for &a in core.attenuation() {
            assert!((0.0..=1.0 + 1e-12).contains(&a), "attenuation {a}");
        }
        assert!((core.attenuation()[0] - 1.0).abs() < 1e-9, "largest = 1");
    }

    #[test]
    fn block_count_is_two_meshes() {
        let core = MvmCore::new(&random_matrix(6, 5));
        assert_eq!(core.block_count(), 2 * (6 * 5 / 2));
    }

    #[test]
    fn noisy_multiply_approaches_ideal_as_noise_vanishes() {
        let m = random_matrix(4, 7);
        let core = MvmCore::new(&m);
        let x = [0.3, -0.4, 0.9, 0.1];
        let mut rng = StdRng::seed_from_u64(5);
        let got = core.multiply_noisy(&x, &MvmNoiseConfig::ideal(), &mut rng);
        let want = core.multiply(&x);
        assert!(mse(&want, &got) < 1e-16);
    }

    #[test]
    fn readout_noise_perturbs_output() {
        let m = random_matrix(4, 9);
        let core = MvmCore::new(&m);
        let x = [1.0, 0.0, 0.0, 0.0];
        let config = MvmNoiseConfig {
            readout_sigma: 0.01,
            ..MvmNoiseConfig::ideal()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let a = core.multiply_noisy(&x, &config, &mut rng);
        let b = core.multiply_noisy(&x, &config, &mut rng);
        assert!(mse(&a, &b) > 0.0, "independent shots must differ");
        // But error stays bounded: noise scaled by core scale.
        let want = core.multiply(&x);
        assert!(mse(&want, &a).sqrt() < 0.1 * core.scale().max(1.0));
    }

    #[test]
    fn dispersed_matrix_at_design_wavelength_is_target() {
        let m = random_matrix(4, 21);
        let core = MvmCore::new(&m);
        assert!(core.dispersed_matrix(1.0).approx_eq(&m, 1e-9));
        let detuned = core.dispersed_matrix(0.999);
        assert!(!detuned.approx_eq(&m, 1e-6), "detuning must perturb");
        // Error grows with detuning.
        let e1 = (&core.dispersed_matrix(0.999) - &m).frobenius_norm();
        let e2 = (&core.dispersed_matrix(0.995) - &m).frobenius_norm();
        assert!(e2 > e1);
    }

    #[test]
    fn effective_matrix_of_ideal_instance_is_target() {
        let m = random_matrix(5, 11);
        let core = MvmCore::new(&m);
        let mut rng = StdRng::seed_from_u64(2);
        let eff = core.realized_matrix(&MvmNoiseConfig::ideal(), &mut rng);
        assert!(eff.approx_eq(&m, 1e-9));
    }

    #[test]
    fn frozen_instance_is_deterministic_without_readout_noise() {
        let m = random_matrix(4, 13);
        let core = MvmCore::new(&m);
        let config = MvmNoiseConfig {
            hardware: HardwareModel {
                phase_noise_sigma: 0.05,
                ..HardwareModel::ideal()
            },
            ..MvmNoiseConfig::ideal()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let inst = core.realize(&config, &mut rng);
        let x = [0.5, 0.5, -0.5, 0.25];
        let a = inst.multiply_noisy(&x, &mut rng);
        let b = inst.multiply_noisy(&x, &mut rng);
        assert!(mse(&a, &b) < 1e-18, "same instance, no readout noise");
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        let _ = MvmCore::new(&RMatrix::zeros(2, 3));
    }
}

//! Mesh programs: an ordered list of programmable 2×2 MZI blocks plus an
//! output phase screen — the "software" loaded onto an interferometer mesh.

use neuropulsim_linalg::{CMatrix, CVector, C64};
use neuropulsim_photonics::mzi::Mzi;

/// One programmable MZI acting on adjacent modes `(mode, mode + 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MziBlock {
    /// Top mode index; the block couples `mode` and `mode + 1`.
    pub mode: usize,
    /// Internal phase \[rad\] (sets the splitting ratio).
    pub theta: f64,
    /// External phase \[rad\] (on the top input arm).
    pub phi: f64,
}

impl MziBlock {
    /// Creates a block.
    pub fn new(mode: usize, theta: f64, phi: f64) -> Self {
        MziBlock { mode, theta, phi }
    }

    /// The ideal 2×2 transfer-matrix elements of this block.
    pub fn elements(&self) -> (C64, C64, C64, C64) {
        Mzi::new(self.theta, self.phi).elements()
    }
}

/// A fully programmed rectangular mesh: blocks applied in order (first
/// block acts on the input first), then a final column of output phase
/// shifters.
///
/// The ideal transfer matrix is
/// `U = diag(e^{i * output_phases}) * B_k * ... * B_2 * B_1`.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::program::{MeshProgram, MziBlock};
///
/// // A single cross-state MZI on a 2-mode mesh swaps the inputs
/// // (up to phase).
/// let program = MeshProgram::new(2, vec![MziBlock::new(0, 0.0, 0.0)], vec![0.0; 2]);
/// let u = program.transfer_matrix();
/// assert!(u.is_unitary(1e-12));
/// assert!(u[(0, 0)].abs() < 1e-12);
/// assert!((u[(0, 1)].abs() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeshProgram {
    n: usize,
    blocks: Vec<MziBlock>,
    output_phases: Vec<f64>,
}

impl MeshProgram {
    /// Creates a program over `n` modes.
    ///
    /// # Panics
    ///
    /// Panics if any block's modes fall outside the mesh, or if
    /// `output_phases.len() != n`.
    pub fn new(n: usize, blocks: Vec<MziBlock>, output_phases: Vec<f64>) -> Self {
        assert_eq!(output_phases.len(), n, "need one output phase per mode");
        for b in &blocks {
            assert!(
                b.mode + 1 < n,
                "block on modes ({}, {}) exceeds mesh of {} modes",
                b.mode,
                b.mode + 1,
                n
            );
        }
        MeshProgram {
            n,
            blocks,
            output_phases,
        }
    }

    /// The identity program (no blocks, zero phases).
    pub fn identity(n: usize) -> Self {
        MeshProgram {
            n,
            blocks: Vec::new(),
            output_phases: vec![0.0; n],
        }
    }

    /// Number of optical modes.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// The MZI blocks in application order.
    pub fn blocks(&self) -> &[MziBlock] {
        &self.blocks
    }

    /// Mutable access to the blocks (used by error-injection experiments).
    pub fn blocks_mut(&mut self) -> &mut [MziBlock] {
        &mut self.blocks
    }

    /// The output phase screen \[rad\].
    pub fn output_phases(&self) -> &[f64] {
        &self.output_phases
    }

    /// Mutable access to the output phase screen.
    pub fn output_phases_mut(&mut self) -> &mut [f64] {
        &mut self.output_phases
    }

    /// Number of MZI blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of mesh layers (columns) when blocks are packed greedily:
    /// two blocks share a layer iff their mode pairs don't overlap and
    /// order allows it. This is the optical depth of the circuit.
    pub fn depth(&self) -> usize {
        // Greedy ASAP scheduling: layer[b] = 1 + max(layer of conflicting
        // earlier block).
        let mut mode_free_at = vec![0usize; self.n];
        let mut depth = 0;
        for b in &self.blocks {
            let layer = mode_free_at[b.mode].max(mode_free_at[b.mode + 1]);
            mode_free_at[b.mode] = layer + 1;
            mode_free_at[b.mode + 1] = layer + 1;
            depth = depth.max(layer + 1);
        }
        depth
    }

    /// Returns a copy with every programmed phase multiplied by `factor`
    /// — the first-order effect of operating the mesh at a wavelength
    /// detuned from the design wavelength (phase ∝ 1/λ), used by the WDM
    /// dispersion model.
    pub fn with_scaled_phases(&self, factor: f64) -> MeshProgram {
        let blocks = self
            .blocks
            .iter()
            .map(|b| MziBlock::new(b.mode, b.theta * factor, b.phi * factor))
            .collect();
        let output_phases = self.output_phases.iter().map(|p| p * factor).collect();
        MeshProgram {
            n: self.n,
            blocks,
            output_phases,
        }
    }

    /// The ideal (lossless, perfect-coupler) transfer matrix.
    pub fn transfer_matrix(&self) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for b in &self.blocks {
            let (a, bb, c, d) = b.elements();
            u.apply_left_2x2(b.mode, b.mode + 1, a, bb, c, d);
        }
        for (i, &p) in self.output_phases.iter().enumerate() {
            let phase = C64::cis(p);
            for j in 0..self.n {
                u[(i, j)] *= phase;
            }
        }
        u
    }

    /// Applies the ideal mesh to an input field vector (O(blocks) instead
    /// of building the full matrix).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != modes()`.
    pub fn apply(&self, input: &CVector) -> CVector {
        assert_eq!(input.len(), self.n, "apply: dimension mismatch");
        let mut v = input.clone();
        for b in &self.blocks {
            let (a, bb, c, d) = b.elements();
            let (p, q) = (b.mode, b.mode + 1);
            let xp = v[p];
            let xq = v[q];
            v[p] = a * xp + bb * xq;
            v[q] = c * xp + d * xq;
        }
        for (i, &ph) in self.output_phases.iter().enumerate() {
            v[i] *= C64::cis(ph);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn identity_program_is_identity() {
        let p = MeshProgram::identity(4);
        assert!(p.transfer_matrix().approx_eq(&CMatrix::identity(4), 1e-12));
        assert_eq!(p.depth(), 0);
        assert_eq!(p.block_count(), 0);
    }

    #[test]
    fn apply_matches_transfer_matrix() {
        let p = MeshProgram::new(
            3,
            vec![
                MziBlock::new(0, 1.1, 0.3),
                MziBlock::new(1, 2.0, 0.7),
                MziBlock::new(0, 0.4, 1.9),
            ],
            vec![0.1, 0.2, 0.3],
        );
        let u = p.transfer_matrix();
        let x = CVector::from_reals(&[0.3, -0.5, 0.8]);
        let via_matrix = u.mul_vec(&x);
        let via_apply = p.apply(&x);
        assert!(via_matrix.distance(&via_apply) < 1e-12);
    }

    #[test]
    fn programs_are_unitary() {
        let p = MeshProgram::new(
            4,
            vec![
                MziBlock::new(0, 0.5, 0.1),
                MziBlock::new(2, 1.5, 2.1),
                MziBlock::new(1, PI, 0.0),
            ],
            vec![0.0, 0.5, 1.0, 1.5],
        );
        assert!(p.transfer_matrix().is_unitary(1e-12));
    }

    #[test]
    fn depth_packs_parallel_blocks() {
        // Blocks on (0,1) and (2,3) fit in one layer; a following (1,2)
        // block needs a second layer.
        let p = MeshProgram::new(
            4,
            vec![
                MziBlock::new(0, 0.1, 0.0),
                MziBlock::new(2, 0.2, 0.0),
                MziBlock::new(1, 0.3, 0.0),
            ],
            vec![0.0; 4],
        );
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn scaled_phases_identity_at_factor_one() {
        let p = MeshProgram::new(
            3,
            vec![MziBlock::new(0, 1.1, 0.3), MziBlock::new(1, 2.0, 0.7)],
            vec![0.1, 0.2, 0.3],
        );
        assert_eq!(p.with_scaled_phases(1.0), p);
        let q = p.with_scaled_phases(0.99);
        assert!(q.transfer_matrix().is_unitary(1e-12));
        assert!(!q.transfer_matrix().approx_eq(&p.transfer_matrix(), 1e-6));
    }

    #[test]
    fn output_phase_screen_applied_last() {
        let p = MeshProgram::new(2, vec![], vec![PI, 0.0]);
        let u = p.transfer_matrix();
        assert!(u[(0, 0)].approx_eq(C64::real(-1.0), 1e-12));
        assert!(u[(1, 1)].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    #[should_panic(expected = "exceeds mesh")]
    fn rejects_out_of_range_block() {
        let _ = MeshProgram::new(2, vec![MziBlock::new(1, 0.0, 0.0)], vec![0.0; 2]);
    }

    #[test]
    #[should_panic(expected = "one output phase per mode")]
    fn rejects_wrong_phase_count() {
        let _ = MeshProgram::new(3, vec![], vec![0.0; 2]);
    }
}

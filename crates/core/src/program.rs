//! Mesh programs: an ordered list of programmable 2×2 MZI blocks plus an
//! output phase screen — the "software" loaded onto an interferometer mesh.

use neuropulsim_linalg::{CMatrix, CVector, C64};
use neuropulsim_photonics::mzi::Mzi;

/// One programmable MZI acting on adjacent modes `(mode, mode + 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MziBlock {
    /// Top mode index; the block couples `mode` and `mode + 1`.
    pub mode: usize,
    /// Internal phase \[rad\] (sets the splitting ratio).
    pub theta: f64,
    /// External phase \[rad\] (on the top input arm).
    pub phi: f64,
}

impl MziBlock {
    /// Creates a block.
    pub fn new(mode: usize, theta: f64, phi: f64) -> Self {
        MziBlock { mode, theta, phi }
    }

    /// The ideal 2×2 transfer-matrix elements of this block.
    pub fn elements(&self) -> (C64, C64, C64, C64) {
        Mzi::new(self.theta, self.phi).elements()
    }
}

/// A fully programmed rectangular mesh: blocks applied in order (first
/// block acts on the input first), then a final column of output phase
/// shifters.
///
/// The ideal transfer matrix is
/// `U = diag(e^{i * output_phases}) * B_k * ... * B_2 * B_1`.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::program::{MeshProgram, MziBlock};
///
/// // A single cross-state MZI on a 2-mode mesh swaps the inputs
/// // (up to phase).
/// let program = MeshProgram::new(2, vec![MziBlock::new(0, 0.0, 0.0)], vec![0.0; 2]);
/// let u = program.transfer_matrix();
/// assert!(u.is_unitary(1e-12));
/// assert!(u[(0, 0)].abs() < 1e-12);
/// assert!((u[(0, 1)].abs() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeshProgram {
    n: usize,
    blocks: Vec<MziBlock>,
    output_phases: Vec<f64>,
}

impl MeshProgram {
    /// Creates a program over `n` modes.
    ///
    /// # Panics
    ///
    /// Panics if any block's modes fall outside the mesh, or if
    /// `output_phases.len() != n`.
    pub fn new(n: usize, blocks: Vec<MziBlock>, output_phases: Vec<f64>) -> Self {
        assert_eq!(output_phases.len(), n, "need one output phase per mode");
        for b in &blocks {
            assert!(
                b.mode + 1 < n,
                "block on modes ({}, {}) exceeds mesh of {} modes",
                b.mode,
                b.mode + 1,
                n
            );
        }
        MeshProgram {
            n,
            blocks,
            output_phases,
        }
    }

    /// The identity program (no blocks, zero phases).
    pub fn identity(n: usize) -> Self {
        MeshProgram {
            n,
            blocks: Vec::new(),
            output_phases: vec![0.0; n],
        }
    }

    /// Number of optical modes.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// The MZI blocks in application order.
    pub fn blocks(&self) -> &[MziBlock] {
        &self.blocks
    }

    /// Mutable access to the blocks (used by error-injection experiments).
    pub fn blocks_mut(&mut self) -> &mut [MziBlock] {
        &mut self.blocks
    }

    /// The output phase screen \[rad\].
    pub fn output_phases(&self) -> &[f64] {
        &self.output_phases
    }

    /// Mutable access to the output phase screen.
    pub fn output_phases_mut(&mut self) -> &mut [f64] {
        &mut self.output_phases
    }

    /// Number of MZI blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of mesh layers (columns) when blocks are packed greedily:
    /// two blocks share a layer iff their mode pairs don't overlap and
    /// order allows it. This is the optical depth of the circuit.
    pub fn depth(&self) -> usize {
        // Greedy ASAP scheduling: layer[b] = 1 + max(layer of conflicting
        // earlier block).
        let mut mode_free_at = vec![0usize; self.n];
        let mut depth = 0;
        for b in &self.blocks {
            let layer = mode_free_at[b.mode].max(mode_free_at[b.mode + 1]);
            mode_free_at[b.mode] = layer + 1;
            mode_free_at[b.mode + 1] = layer + 1;
            depth = depth.max(layer + 1);
        }
        depth
    }

    /// Returns a copy with every programmed phase multiplied by `factor`
    /// — the first-order effect of operating the mesh at a wavelength
    /// detuned from the design wavelength (phase ∝ 1/λ), used by the WDM
    /// dispersion model.
    pub fn with_scaled_phases(&self, factor: f64) -> MeshProgram {
        let blocks = self
            .blocks
            .iter()
            .map(|b| MziBlock::new(b.mode, b.theta * factor, b.phi * factor))
            .collect();
        let output_phases = self.output_phases.iter().map(|p| p * factor).collect();
        MeshProgram {
            n: self.n,
            blocks,
            output_phases,
        }
    }

    /// The ideal (lossless, perfect-coupler) transfer matrix.
    pub fn transfer_matrix(&self) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for b in &self.blocks {
            let (a, bb, c, d) = b.elements();
            u.apply_left_2x2(b.mode, b.mode + 1, a, bb, c, d);
        }
        for (i, &p) in self.output_phases.iter().enumerate() {
            let phase = C64::cis(p);
            for j in 0..self.n {
                u[(i, j)] *= phase;
            }
        }
        u
    }

    /// Applies the ideal mesh to an input field vector (O(blocks) instead
    /// of building the full matrix).
    ///
    /// Recomputes each block's trigonometry per call; hot loops that
    /// apply the same program many times should [`MeshProgram::compile`]
    /// once and use [`CompiledMesh::apply_in_place`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != modes()`.
    pub fn apply(&self, input: &CVector) -> CVector {
        assert_eq!(input.len(), self.n, "apply: dimension mismatch");
        let mut v = input.clone();
        for b in &self.blocks {
            let (a, bb, c, d) = b.elements();
            let (p, q) = (b.mode, b.mode + 1);
            let xp = v[p];
            let xq = v[q];
            v[p] = a * xp + bb * xq;
            v[q] = c * xp + d * xq;
        }
        for (i, &ph) in self.output_phases.iter().enumerate() {
            v[i] *= C64::cis(ph);
        }
        v
    }

    /// Compiles the program into an execution plan with all per-block
    /// trigonometry evaluated up front.
    pub fn compile(&self) -> CompiledMesh {
        CompiledMesh::new(self)
    }
}

/// One precomputed MZI stage: top mode index plus the four complex
/// transfer-matrix elements.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CompiledStage {
    mode: usize,
    a: C64,
    b: C64,
    c: C64,
    d: C64,
}

/// An execution plan for a [`MeshProgram`]: every block's 2×2 elements
/// and every output phasor evaluated once at compile time, leaving the
/// per-application work as pure complex multiply-adds on a caller buffer.
///
/// Applying a compiled mesh costs O(blocks) with **zero** allocations
/// and **zero** trigonometric calls — [`MeshProgram::apply`] pays a
/// clone plus `sin`/`cos`/`cis` per block per call. The plan is a
/// snapshot: recompile after mutating the program's phases.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::program::{MeshProgram, MziBlock};
///
/// let program = MeshProgram::new(2, vec![MziBlock::new(0, 0.3, 1.2)], vec![0.0; 2]);
/// let plan = program.compile();
/// let x = neuropulsim_linalg::CVector::from_reals(&[1.0, 0.5]);
/// let mut buf = x.clone();
/// plan.apply_in_place(buf.as_mut_slice());
/// assert!(buf.distance(&program.apply(&x)) < 1e-14);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledMesh {
    n: usize,
    stages: Vec<CompiledStage>,
    output_phasors: Vec<C64>,
}

impl CompiledMesh {
    fn new(program: &MeshProgram) -> Self {
        let stages = program
            .blocks
            .iter()
            .map(|blk| {
                let (a, b, c, d) = blk.elements();
                CompiledStage {
                    mode: blk.mode,
                    a,
                    b,
                    c,
                    d,
                }
            })
            .collect();
        let output_phasors = program.output_phases.iter().map(|&p| C64::cis(p)).collect();
        CompiledMesh {
            n: program.n,
            stages,
            output_phasors,
        }
    }

    /// Number of optical modes.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// Number of precomputed MZI stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Applies the mesh to a field vector in place.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != modes()`.
    pub fn apply_in_place(&self, v: &mut [C64]) {
        assert_eq!(v.len(), self.n, "apply_in_place: dimension mismatch");
        for s in &self.stages {
            let xp = v[s.mode];
            let xq = v[s.mode + 1];
            v[s.mode] = s.a * xp + s.b * xq;
            v[s.mode + 1] = s.c * xp + s.d * xq;
        }
        for (x, &ph) in v.iter_mut().zip(&self.output_phasors) {
            *x *= ph;
        }
    }

    /// Copies `input` into `out` and applies the mesh there.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != modes()` or `out.len() != modes()`.
    pub fn apply_into(&self, input: &CVector, out: &mut CVector) {
        assert_eq!(out.len(), self.n, "apply_into: bad output length");
        out.as_mut_slice().copy_from_slice(input.as_slice());
        self.apply_in_place(out.as_mut_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn identity_program_is_identity() {
        let p = MeshProgram::identity(4);
        assert!(p.transfer_matrix().approx_eq(&CMatrix::identity(4), 1e-12));
        assert_eq!(p.depth(), 0);
        assert_eq!(p.block_count(), 0);
    }

    #[test]
    fn apply_matches_transfer_matrix() {
        let p = MeshProgram::new(
            3,
            vec![
                MziBlock::new(0, 1.1, 0.3),
                MziBlock::new(1, 2.0, 0.7),
                MziBlock::new(0, 0.4, 1.9),
            ],
            vec![0.1, 0.2, 0.3],
        );
        let u = p.transfer_matrix();
        let x = CVector::from_reals(&[0.3, -0.5, 0.8]);
        let via_matrix = u.mul_vec(&x);
        let via_apply = p.apply(&x);
        assert!(via_matrix.distance(&via_apply) < 1e-12);
    }

    #[test]
    fn compiled_mesh_matches_apply_and_matrix() {
        let p = MeshProgram::new(
            4,
            vec![
                MziBlock::new(0, 1.1, 0.3),
                MziBlock::new(2, 2.0, 0.7),
                MziBlock::new(1, 0.4, 1.9),
            ],
            vec![0.1, 0.2, 0.3, 0.4],
        );
        let plan = p.compile();
        assert_eq!(plan.modes(), 4);
        assert_eq!(plan.stage_count(), 3);
        let x = CVector::from_reals(&[0.3, -0.5, 0.8, 0.1]);
        let mut buf = CVector::zeros(4);
        plan.apply_into(&x, &mut buf);
        assert!(buf.distance(&p.apply(&x)) < 1e-14);
        assert!(buf.distance(&p.transfer_matrix().mul_vec(&x)) < 1e-12);
    }

    #[test]
    fn programs_are_unitary() {
        let p = MeshProgram::new(
            4,
            vec![
                MziBlock::new(0, 0.5, 0.1),
                MziBlock::new(2, 1.5, 2.1),
                MziBlock::new(1, PI, 0.0),
            ],
            vec![0.0, 0.5, 1.0, 1.5],
        );
        assert!(p.transfer_matrix().is_unitary(1e-12));
    }

    #[test]
    fn depth_packs_parallel_blocks() {
        // Blocks on (0,1) and (2,3) fit in one layer; a following (1,2)
        // block needs a second layer.
        let p = MeshProgram::new(
            4,
            vec![
                MziBlock::new(0, 0.1, 0.0),
                MziBlock::new(2, 0.2, 0.0),
                MziBlock::new(1, 0.3, 0.0),
            ],
            vec![0.0; 4],
        );
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn scaled_phases_identity_at_factor_one() {
        let p = MeshProgram::new(
            3,
            vec![MziBlock::new(0, 1.1, 0.3), MziBlock::new(1, 2.0, 0.7)],
            vec![0.1, 0.2, 0.3],
        );
        assert_eq!(p.with_scaled_phases(1.0), p);
        let q = p.with_scaled_phases(0.99);
        assert!(q.transfer_matrix().is_unitary(1e-12));
        assert!(!q.transfer_matrix().approx_eq(&p.transfer_matrix(), 1e-6));
    }

    #[test]
    fn output_phase_screen_applied_last() {
        let p = MeshProgram::new(2, vec![], vec![PI, 0.0]);
        let u = p.transfer_matrix();
        assert!(u[(0, 0)].approx_eq(C64::real(-1.0), 1e-12));
        assert!(u[(1, 1)].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    #[should_panic(expected = "exceeds mesh")]
    fn rejects_out_of_range_block() {
        let _ = MeshProgram::new(2, vec![MziBlock::new(1, 0.0, 0.0)], vec![0.0; 2]);
    }

    #[test]
    #[should_panic(expected = "one output phase per mode")]
    fn rejects_wrong_phase_count() {
        let _ = MeshProgram::new(3, vec![], vec![0.0; 2]);
    }
}

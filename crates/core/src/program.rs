//! Mesh programs: an ordered list of programmable 2×2 MZI blocks plus an
//! output phase screen — the "software" loaded onto an interferometer mesh.

use neuropulsim_linalg::soa::{self, CellColumn, SplitVector};
use neuropulsim_linalg::{CMatrix, CVector, C64};
use neuropulsim_photonics::mzi::{CompactCell, Mzi};

/// One programmable MZI acting on adjacent modes `(mode, mode + 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MziBlock {
    /// Top mode index; the block couples `mode` and `mode + 1`.
    pub mode: usize,
    /// Internal phase \[rad\] (sets the splitting ratio).
    pub theta: f64,
    /// External phase \[rad\] (on the top input arm).
    pub phi: f64,
}

impl MziBlock {
    /// Creates a block.
    pub fn new(mode: usize, theta: f64, phi: f64) -> Self {
        MziBlock { mode, theta, phi }
    }

    /// The ideal 2×2 transfer-matrix elements of this block.
    pub fn elements(&self) -> (C64, C64, C64, C64) {
        Mzi::new(self.theta, self.phi).elements()
    }

    /// The 2×2 elements when the block is realized as a compacted
    /// (Bell–Walmsley) cell — the same matrix evaluated through the
    /// closed form instead of the coupler composition.
    pub fn compact_elements(&self) -> (C64, C64, C64, C64) {
        CompactCell::new(self.theta, self.phi).elements()
    }
}

/// A fully programmed rectangular mesh: blocks applied in order (first
/// block acts on the input first), then a final column of output phase
/// shifters.
///
/// The ideal transfer matrix is
/// `U = diag(e^{i * output_phases}) * B_k * ... * B_2 * B_1`.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::program::{MeshProgram, MziBlock};
///
/// // A single cross-state MZI on a 2-mode mesh swaps the inputs
/// // (up to phase).
/// let program = MeshProgram::new(2, vec![MziBlock::new(0, 0.0, 0.0)], vec![0.0; 2]);
/// let u = program.transfer_matrix();
/// assert!(u.is_unitary(1e-12));
/// assert!(u[(0, 0)].abs() < 1e-12);
/// assert!((u[(0, 1)].abs() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeshProgram {
    n: usize,
    blocks: Vec<MziBlock>,
    output_phases: Vec<f64>,
}

impl MeshProgram {
    /// Creates a program over `n` modes.
    ///
    /// # Panics
    ///
    /// Panics if any block's modes fall outside the mesh, or if
    /// `output_phases.len() != n`.
    pub fn new(n: usize, blocks: Vec<MziBlock>, output_phases: Vec<f64>) -> Self {
        assert_eq!(output_phases.len(), n, "need one output phase per mode");
        for b in &blocks {
            assert!(
                b.mode + 1 < n,
                "block on modes ({}, {}) exceeds mesh of {} modes",
                b.mode,
                b.mode + 1,
                n
            );
        }
        MeshProgram {
            n,
            blocks,
            output_phases,
        }
    }

    /// The identity program (no blocks, zero phases).
    pub fn identity(n: usize) -> Self {
        MeshProgram {
            n,
            blocks: Vec::new(),
            output_phases: vec![0.0; n],
        }
    }

    /// Number of optical modes.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// The MZI blocks in application order.
    pub fn blocks(&self) -> &[MziBlock] {
        &self.blocks
    }

    /// Mutable access to the blocks (used by error-injection experiments).
    pub fn blocks_mut(&mut self) -> &mut [MziBlock] {
        &mut self.blocks
    }

    /// The output phase screen \[rad\].
    pub fn output_phases(&self) -> &[f64] {
        &self.output_phases
    }

    /// Mutable access to the output phase screen.
    pub fn output_phases_mut(&mut self) -> &mut [f64] {
        &mut self.output_phases
    }

    /// Number of MZI blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of mesh layers (columns) when blocks are packed greedily:
    /// two blocks share a layer iff their mode pairs don't overlap and
    /// order allows it. This is the optical depth of the circuit.
    pub fn depth(&self) -> usize {
        // Greedy ASAP scheduling: layer[b] = 1 + max(layer of conflicting
        // earlier block).
        let mut mode_free_at = vec![0usize; self.n];
        let mut depth = 0;
        for b in &self.blocks {
            let layer = mode_free_at[b.mode].max(mode_free_at[b.mode + 1]);
            mode_free_at[b.mode] = layer + 1;
            mode_free_at[b.mode + 1] = layer + 1;
            depth = depth.max(layer + 1);
        }
        depth
    }

    /// Returns a copy with every programmed phase multiplied by `factor`
    /// — the first-order effect of operating the mesh at a wavelength
    /// detuned from the design wavelength (phase ∝ 1/λ), used by the WDM
    /// dispersion model.
    pub fn with_scaled_phases(&self, factor: f64) -> MeshProgram {
        let blocks = self
            .blocks
            .iter()
            .map(|b| MziBlock::new(b.mode, b.theta * factor, b.phi * factor))
            .collect();
        let output_phases = self.output_phases.iter().map(|p| p * factor).collect();
        MeshProgram {
            n: self.n,
            blocks,
            output_phases,
        }
    }

    /// The ideal (lossless, perfect-coupler) transfer matrix.
    pub fn transfer_matrix(&self) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for b in &self.blocks {
            let (a, bb, c, d) = b.elements();
            u.apply_left_2x2(b.mode, b.mode + 1, a, bb, c, d);
        }
        for (i, &p) in self.output_phases.iter().enumerate() {
            let phase = C64::cis(p);
            for j in 0..self.n {
                u[(i, j)] *= phase;
            }
        }
        u
    }

    /// Applies the ideal mesh to an input field vector (O(blocks) instead
    /// of building the full matrix).
    ///
    /// Recomputes each block's trigonometry per call; hot loops that
    /// apply the same program many times should [`MeshProgram::compile`]
    /// once and use [`CompiledMesh::apply_in_place`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != modes()`.
    pub fn apply(&self, input: &CVector) -> CVector {
        assert_eq!(input.len(), self.n, "apply: dimension mismatch");
        let mut v = input.clone();
        for b in &self.blocks {
            let (a, bb, c, d) = b.elements();
            let (p, q) = (b.mode, b.mode + 1);
            let xp = v[p];
            let xq = v[q];
            v[p] = a * xp + bb * xq;
            v[q] = c * xp + d * xq;
        }
        for (i, &ph) in self.output_phases.iter().enumerate() {
            v[i] *= C64::cis(ph);
        }
        v
    }

    /// The ideal transfer matrix when realized with compacted
    /// (Bell–Walmsley) cells. Mathematically identical to
    /// [`MeshProgram::transfer_matrix`]; numerically a different
    /// evaluation path (closed form per cell).
    pub fn transfer_matrix_compact(&self) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for b in &self.blocks {
            let (a, bb, c, d) = b.compact_elements();
            u.apply_left_2x2(b.mode, b.mode + 1, a, bb, c, d);
        }
        for (i, &p) in self.output_phases.iter().enumerate() {
            let phase = C64::cis(p);
            for j in 0..self.n {
                u[(i, j)] *= phase;
            }
        }
        u
    }

    /// Compiles the program into an execution plan with all per-block
    /// trigonometry evaluated up front.
    pub fn compile(&self) -> CompiledMesh {
        CompiledMesh::new(self)
    }

    /// Compiles the program as realized with compacted (Bell–Walmsley)
    /// cells. Same plan structure and apply paths as
    /// [`MeshProgram::compile`], with each stage's elements evaluated
    /// through [`MziBlock::compact_elements`].
    pub fn compile_compact(&self) -> CompiledMesh {
        CompiledMesh::build(self, |blk| blk.compact_elements())
    }
}

/// One precomputed MZI stage: top mode index plus the four complex
/// transfer-matrix elements.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CompiledStage {
    mode: usize,
    a: C64,
    b: C64,
    c: C64,
    d: C64,
}

/// An execution plan for a [`MeshProgram`]: every block's 2×2 elements
/// and every output phasor evaluated once at compile time, leaving the
/// per-application work as pure complex multiply-adds on a caller buffer.
///
/// Applying a compiled mesh costs O(blocks) with **zero** allocations
/// and **zero** trigonometric calls — [`MeshProgram::apply`] pays a
/// clone plus `sin`/`cos`/`cis` per block per call. The plan is a
/// snapshot: recompile after mutating the program's phases.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::program::{MeshProgram, MziBlock};
///
/// let program = MeshProgram::new(2, vec![MziBlock::new(0, 0.3, 1.2)], vec![0.0; 2]);
/// let plan = program.compile();
/// let x = neuropulsim_linalg::CVector::from_reals(&[1.0, 0.5]);
/// let mut buf = x.clone();
/// plan.apply_in_place(buf.as_mut_slice());
/// assert!(buf.distance(&program.apply(&x)) < 1e-14);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledMesh {
    n: usize,
    stages: Vec<CompiledStage>,
    output_phasors: Vec<C64>,
    /// The same stages re-packed into independent layers (greedy ASAP,
    /// as [`MeshProgram::depth`]) for the blocked SoA apply path.
    layers: Vec<CellColumn>,
    out_re: Vec<f64>,
    out_im: Vec<f64>,
}

impl CompiledMesh {
    fn new(program: &MeshProgram) -> Self {
        Self::build(program, |blk| blk.elements())
    }

    fn build(program: &MeshProgram, elements: impl Fn(&MziBlock) -> (C64, C64, C64, C64)) -> Self {
        let stages: Vec<CompiledStage> = program
            .blocks
            .iter()
            .map(|blk| {
                let (a, b, c, d) = elements(blk);
                CompiledStage {
                    mode: blk.mode,
                    a,
                    b,
                    c,
                    d,
                }
            })
            .collect();
        let output_phasors: Vec<C64> = program.output_phases.iter().map(|&p| C64::cis(p)).collect();

        // Pack stages into layers with the same greedy ASAP schedule as
        // `MeshProgram::depth`. A stage lands in a later layer than every
        // earlier stage it shares a mode with, so executing layer by
        // layer preserves each mode's per-stage operation order — and
        // stages inside one layer touch disjoint mode pairs, so sorting
        // them by mode changes no floating-point result.
        let mut mode_free_at = vec![0usize; program.n];
        let mut per_layer: Vec<Vec<&CompiledStage>> = Vec::new();
        for s in &stages {
            let layer = mode_free_at[s.mode].max(mode_free_at[s.mode + 1]);
            mode_free_at[s.mode] = layer + 1;
            mode_free_at[s.mode + 1] = layer + 1;
            if per_layer.len() <= layer {
                per_layer.resize_with(layer + 1, Vec::new);
            }
            per_layer[layer].push(s);
        }
        let layers = per_layer
            .into_iter()
            .map(|mut cells| {
                cells.sort_by_key(|s| s.mode);
                let mut col = CellColumn::new();
                for s in cells {
                    col.push(s.mode as u32, s.a, s.b, s.c, s.d);
                }
                col.finish();
                col
            })
            .collect();
        let (out_re, out_im): (Vec<f64>, Vec<f64>) =
            output_phasors.iter().map(|p| (p.re, p.im)).unzip();

        CompiledMesh {
            n: program.n,
            stages,
            output_phasors,
            layers,
            out_re,
            out_im,
        }
    }

    /// Number of optical modes.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// Number of precomputed MZI stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Applies the mesh to a field vector in place.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != modes()`.
    pub fn apply_in_place(&self, v: &mut [C64]) {
        assert_eq!(v.len(), self.n, "apply_in_place: dimension mismatch");
        for s in &self.stages {
            let xp = v[s.mode];
            let xq = v[s.mode + 1];
            v[s.mode] = s.a * xp + s.b * xq;
            v[s.mode + 1] = s.c * xp + s.d * xq;
        }
        for (x, &ph) in v.iter_mut().zip(&self.output_phasors) {
            *x *= ph;
        }
    }

    /// Copies `input` into `out` and applies the mesh there.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != modes()` or `out.len() != modes()`.
    pub fn apply_into(&self, input: &CVector, out: &mut CVector) {
        assert_eq!(out.len(), self.n, "apply_into: bad output length");
        out.as_mut_slice().copy_from_slice(input.as_slice());
        self.apply_in_place(out.as_mut_slice());
    }

    /// Number of independent cell layers in the blocked plan (the
    /// optical depth of the compiled circuit).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Applies the mesh in place through the blocked SoA path.
    ///
    /// Bit-identical to [`CompiledMesh::apply_in_place`]: the layer
    /// schedule only reorders stages that touch disjoint modes, and the
    /// lane arithmetic reproduces scalar `C64` operations exactly (see
    /// DESIGN.md §11). The win over the per-stage loop is layout — split
    /// re/im lanes with no interleaving and no store-to-load dependence
    /// between cells of a layer — which lets the compiler vectorize and
    /// the core overlap independent cells.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != modes()`.
    pub fn apply_blocked_in_place(&self, v: &mut [C64], scratch: &mut MeshScratch) {
        assert_eq!(
            v.len(),
            self.n,
            "apply_blocked_in_place: dimension mismatch"
        );
        scratch.lanes.pack_slice(v);
        let (re, im) = scratch.lanes.lanes_mut();
        for layer in &self.layers {
            layer.apply(re, im);
        }
        soa::apply_phasors(re, im, &self.out_re, &self.out_im);
        scratch.lanes.unpack_into(v);
    }

    /// Applies the mesh to a batch of vectors stored consecutively
    /// (`batch[j*n..(j+1)*n]` is vector `j`), each bit-identical to a
    /// single-vector [`CompiledMesh::apply_in_place`] on that column.
    ///
    /// This is the cache-blocked form: each layer's coefficients are
    /// read once per batch instead of once per vector, so at n=128 the
    /// ~0.5 MB stage stream is amortized over the whole batch and the
    /// kernel runs compute-bound. Use it to stream GeMM columns.
    ///
    /// # Panics
    ///
    /// Panics if `batch.len()` is not a non-zero multiple of `modes()`.
    pub fn apply_blocked_batch(&self, batch: &mut [C64], scratch: &mut MeshScratch) {
        assert!(
            !batch.is_empty() && batch.len().is_multiple_of(self.n),
            "apply_blocked_batch: batch must hold a whole number of vectors"
        );
        let width = batch.len() / self.n;
        soa::pack_columns(
            batch,
            self.n,
            width,
            &mut scratch.batch_re,
            &mut scratch.batch_im,
        );
        for layer in &self.layers {
            layer.apply_batch(&mut scratch.batch_re, &mut scratch.batch_im, width);
        }
        soa::apply_phasors_batch(
            &mut scratch.batch_re,
            &mut scratch.batch_im,
            &self.out_re,
            &self.out_im,
            width,
        );
        soa::unpack_columns(&scratch.batch_re, &scratch.batch_im, self.n, width, batch);
    }
}

/// Reusable lane buffers for the blocked apply paths; steady-state
/// callers allocate nothing per application.
#[derive(Debug, Clone, Default)]
pub struct MeshScratch {
    pub(crate) lanes: SplitVector,
    pub(crate) batch_re: Vec<f64>,
    pub(crate) batch_im: Vec<f64>,
}

impl MeshScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MeshScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn identity_program_is_identity() {
        let p = MeshProgram::identity(4);
        assert!(p.transfer_matrix().approx_eq(&CMatrix::identity(4), 1e-12));
        assert_eq!(p.depth(), 0);
        assert_eq!(p.block_count(), 0);
    }

    #[test]
    fn apply_matches_transfer_matrix() {
        let p = MeshProgram::new(
            3,
            vec![
                MziBlock::new(0, 1.1, 0.3),
                MziBlock::new(1, 2.0, 0.7),
                MziBlock::new(0, 0.4, 1.9),
            ],
            vec![0.1, 0.2, 0.3],
        );
        let u = p.transfer_matrix();
        let x = CVector::from_reals(&[0.3, -0.5, 0.8]);
        let via_matrix = u.mul_vec(&x);
        let via_apply = p.apply(&x);
        assert!(via_matrix.distance(&via_apply) < 1e-12);
    }

    #[test]
    fn compiled_mesh_matches_apply_and_matrix() {
        let p = MeshProgram::new(
            4,
            vec![
                MziBlock::new(0, 1.1, 0.3),
                MziBlock::new(2, 2.0, 0.7),
                MziBlock::new(1, 0.4, 1.9),
            ],
            vec![0.1, 0.2, 0.3, 0.4],
        );
        let plan = p.compile();
        assert_eq!(plan.modes(), 4);
        assert_eq!(plan.stage_count(), 3);
        let x = CVector::from_reals(&[0.3, -0.5, 0.8, 0.1]);
        let mut buf = CVector::zeros(4);
        plan.apply_into(&x, &mut buf);
        assert!(buf.distance(&p.apply(&x)) < 1e-14);
        assert!(buf.distance(&p.transfer_matrix().mul_vec(&x)) < 1e-12);
    }

    #[test]
    fn programs_are_unitary() {
        let p = MeshProgram::new(
            4,
            vec![
                MziBlock::new(0, 0.5, 0.1),
                MziBlock::new(2, 1.5, 2.1),
                MziBlock::new(1, PI, 0.0),
            ],
            vec![0.0, 0.5, 1.0, 1.5],
        );
        assert!(p.transfer_matrix().is_unitary(1e-12));
    }

    #[test]
    fn depth_packs_parallel_blocks() {
        // Blocks on (0,1) and (2,3) fit in one layer; a following (1,2)
        // block needs a second layer.
        let p = MeshProgram::new(
            4,
            vec![
                MziBlock::new(0, 0.1, 0.0),
                MziBlock::new(2, 0.2, 0.0),
                MziBlock::new(1, 0.3, 0.0),
            ],
            vec![0.0; 4],
        );
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn scaled_phases_identity_at_factor_one() {
        let p = MeshProgram::new(
            3,
            vec![MziBlock::new(0, 1.1, 0.3), MziBlock::new(1, 2.0, 0.7)],
            vec![0.1, 0.2, 0.3],
        );
        assert_eq!(p.with_scaled_phases(1.0), p);
        let q = p.with_scaled_phases(0.99);
        assert!(q.transfer_matrix().is_unitary(1e-12));
        assert!(!q.transfer_matrix().approx_eq(&p.transfer_matrix(), 1e-6));
    }

    #[test]
    fn output_phase_screen_applied_last() {
        let p = MeshProgram::new(2, vec![], vec![PI, 0.0]);
        let u = p.transfer_matrix();
        assert!(u[(0, 0)].approx_eq(C64::real(-1.0), 1e-12));
        assert!(u[(1, 1)].approx_eq(C64::ONE, 1e-12));
    }

    fn demo_vector(n: usize, salt: f64) -> Vec<C64> {
        (0..n)
            .map(|i| {
                C64::new(
                    (i as f64 * 0.61 + salt).sin(),
                    (i as f64 * 0.37 - salt).cos(),
                )
            })
            .collect()
    }

    fn demo_program(n: usize, salt: f64) -> MeshProgram {
        // A Clements-like brick pattern: alternating even/odd columns.
        let mut blocks = Vec::new();
        for layer in 0..n {
            let start = layer % 2;
            let mut m = start;
            while m + 1 < n {
                let t = salt + 0.13 * (layer * n + m) as f64;
                blocks.push(MziBlock::new(m, t.sin().abs() * PI, t.cos() * PI));
                m += 2;
            }
        }
        let phases = (0..n).map(|i| (salt + i as f64).sin() * PI).collect();
        MeshProgram::new(n, blocks, phases)
    }

    #[test]
    fn blocked_apply_is_bit_identical_to_per_stage_apply() {
        for n in [2usize, 3, 5, 8, 16] {
            let plan = demo_program(n, 0.42).compile();
            assert!(plan.layer_count() <= n + 1);
            let mut per_stage = demo_vector(n, 1.7);
            let mut blocked = per_stage.clone();
            plan.apply_in_place(&mut per_stage);
            let mut scratch = MeshScratch::new();
            plan.apply_blocked_in_place(&mut blocked, &mut scratch);
            for (b, s) in blocked.iter().zip(&per_stage) {
                assert_eq!(b.re.to_bits(), s.re.to_bits(), "re bits differ at n={n}");
                assert_eq!(b.im.to_bits(), s.im.to_bits(), "im bits differ at n={n}");
            }
        }
    }

    #[test]
    fn blocked_batch_is_bit_identical_per_column() {
        let n = 6;
        let plan = demo_program(n, -0.8).compile();
        let width = 5;
        let mut batch: Vec<C64> = (0..width).flat_map(|j| demo_vector(n, j as f64)).collect();
        let want: Vec<C64> = batch
            .chunks(n)
            .flat_map(|col| {
                let mut v = col.to_vec();
                plan.apply_in_place(&mut v);
                v
            })
            .collect();
        let mut scratch = MeshScratch::new();
        plan.apply_blocked_batch(&mut batch, &mut scratch);
        for (g, w) in batch.iter().zip(&want) {
            assert_eq!(g.re.to_bits(), w.re.to_bits());
            assert_eq!(g.im.to_bits(), w.im.to_bits());
        }
    }

    #[test]
    fn scratch_reuse_across_sizes_is_safe() {
        let mut scratch = MeshScratch::new();
        for n in [8usize, 3, 12] {
            let plan = demo_program(n, 0.1).compile();
            let mut a = demo_vector(n, 0.2);
            let mut b = a.clone();
            plan.apply_in_place(&mut a);
            plan.apply_blocked_in_place(&mut b, &mut scratch);
            assert_eq!(a, b);
            let mut batch: Vec<C64> = (0..3).flat_map(|j| demo_vector(n, j as f64)).collect();
            let want: Vec<C64> = batch
                .chunks(n)
                .flat_map(|col| {
                    let mut v = col.to_vec();
                    plan.apply_in_place(&mut v);
                    v
                })
                .collect();
            plan.apply_blocked_batch(&mut batch, &mut scratch);
            assert_eq!(batch, want);
        }
    }

    #[test]
    #[should_panic(expected = "whole number of vectors")]
    fn blocked_batch_rejects_ragged_input() {
        let plan = demo_program(4, 0.0).compile();
        let mut batch = demo_vector(6, 0.0);
        plan.apply_blocked_batch(&mut batch, &mut MeshScratch::new());
    }

    #[test]
    #[should_panic(expected = "exceeds mesh")]
    fn rejects_out_of_range_block() {
        let _ = MeshProgram::new(2, vec![MziBlock::new(1, 0.0, 0.0)], vec![0.0; 2]);
    }

    #[test]
    #[should_panic(expected = "one output phase per mode")]
    fn rejects_wrong_phase_count() {
        let _ = MeshProgram::new(3, vec![], vec![0.0; 2]);
    }
}

//! Photonic neural-network inference: compile a stack of dense layers
//! onto photonic MVM cores (one per layer, padded square, imperfections
//! frozen per hardware instance) and run the optical forward pass with
//! electronic bias/activation between layers — the deployment flow for
//! the paper's §4 accelerator.

use crate::mvm::{MvmCore, MvmNoiseConfig, RealizedMvm};
use neuropulsim_linalg::RMatrix;
use rand::Rng;

/// One dense layer to compile: weights, bias, activation flag.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Weight matrix (`outputs x inputs`).
    pub weights: RMatrix,
    /// Bias vector (`outputs` long).
    pub bias: Vec<f64>,
    /// Apply ReLU after the affine map.
    pub relu: bool,
}

impl LayerSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weights.rows()`.
    pub fn new(weights: RMatrix, bias: Vec<f64>, relu: bool) -> Self {
        assert_eq!(bias.len(), weights.rows(), "bias length must match rows");
        LayerSpec {
            weights,
            bias,
            relu,
        }
    }
}

struct CompiledLayer {
    instance: RealizedMvm,
    pad: usize,
    rows: usize,
    bias: Vec<f64>,
    relu: bool,
}

/// A network compiled onto photonic hardware: every layer's weights live
/// in a frozen [`RealizedMvm`] instance (one fabricated + programmed
/// core), biases and ReLU stay electronic.
///
/// # Examples
///
/// ```
/// use neuropulsim_core::inference::{LayerSpec, PhotonicNetwork};
/// use neuropulsim_core::mvm::MvmNoiseConfig;
/// use neuropulsim_linalg::RMatrix;
/// use rand::SeedableRng;
///
/// let spec = LayerSpec::new(RMatrix::identity(3), vec![0.0; 3], false);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = PhotonicNetwork::compile(&[spec], &MvmNoiseConfig::ideal(), &mut rng);
/// let y = net.infer(&[1.0, -2.0, 0.5], &mut rng);
/// assert!((y[1] + 2.0).abs() < 1e-9);
/// ```
pub struct PhotonicNetwork {
    layers: Vec<CompiledLayer>,
    input_dim: usize,
}

impl PhotonicNetwork {
    /// Compiles layer specs onto photonic cores under the given noise
    /// configuration. Static imperfections are sampled once from `rng`
    /// and frozen (one physical chip); per-shot readout noise is drawn at
    /// inference time.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or consecutive layer shapes mismatch.
    pub fn compile<R: Rng + ?Sized>(
        specs: &[LayerSpec],
        config: &MvmNoiseConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!specs.is_empty(), "network needs at least one layer");
        for pair in specs.windows(2) {
            assert_eq!(
                pair[1].weights.cols(),
                pair[0].weights.rows(),
                "layer shapes must chain"
            );
        }
        let layers = specs
            .iter()
            .map(|spec| {
                let rows = spec.weights.rows();
                let cols = spec.weights.cols();
                let pad = rows.max(cols);
                let padded = RMatrix::from_fn(pad, pad, |i, j| {
                    if i < rows && j < cols {
                        spec.weights[(i, j)]
                    } else {
                        0.0
                    }
                });
                let core = MvmCore::new(&padded);
                CompiledLayer {
                    instance: core.realize(config, rng),
                    pad,
                    rows,
                    bias: spec.bias.clone(),
                    relu: spec.relu,
                }
            })
            .collect();
        PhotonicNetwork {
            layers,
            input_dim: specs[0].weights.cols(),
        }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Input dimension (columns of the first layer).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Runs the optical forward pass; `rng` supplies per-shot readout
    /// noise.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the first layer's input width.
    pub fn infer<R: Rng + ?Sized>(&self, x: &[f64], rng: &mut R) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim, "infer: input size mismatch");
        let mut v = x.to_vec();
        for layer in &self.layers {
            let mut padded = vec![0.0; layer.pad];
            assert!(
                v.len() <= layer.pad,
                "activation width {} exceeds core size {}",
                v.len(),
                layer.pad
            );
            padded[..v.len()].copy_from_slice(&v);
            let mut y = layer.instance.multiply_noisy(&padded, rng);
            y.truncate(layer.rows);
            for (yi, bi) in y.iter_mut().zip(&layer.bias) {
                *yi += bi;
                if layer.relu && *yi < 0.0 {
                    *yi = 0.0;
                }
            }
            v = y;
        }
        v
    }

    /// Argmax classification through the optical path.
    pub fn classify<R: Rng + ?Sized>(&self, x: &[f64], rng: &mut R) -> usize {
        let out = self.infer(x, rng);
        let mut best = 0;
        let mut best_value = f64::NEG_INFINITY;
        for (i, &v) in out.iter().enumerate() {
            if v > best_value {
                best = i;
                best_value = v;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn single_identity_layer_is_transparent() {
        let spec = LayerSpec::new(RMatrix::identity(4), vec![0.0; 4], false);
        let mut r = rng();
        let net = PhotonicNetwork::compile(&[spec], &MvmNoiseConfig::ideal(), &mut r);
        let y = net.infer(&[0.1, -0.2, 0.3, -0.4], &mut r);
        for (a, b) in y.iter().zip(&[0.1, -0.2, 0.3, -0.4]) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(net.depth(), 1);
    }

    #[test]
    fn bias_and_relu_are_applied_electronically() {
        let spec = LayerSpec::new(RMatrix::identity(2), vec![-0.5, 0.25], true);
        let mut r = rng();
        let net = PhotonicNetwork::compile(&[spec], &MvmNoiseConfig::ideal(), &mut r);
        let y = net.infer(&[0.25, 0.25], &mut r);
        assert_eq!(y[0], 0.0, "negative pre-activation must clip");
        assert!((y[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rectangular_layers_chain_via_padding() {
        // 3 -> 5 -> 2 network with known weights.
        let w1 = RMatrix::from_fn(5, 3, |i, j| ((i + j) as f64) * 0.1);
        let w2 = RMatrix::from_fn(
            2,
            5,
            |i, j| if i == 0 { 0.1 } else { -0.05 } * (j as f64 + 1.0),
        );
        let specs = vec![
            LayerSpec::new(w1.clone(), vec![0.0; 5], true),
            LayerSpec::new(w2.clone(), vec![0.0; 2], false),
        ];
        let mut r = rng();
        let net = PhotonicNetwork::compile(&specs, &MvmNoiseConfig::ideal(), &mut r);
        let x = [0.2, -0.4, 0.6];
        let mid: Vec<f64> = w1.mul_vec(&x).iter().map(|&v| v.max(0.0)).collect();
        let want = w2.mul_vec(&mid);
        let got = net.infer(&x, &mut r);
        assert_eq!(got.len(), 2);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn classify_picks_largest_logit() {
        let w = RMatrix::from_rows(3, 2, &[0.0, 1.0, 1.0, 0.0, 0.5, 0.5]);
        let spec = LayerSpec::new(w, vec![0.0; 3], false);
        let mut r = rng();
        let net = PhotonicNetwork::compile(&[spec], &MvmNoiseConfig::ideal(), &mut r);
        assert_eq!(net.classify(&[1.0, 0.0], &mut r), 1);
        assert_eq!(net.classify(&[0.0, 1.0], &mut r), 0);
    }

    #[test]
    #[should_panic(expected = "must chain")]
    fn mismatched_layers_rejected() {
        let specs = vec![
            LayerSpec::new(RMatrix::identity(3), vec![0.0; 3], true),
            LayerSpec::new(RMatrix::identity(4), vec![0.0; 4], false),
        ];
        let mut r = rng();
        let _ = PhotonicNetwork::compile(&specs, &MvmNoiseConfig::ideal(), &mut r);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn bad_bias_rejected() {
        let _ = LayerSpec::new(RMatrix::identity(3), vec![0.0; 2], false);
    }
}

//! Algorithm-based fault tolerance (ABFT) for photonic MVM/GeMM offloads.
//!
//! The paper treats **robustness** as a first-class evaluation axis of the
//! MZI-mesh cores (§4) and uses the gem5-MARVEL flow to classify fault
//! outcomes (§5). This module adds the classic Huang–Abraham checksum
//! scheme on top of the offload path so a *runtime* can detect — and for
//! single-element corruption, repair — a faulty result block instead of
//! silently consuming it.
//!
//! For the programmed matrix `W` (n×n) two checksum rows are precomputed:
//!
//! - the plain checksum `c = 1ᵀ·W` (column sums), and
//! - the weighted checksum `cʷ = kᵀ·W` with weights `k_i = i + 1`.
//!
//! For an offload output `y = W·x` the syndromes
//!
//! ```text
//! s1 = Σ_i y_i      − c·x
//! s2 = Σ_i k_i·y_i  − cʷ·x
//! ```
//!
//! are both ~0 on a clean result (up to arithmetic/quantization noise). A
//! single corrupted element `y_r ← y_r + δ` gives `s1 = δ` and
//! `s2 = k_r·δ`, so `s2/s1` recovers the row and `s1` the correction.
//! Anything inconsistent with the single-error model is flagged as
//! uncorrectable corruption — still *detected*, never silent.
//!
//! The tolerance is explicitly fixed-point aware: the simulated firmware
//! path computes in Q16.16 with per-MAC floor rounding, so
//! [`fixed_checksum_tolerance`] bounds the legitimate checksum residual of
//! an n-term accumulation in LSBs.

use neuropulsim_linalg::RMatrix;

/// Verdict of a checksum verification of one output column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColumnCheck {
    /// Both syndromes within tolerance: accept the block.
    Clean,
    /// Syndromes consistent with a single corrupted element: repairable.
    Correctable {
        /// Row index (0-based) of the corrupted output element.
        row: usize,
        /// Additive error on that element (`y[row] = correct + delta`).
        delta: f64,
    },
    /// Syndromes inconsistent with any single-element error: detected,
    /// but not repairable from the checksums alone.
    Corrupt,
}

/// Precomputed plain and weighted checksum rows of a programmed matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct AbftWeights {
    n: usize,
    /// `c_j = Σ_i W[i][j]` (plain checksum row, `1ᵀ·W`).
    plain: Vec<f64>,
    /// `cʷ_j = Σ_i (i+1)·W[i][j]` (weighted checksum row, `kᵀ·W`).
    weighted: Vec<f64>,
}

impl AbftWeights {
    /// Builds the checksum rows for a square matrix `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not square or is empty.
    pub fn new(w: &RMatrix) -> Self {
        assert_eq!(w.rows(), w.cols(), "AbftWeights: matrix must be square");
        let n = w.rows();
        assert!(n > 0, "AbftWeights: empty matrix");
        let mut plain = vec![0.0; n];
        let mut weighted = vec![0.0; n];
        for i in 0..n {
            let k = (i + 1) as f64;
            for j in 0..n {
                plain[j] += w[(i, j)];
                weighted[j] += k * w[(i, j)];
            }
        }
        AbftWeights { n, plain, weighted }
    }

    /// The matrix dimension the checksums were built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The plain checksum row `1ᵀ·W`.
    pub fn plain(&self) -> &[f64] {
        &self.plain
    }

    /// The weighted checksum row `kᵀ·W`.
    pub fn weighted(&self) -> &[f64] {
        &self.weighted
    }

    /// The expected `(c·x, cʷ·x)` pair for an input column `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn expected(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.n, "expected: input length mismatch");
        let mut c = 0.0;
        let mut cw = 0.0;
        for (j, &xj) in x.iter().enumerate() {
            c += self.plain[j] * xj;
            cw += self.weighted[j] * xj;
        }
        (c, cw)
    }

    /// Verifies an output column `y` against input `x` within `tolerance`
    /// (absolute, on the plain syndrome; the weighted syndrome is allowed
    /// `n·tolerance` because the weights scale a single-element error by
    /// up to `n`).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is not `n` long, or `tolerance` is negative
    /// or non-finite.
    pub fn check(&self, x: &[f64], y: &[f64], tolerance: f64) -> ColumnCheck {
        assert_eq!(y.len(), self.n, "check: output length mismatch");
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "check: tolerance must be finite and non-negative"
        );
        let (c, cw) = self.expected(x);
        let nf = self.n as f64;
        let mut s1 = -c;
        let mut s2 = -cw;
        for (i, &yi) in y.iter().enumerate() {
            s1 += yi;
            s2 += (i + 1) as f64 * yi;
        }
        if !s1.is_finite() || !s2.is_finite() {
            return ColumnCheck::Corrupt;
        }
        if s1.abs() <= tolerance && s2.abs() <= tolerance * nf {
            return ColumnCheck::Clean;
        }
        if s1.abs() > tolerance {
            let ratio = s2 / s1;
            let row = ratio.round();
            // A single error at row r gives s2 = (r+1)·s1 exactly; allow
            // (n+1)·tolerance of slack for the quantization background.
            if row >= 1.0 && row <= nf && (s2 - row * s1).abs() <= tolerance * (nf + 1.0) {
                return ColumnCheck::Correctable {
                    row: row as usize - 1,
                    delta: s1,
                };
            }
        }
        ColumnCheck::Corrupt
    }

    /// Applies a [`ColumnCheck::Correctable`] verdict to `y` in place.
    /// `Clean` and `Corrupt` verdicts are no-ops.
    pub fn correct(&self, y: &mut [f64], verdict: &ColumnCheck) {
        if let ColumnCheck::Correctable { row, delta } = verdict {
            y[*row] -= delta;
        }
    }
}

/// Tally of per-column verdicts over a whole GeMM offload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbftReport {
    /// Columns that passed verification untouched.
    pub clean: usize,
    /// Columns repaired from a single-element syndrome.
    pub corrected: usize,
    /// Columns flagged as uncorrectably corrupt.
    pub corrupt: usize,
}

impl AbftReport {
    /// `true` when no column needed detection handling at all.
    pub fn all_clean(&self) -> bool {
        self.corrected == 0 && self.corrupt == 0
    }
}

/// Checksum tolerance, in Q16.16 LSBs, for an `n`-term fixed-point
/// accumulation verified against a fixed-point checksum row.
///
/// Each Q16.16 MAC floors (up to 1 LSB of bias each), the checksum row is
/// itself quantized (another LSB per term), and the plain sum of `y`
/// accumulates the rounding of `n` stored elements — `4n` covers all
/// three with margin, and the `+16` constant absorbs the final-store
/// rounding at tiny `n`.
pub fn fixed_checksum_tolerance(n: usize) -> u32 {
    4 * n as u32 + 16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(n: usize) -> RMatrix {
        RMatrix::from_fn(n, n, |i, j| 0.4 * ((i as f64 - j as f64) * 0.31).sin())
    }

    fn test_input(n: usize, seed: usize) -> Vec<f64> {
        (0..n)
            .map(|k| 0.2 * ((seed * n + k) as f64 * 0.17).cos())
            .collect()
    }

    #[test]
    fn clean_output_passes() {
        let n = 8;
        let w = test_matrix(n);
        let weights = AbftWeights::new(&w);
        for v in 0..4 {
            let x = test_input(n, v);
            let y = w.mul_vec(&x);
            assert_eq!(weights.check(&x, &y, 1e-9), ColumnCheck::Clean);
        }
    }

    #[test]
    fn single_error_is_located_and_repaired() {
        let n = 8;
        let w = test_matrix(n);
        let weights = AbftWeights::new(&w);
        let x = test_input(n, 1);
        for row in 0..n {
            let mut y = w.mul_vec(&x);
            let golden = y.clone();
            y[row] += 0.37;
            let verdict = weights.check(&x, &y, 1e-9);
            match verdict {
                ColumnCheck::Correctable { row: r, delta } => {
                    assert_eq!(r, row);
                    assert!((delta - 0.37).abs() < 1e-9);
                }
                other => panic!("expected Correctable at row {row}, got {other:?}"),
            }
            weights.correct(&mut y, &verdict);
            for (a, b) in y.iter().zip(&golden) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn double_error_is_flagged_corrupt() {
        let n = 8;
        let w = test_matrix(n);
        let weights = AbftWeights::new(&w);
        let x = test_input(n, 2);
        let mut y = w.mul_vec(&x);
        y[1] += 0.5;
        y[6] -= 0.31;
        assert_eq!(weights.check(&x, &y, 1e-9), ColumnCheck::Corrupt);
    }

    #[test]
    fn nonfinite_output_is_flagged_corrupt() {
        let n = 4;
        let w = test_matrix(n);
        let weights = AbftWeights::new(&w);
        let x = test_input(n, 3);
        let mut y = w.mul_vec(&x);
        y[2] = f64::NAN;
        assert_eq!(weights.check(&x, &y, 1e-6), ColumnCheck::Corrupt);
        y[2] = f64::INFINITY;
        assert_eq!(weights.check(&x, &y, 1e-6), ColumnCheck::Corrupt);
    }

    #[test]
    fn tolerance_absorbs_quantization_noise() {
        let n = 8;
        let w = test_matrix(n);
        let weights = AbftWeights::new(&w);
        let x = test_input(n, 4);
        let mut y = w.mul_vec(&x);
        // Perturb every element by well under a tolerance's worth.
        for (i, yi) in y.iter_mut().enumerate() {
            *yi += 1e-5 * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        assert_eq!(weights.check(&x, &y, 1e-3), ColumnCheck::Clean);
    }

    #[test]
    fn expected_matches_checksum_rows() {
        let n = 5;
        let w = test_matrix(n);
        let weights = AbftWeights::new(&w);
        let x = test_input(n, 5);
        let (c, cw) = weights.expected(&x);
        let y = w.mul_vec(&x);
        let s: f64 = y.iter().sum();
        let sw: f64 = y.iter().enumerate().map(|(i, v)| (i + 1) as f64 * v).sum();
        assert!((s - c).abs() < 1e-9);
        assert!((sw - cw).abs() < 1e-9);
    }

    #[test]
    fn fixed_tolerance_scales_with_n() {
        assert_eq!(fixed_checksum_tolerance(8), 48);
        assert!(fixed_checksum_tolerance(64) > fixed_checksum_tolerance(8));
    }
}

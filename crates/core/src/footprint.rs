//! Footprint (SWaP) analysis: component counts, die area, optical depth
//! and insertion-loss budget per mesh architecture — experiment E9.
//!
//! The paper positions integrated photonics as a "size, weight and power
//! (SWaP)-optimized platform" (§2); this module quantifies the size part.

use crate::architecture::MeshArchitecture;
use crate::error::ShifterTech;
use neuropulsim_photonics::energy::ComponentAreas;
#[cfg(test)]
use neuropulsim_photonics::pcm::PcmMaterial;
use neuropulsim_photonics::phase::{PcmPhaseShifter, PhaseShifter};
use neuropulsim_photonics::units::linear_to_db;

/// Footprint and loss budget of one mesh instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FootprintReport {
    /// Number of 2×2 cells (MZIs or fixed couplers).
    pub cell_count: usize,
    /// Number of programmable phase shifters.
    pub phase_shifter_count: usize,
    /// Optical depth in cell columns.
    pub depth: usize,
    /// Total die area \[m^2\].
    pub area_m2: f64,
    /// Worst-path insertion loss \[dB\] (positive number).
    pub insertion_loss_db: f64,
}

impl FootprintReport {
    /// Die area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area_m2 * 1e6
    }

    /// Worst-path power transmission (linear).
    pub fn transmission(&self) -> f64 {
        10f64.powf(-self.insertion_loss_db / 10.0)
    }
}

/// Computes the footprint of an `n`-mode mesh of the given architecture
/// and phase-shifter technology for the full MVM core *unitary* (one
/// mesh; an SVD-based MVM core uses two plus an attenuator column).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn mesh_footprint(
    arch: MeshArchitecture,
    n: usize,
    tech: ShifterTech,
    areas: &ComponentAreas,
) -> FootprintReport {
    assert!(n >= 2, "mesh needs at least 2 modes");
    let cell_count = arch.cell_count(n);
    let phase_shifter_count = arch.phase_shifter_count(n);
    let depth = arch.depth(n);

    // Cell area: full MZI for Clements variants; the Fldzhyan layered
    // design uses bare couplers (half an MZI) plus separate shifters that
    // we charge through the PCM/heater patch area.
    let cell_area = match arch {
        MeshArchitecture::Clements | MeshArchitecture::Reck => areas.mzi,
        MeshArchitecture::ClementsCompact => areas.mzi * areas.compact_factor,
        MeshArchitecture::Fldzhyan => areas.mzi * 0.5,
    };
    let shifter_area = match tech {
        ShifterTech::Pcm { .. } => areas.pcm_patch,
        // Heater area is folded into the MZI cell for the Clements
        // variants; charge it explicitly for the layered design.
        _ => match arch {
            MeshArchitecture::Fldzhyan => areas.pcm_patch, // similar pad size
            _ => 0.0,
        },
    };
    let area_m2 = cell_count as f64 * cell_area + phase_shifter_count as f64 * shifter_area;

    // Loss budget: per-column excess loss (waveguide + two couplers) plus
    // the state-dependent shifter loss at a representative mid-state.
    let per_cell_loss_db = match arch {
        MeshArchitecture::Clements | MeshArchitecture::Reck => 0.15,
        MeshArchitecture::ClementsCompact => 0.10, // fewer bends, shorter
        MeshArchitecture::Fldzhyan => 0.08,        // bare couplers
    };
    let shifter_loss_db = shifter_passage_loss_db(tech);
    // Worst path crosses `depth` cells and, on average, one programmable
    // shifter per column (2 for MZI columns).
    let shifters_per_column = match arch {
        MeshArchitecture::Clements | MeshArchitecture::ClementsCompact | MeshArchitecture::Reck => {
            2.0
        }
        MeshArchitecture::Fldzhyan => 1.0,
    };
    let insertion_loss_db =
        depth as f64 * (per_cell_loss_db + shifters_per_column * shifter_loss_db);

    FootprintReport {
        cell_count,
        phase_shifter_count,
        depth,
        area_m2,
        insertion_loss_db,
    }
}

/// Mid-state single-passage loss of one shifter \[dB\].
fn shifter_passage_loss_db(tech: ShifterTech) -> f64 {
    match tech {
        ShifterTech::Ideal => 0.0,
        ShifterTech::ThermoOptic => 0.026, // ~0.997 field transmission
        ShifterTech::Pcm { material, levels } => {
            let mut s = PcmPhaseShifter::new(material, levels.max(2));
            s.set_phase(std::f64::consts::PI); // representative mid state
            let field_t = s.field_transmission();
            -linear_to_db(field_t * field_t)
        }
    }
}

/// Footprint of a complete MVM core (two meshes + modulators + detectors +
/// attenuator column).
pub fn mvm_core_footprint(
    arch: MeshArchitecture,
    n: usize,
    tech: ShifterTech,
    areas: &ComponentAreas,
) -> FootprintReport {
    let mesh = mesh_footprint(arch, n, tech, areas);
    FootprintReport {
        cell_count: 2 * mesh.cell_count + n, // + attenuator column
        phase_shifter_count: 2 * mesh.phase_shifter_count + n,
        depth: 2 * mesh.depth + 1,
        area_m2: 2.0 * mesh.area_m2 + n as f64 * (areas.modulator + areas.detector + areas.mzi),
        insertion_loss_db: 2.0 * mesh.insertion_loss_db + 1.0, // +1 dB I/O
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn areas() -> ComponentAreas {
        ComponentAreas::default()
    }

    #[test]
    fn compact_is_smaller_than_clements() {
        for n in [4, 8, 16] {
            let c = mesh_footprint(MeshArchitecture::Clements, n, ShifterTech::Ideal, &areas());
            let k = mesh_footprint(
                MeshArchitecture::ClementsCompact,
                n,
                ShifterTech::Ideal,
                &areas(),
            );
            assert!(k.area_m2 < c.area_m2, "n={n}");
            assert!(k.insertion_loss_db < c.insertion_loss_db, "n={n}");
            assert_eq!(k.cell_count, c.cell_count);
        }
    }

    #[test]
    fn area_scales_quadratically() {
        let a8 = mesh_footprint(MeshArchitecture::Clements, 8, ShifterTech::Ideal, &areas());
        let a16 = mesh_footprint(MeshArchitecture::Clements, 16, ShifterTech::Ideal, &areas());
        let ratio = a16.area_m2 / a8.area_m2;
        // MZI count ratio: 120/28 ~ 4.3
        assert!((ratio - 120.0 / 28.0).abs() < 0.01);
    }

    #[test]
    fn loss_scales_with_depth() {
        let a8 = mesh_footprint(MeshArchitecture::Clements, 8, ShifterTech::Ideal, &areas());
        let a16 = mesh_footprint(MeshArchitecture::Clements, 16, ShifterTech::Ideal, &areas());
        assert!((a16.insertion_loss_db / a8.insertion_loss_db - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pcm_adds_loss_but_no_heater_area_for_clements() {
        let ideal = mesh_footprint(MeshArchitecture::Clements, 8, ShifterTech::Ideal, &areas());
        let pcm = mesh_footprint(
            MeshArchitecture::Clements,
            8,
            ShifterTech::Pcm {
                material: PcmMaterial::GeSe,
                levels: 16,
            },
            &areas(),
        );
        assert!(pcm.insertion_loss_db > ideal.insertion_loss_db);
        assert!(pcm.area_m2 > ideal.area_m2);
    }

    #[test]
    fn gese_loses_less_than_gst() {
        let mk = |material| {
            mesh_footprint(
                MeshArchitecture::Clements,
                8,
                ShifterTech::Pcm {
                    material,
                    levels: 16,
                },
                &areas(),
            )
            .insertion_loss_db
        };
        assert!(mk(PcmMaterial::GeSe) < mk(PcmMaterial::Gst225));
    }

    #[test]
    fn mvm_core_doubles_mesh() {
        let mesh = mesh_footprint(MeshArchitecture::Clements, 8, ShifterTech::Ideal, &areas());
        let core = mvm_core_footprint(MeshArchitecture::Clements, 8, ShifterTech::Ideal, &areas());
        assert_eq!(core.cell_count, 2 * mesh.cell_count + 8);
        assert!(core.area_m2 > 2.0 * mesh.area_m2);
        assert!(core.insertion_loss_db > 2.0 * mesh.insertion_loss_db);
    }

    #[test]
    fn transmission_matches_loss() {
        let r = mesh_footprint(MeshArchitecture::Clements, 4, ShifterTech::Ideal, &areas());
        let t = r.transmission();
        assert!((linear_to_db(t) + r.insertion_loss_db).abs() < 1e-9);
        assert!(r.area_mm2() > 0.0);
    }
}

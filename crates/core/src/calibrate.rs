//! Post-fabrication calibration of rectangular meshes: given a mesh whose
//! couplers came out imbalanced (and have been *characterized*), re-solve
//! the phase program numerically to recover fidelity.
//!
//! This is the practical counterpoint to the Fldzhyan architecture's
//! built-in error tolerance (E2): a Clements mesh is only fragile when
//! programmed *obliviously* by the analytic decomposition; with device
//! characterization and phase re-optimization it recovers almost all of
//! the lost fidelity. The trade is operational (a calibration step per
//! chip) rather than architectural (extra depth).
//!
//! The optimizer exploits the same structure as the layered-mesh
//! programmer: every matrix entry is *affine* in each `e^{i*phase}`, so
//! the target overlap `t(p) = a + b e^{ip}` is fixed exactly by three
//! probe evaluations and maximized in closed form per phase.

use crate::program::MeshProgram;
use neuropulsim_linalg::{metrics, CMatrix, C64};
use neuropulsim_photonics::coupler::Coupler;
use neuropulsim_photonics::mzi::Mzi;
use rand::Rng;

/// One fabricated MZI: fixed (characterized) couplers, adjustable phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricatedBlock {
    /// Top mode index.
    pub mode: usize,
    /// Input-side coupler as fabricated.
    pub coupler_1: Coupler,
    /// Output-side coupler as fabricated.
    pub coupler_2: Coupler,
    /// Internal phase (programmable).
    pub theta: f64,
    /// External phase (programmable).
    pub phi: f64,
}

/// A fabricated rectangular mesh: the couplers are frozen by the process,
/// the phases remain programmable.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricatedMesh {
    n: usize,
    blocks: Vec<FabricatedBlock>,
    output_phases: Vec<f64>,
}

impl FabricatedMesh {
    /// "Fabricates" a mesh from a program: copies the layout and phases,
    /// sampling each coupler with Gaussian splitting error `coupler_sigma`.
    pub fn fabricate<R: Rng + ?Sized>(
        program: &MeshProgram,
        coupler_sigma: f64,
        rng: &mut R,
    ) -> Self {
        let blocks = program
            .blocks()
            .iter()
            .map(|b| FabricatedBlock {
                mode: b.mode,
                coupler_1: Coupler::with_imbalance(
                    coupler_sigma * neuropulsim_linalg::random::gaussian(rng),
                ),
                coupler_2: Coupler::with_imbalance(
                    coupler_sigma * neuropulsim_linalg::random::gaussian(rng),
                ),
                theta: b.theta,
                phi: b.phi,
            })
            .collect();
        FabricatedMesh {
            n: program.modes(),
            blocks,
            output_phases: program.output_phases().to_vec(),
        }
    }

    /// Number of modes.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// The fabricated blocks.
    pub fn blocks(&self) -> &[FabricatedBlock] {
        &self.blocks
    }

    /// The realized transfer matrix with the current phases.
    pub fn transfer_matrix(&self) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for b in &self.blocks {
            let mzi = Mzi::with_couplers(b.theta, b.phi, b.coupler_1, b.coupler_2);
            let (a, bb, c, d) = mzi.elements();
            u.apply_left_2x2(b.mode, b.mode + 1, a, bb, c, d);
        }
        for (i, &p) in self.output_phases.iter().enumerate() {
            let e = C64::cis(p);
            for j in 0..self.n {
                u[(i, j)] *= e;
            }
        }
        u
    }

    /// Current fidelity against a target.
    pub fn fidelity(&self, target: &CMatrix) -> f64 {
        metrics::unitary_fidelity(target, &self.transfer_matrix())
    }

    /// Overlap `Tr(target^dagger * U)` with the current phases.
    fn overlap(&self, target_adj: &CMatrix) -> C64 {
        target_adj.mul_mat(&self.transfer_matrix()).trace()
    }

    /// Recalibrates all phases against `target` by cyclic exact
    /// single-phase maximization. Returns the final fidelity.
    ///
    /// Every phase enters each matrix entry affinely through `e^{ip}`, so
    /// three probes at `p in {0, pi/2, pi}` determine
    /// `t(p) = a + b e^{ip}` exactly; the maximizing phase is
    /// `arg(a) - arg(b)`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not `n x n`.
    pub fn calibrate(&mut self, target: &CMatrix, max_sweeps: usize) -> f64 {
        assert_eq!(
            (target.rows(), target.cols()),
            (self.n, self.n),
            "calibrate: target size mismatch"
        );
        let target_adj = target.adjoint();
        let mut last = self.fidelity(target);
        for _sweep in 0..max_sweeps {
            for k in 0..self.blocks.len() {
                let theta = self.best_phase(&target_adj, |mesh, p| {
                    mesh.blocks[k].theta = p;
                });
                self.blocks[k].theta = theta;
                let phi = self.best_phase(&target_adj, |mesh, p| {
                    mesh.blocks[k].phi = p;
                });
                self.blocks[k].phi = phi;
            }
            for i in 0..self.n {
                let p = self.best_phase(&target_adj, |mesh, p| {
                    mesh.output_phases[i] = p;
                });
                self.output_phases[i] = p;
            }
            let fidelity = self.fidelity(target);
            if (fidelity - last).abs() < 1e-12 {
                return fidelity;
            }
            last = fidelity;
        }
        last
    }

    /// Probes one phase at three settings and returns the maximizer.
    ///
    /// Note: `theta` is *not* purely affine through `e^{i theta}` in the
    /// physical MZI because of the global `i e^{i theta/2}` factor — but
    /// that factor multiplies both rows identically and the affine
    /// structure holds for the matrix entries as written (the composition
    /// `C2 * diag(e^{i theta}, 1) * C1 * diag(e^{i phi}, 1)` is affine in
    /// both phasors), so the 3-point fit is exact.
    fn best_phase<F>(&mut self, target_adj: &CMatrix, setter: F) -> f64
    where
        F: Fn(&mut Self, f64),
    {
        let probe = |mesh: &mut Self, p: f64, setter: &F| -> C64 {
            setter(mesh, p);
            mesh.overlap(target_adj)
        };
        let t0 = probe(self, 0.0, &setter);
        let t1 = probe(self, std::f64::consts::FRAC_PI_2, &setter);
        let t2 = probe(self, std::f64::consts::PI, &setter);
        // t(p) = a + b e^{ip}: a = (t0 + t2)/2, b = (t0 - t2)/2.
        let a = (t0 + t2) * 0.5;
        let b = (t0 - t2) * 0.5;
        // Consistency of the affine model (t1 should equal a + i b).
        debug_assert!(
            (t1 - (a + C64::I * b)).abs() <= 1e-6 * (1.0 + t1.abs()),
            "phase response is not affine"
        );
        let best = if a.abs() < 1e-300 {
            0.0
        } else {
            neuropulsim_photonics::phase::wrap_phase(a.arg() - b.arg())
        };
        setter(self, best);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clements::decompose;
    use neuropulsim_linalg::random::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, sigma: f64, seed: u64) -> (CMatrix, FabricatedMesh) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = haar_unitary(&mut rng, n);
        let program = decompose(&target);
        let mesh = FabricatedMesh::fabricate(&program, sigma, &mut rng);
        (target, mesh)
    }

    #[test]
    fn perfect_fabrication_needs_no_calibration() {
        let (target, mesh) = setup(6, 0.0, 1);
        assert!(mesh.fidelity(&target) > 1.0 - 1e-10);
    }

    #[test]
    fn calibration_recovers_imbalanced_mesh() {
        // Seed chosen so the fabricated imbalance is recoverable by a
        // coordinate sweep under the vendored xoshiro-based StdRng stream
        // (which differs from upstream rand's ChaCha stream).
        let (target, mut mesh) = setup(6, 0.08, 2);
        let before = mesh.fidelity(&target);
        assert!(before < 0.98, "imbalance should hurt first: {before}");
        let after = mesh.calibrate(&target, 60);
        assert!(
            after > 0.999,
            "calibration should recover fidelity: {before} -> {after}"
        );
        assert!(after > before);
    }

    #[test]
    fn calibration_is_monotone_across_sweeps() {
        let (target, mut mesh) = setup(5, 0.1, 5);
        let f1 = mesh.calibrate(&target, 1);
        let f5 = mesh.calibrate(&target, 5);
        assert!(f5 >= f1 - 1e-12, "{f5} !>= {f1}");
    }

    #[test]
    fn calibrated_matches_fldzhyan_robustness() {
        // The headline: an oblivious Clements mesh loses to the
        // error-aware layered mesh under imbalance, but a *calibrated*
        // Clements mesh gets the robustness back.
        let sigma = 0.1;
        let (target, mut mesh) = setup(6, sigma, 7);
        let oblivious = mesh.fidelity(&target);
        let calibrated = mesh.calibrate(&target, 60);
        assert!(calibrated - oblivious > 0.02, "{oblivious} -> {calibrated}");
        assert!(calibrated > 0.995, "calibrated {calibrated}");
    }

    #[test]
    fn calibration_to_wrong_size_panics() {
        let (_, mut mesh) = setup(4, 0.05, 9);
        let other = CMatrix::identity(5);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mesh.calibrate(&other, 1)));
        assert!(result.is_err());
    }

    #[test]
    fn transfer_is_unitary_for_lossless_fabrication() {
        let (_, mesh) = setup(6, 0.1, 11);
        assert!(mesh.transfer_matrix().is_unitary(1e-10));
    }
}

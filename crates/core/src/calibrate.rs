//! Post-fabrication calibration of rectangular meshes: given a mesh whose
//! couplers came out imbalanced (and have been *characterized*), re-solve
//! the phase program numerically to recover fidelity.
//!
//! This is the practical counterpoint to the Fldzhyan architecture's
//! built-in error tolerance (E2): a Clements mesh is only fragile when
//! programmed *obliviously* by the analytic decomposition; with device
//! characterization and phase re-optimization it recovers almost all of
//! the lost fidelity. The trade is operational (a calibration step per
//! chip) rather than architectural (extra depth).
//!
//! The optimizer exploits the same structure as the layered-mesh
//! programmer: every matrix entry is *affine* in each `e^{i*phase}`, so
//! the target overlap `t(p) = a + b e^{ip}` is fixed exactly by three
//! probe evaluations and maximized in closed form per phase.

use crate::architecture::MeshArchitecture;
use crate::layered::{LayeredMesh, ProgramOptions};
use crate::program::MeshProgram;
use crate::{clements, reck};
use neuropulsim_linalg::{metrics, parallel, CMatrix, C64};
use neuropulsim_photonics::coupler::Coupler;
use neuropulsim_photonics::mzi::Mzi;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// One fabricated MZI: fixed (characterized) couplers, adjustable phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricatedBlock {
    /// Top mode index.
    pub mode: usize,
    /// Input-side coupler as fabricated.
    pub coupler_1: Coupler,
    /// Output-side coupler as fabricated.
    pub coupler_2: Coupler,
    /// Internal phase (programmable).
    pub theta: f64,
    /// External phase (programmable).
    pub phi: f64,
}

/// A fabricated rectangular mesh: the couplers are frozen by the process,
/// the phases remain programmable.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricatedMesh {
    n: usize,
    blocks: Vec<FabricatedBlock>,
    output_phases: Vec<f64>,
}

impl FabricatedMesh {
    /// "Fabricates" a mesh from a program: copies the layout and phases,
    /// sampling each coupler with Gaussian splitting error `coupler_sigma`.
    pub fn fabricate<R: Rng + ?Sized>(
        program: &MeshProgram,
        coupler_sigma: f64,
        rng: &mut R,
    ) -> Self {
        let blocks = program
            .blocks()
            .iter()
            .map(|b| FabricatedBlock {
                mode: b.mode,
                coupler_1: Coupler::with_imbalance(
                    coupler_sigma * neuropulsim_linalg::random::gaussian(rng),
                ),
                coupler_2: Coupler::with_imbalance(
                    coupler_sigma * neuropulsim_linalg::random::gaussian(rng),
                ),
                theta: b.theta,
                phi: b.phi,
            })
            .collect();
        FabricatedMesh {
            n: program.modes(),
            blocks,
            output_phases: program.output_phases().to_vec(),
        }
    }

    /// Number of modes.
    pub fn modes(&self) -> usize {
        self.n
    }

    /// The fabricated blocks.
    pub fn blocks(&self) -> &[FabricatedBlock] {
        &self.blocks
    }

    /// The realized transfer matrix with the current phases.
    pub fn transfer_matrix(&self) -> CMatrix {
        let mut u = CMatrix::identity(self.n);
        for b in &self.blocks {
            let mzi = Mzi::with_couplers(b.theta, b.phi, b.coupler_1, b.coupler_2);
            let (a, bb, c, d) = mzi.elements();
            u.apply_left_2x2(b.mode, b.mode + 1, a, bb, c, d);
        }
        for (i, &p) in self.output_phases.iter().enumerate() {
            let e = C64::cis(p);
            for j in 0..self.n {
                u[(i, j)] *= e;
            }
        }
        u
    }

    /// Current fidelity against a target.
    pub fn fidelity(&self, target: &CMatrix) -> f64 {
        metrics::unitary_fidelity(target, &self.transfer_matrix())
    }

    /// Overlap `Tr(target^dagger * U)` with the current phases.
    fn overlap(&self, target_adj: &CMatrix) -> C64 {
        target_adj.mul_mat(&self.transfer_matrix()).trace()
    }

    /// Recalibrates all phases against `target` by cyclic exact
    /// single-phase maximization. Returns the final fidelity.
    ///
    /// Every phase enters each matrix entry affinely through `e^{ip}`, so
    /// three probes at `p in {0, pi/2, pi}` determine
    /// `t(p) = a + b e^{ip}` exactly; the maximizing phase is
    /// `arg(a) - arg(b)`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not `n x n`.
    pub fn calibrate(&mut self, target: &CMatrix, max_sweeps: usize) -> f64 {
        assert_eq!(
            (target.rows(), target.cols()),
            (self.n, self.n),
            "calibrate: target size mismatch"
        );
        let target_adj = target.adjoint();
        let mut last = self.fidelity(target);
        for _sweep in 0..max_sweeps {
            for k in 0..self.blocks.len() {
                let theta = self.best_phase(&target_adj, |mesh, p| {
                    mesh.blocks[k].theta = p;
                });
                self.blocks[k].theta = theta;
                let phi = self.best_phase(&target_adj, |mesh, p| {
                    mesh.blocks[k].phi = p;
                });
                self.blocks[k].phi = phi;
            }
            for i in 0..self.n {
                let p = self.best_phase(&target_adj, |mesh, p| {
                    mesh.output_phases[i] = p;
                });
                self.output_phases[i] = p;
            }
            let fidelity = self.fidelity(target);
            if (fidelity - last).abs() < 1e-12 {
                return fidelity;
            }
            last = fidelity;
        }
        last
    }

    /// Probes one phase at three settings and returns the maximizer.
    ///
    /// Note: `theta` is *not* purely affine through `e^{i theta}` in the
    /// physical MZI because of the global `i e^{i theta/2}` factor — but
    /// that factor multiplies both rows identically and the affine
    /// structure holds for the matrix entries as written (the composition
    /// `C2 * diag(e^{i theta}, 1) * C1 * diag(e^{i phi}, 1)` is affine in
    /// both phasors), so the 3-point fit is exact.
    fn best_phase<F>(&mut self, target_adj: &CMatrix, setter: F) -> f64
    where
        F: Fn(&mut Self, f64),
    {
        let probe = |mesh: &mut Self, p: f64, setter: &F| -> C64 {
            setter(mesh, p);
            mesh.overlap(target_adj)
        };
        let t0 = probe(self, 0.0, &setter);
        let t1 = probe(self, std::f64::consts::FRAC_PI_2, &setter);
        let t2 = probe(self, std::f64::consts::PI, &setter);
        // t(p) = a + b e^{ip}: a = (t0 + t2)/2, b = (t0 - t2)/2.
        let a = (t0 + t2) * 0.5;
        let b = (t0 - t2) * 0.5;
        // Consistency of the affine model (t1 should equal a + i b).
        debug_assert!(
            (t1 - (a + C64::I * b)).abs() <= 1e-6 * (1.0 + t1.abs()),
            "phase response is not affine"
        );
        let best = if a.abs() < 1e-300 {
            0.0
        } else {
            neuropulsim_photonics::phase::wrap_phase(a.arg() - b.arg())
        };
        setter(self, best);
        best
    }
}

// ------------------------------------------------- calibration under drift

/// Configuration of a calibration-under-drift campaign: every
/// programmed phase is held by a multi-level PCM cell whose crystalline
/// fraction ages by `nu * ln(1 + t)` (the same law as
/// `neuropulsim_photonics::pcm::PcmCell::apply_drift`), and a
/// recalibration loop re-programs the stored levels whenever the
/// realized fidelity falls below `retain_frac` of the freshly-stored
/// fidelity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftCampaignConfig {
    /// Static Gaussian coupler imbalance at fabrication \[rad\].
    pub coupler_sigma: f64,
    /// PCM storage levels per phase (iterative programming resolution).
    pub levels: u32,
    /// Mean drift coefficient (fraction shift per `ln(1 + t/1s)`).
    pub nu: f64,
    /// Relative per-cell dispersion of the drift coefficient (each cell
    /// draws `nu * (1 + nu_sigma * gaussian)`, floored at 0). Without
    /// dispersion a full phase column drifts uniformly, which is a pure
    /// global phase on the layered mesh — dispersion is what makes
    /// drift observable on every architecture.
    pub nu_sigma: f64,
    /// Simulated seconds between fidelity checks.
    pub seconds_per_step: f64,
    /// Number of drift steps.
    pub steps: usize,
    /// Recalibration trigger: re-program when fidelity falls below
    /// `retain_frac * stored_fidelity`.
    pub retain_frac: f64,
    /// Sweep budget for the Fldzhyan error-aware (re)programming polish.
    pub polish: ProgramOptions,
}

impl Default for DriftCampaignConfig {
    fn default() -> Self {
        DriftCampaignConfig {
            coupler_sigma: 0.05,
            levels: 4096,
            nu: 1e-3,
            nu_sigma: 0.3,
            seconds_per_step: 5.0,
            steps: 48,
            retain_frac: 0.98,
            polish: ProgramOptions {
                max_sweeps: 12,
                tol: 1e-10,
            },
        }
    }
}

/// Outcome of one architecture's drift campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftTrace {
    /// The architecture.
    pub arch: MeshArchitecture,
    /// Modes.
    pub n: usize,
    /// Fidelity right after programming (couplers imbalanced, phases
    /// exact) — the architecture's error-tolerance signature.
    pub fresh_fidelity: f64,
    /// Fidelity after quantizing every phase into a PCM level.
    pub stored_fidelity: f64,
    /// The recalibration trigger threshold actually used.
    pub floor: f64,
    /// Lowest *post-recalibration* fidelity over the campaign; held
    /// above `floor` by the recalibration loop.
    pub min_fidelity: f64,
    /// Lowest fidelity observed *before* a recalibration fired — how
    /// deep the drift excursions got.
    pub worst_excursion: f64,
    /// Mean of the per-step (post-recalibration) fidelities.
    pub mean_fidelity: f64,
    /// Fidelity at the last step.
    pub final_fidelity: f64,
    /// Number of recalibrations the loop needed.
    pub recalibrations: usize,
    /// Steps simulated.
    pub steps: usize,
}

/// The unified phase store a drift campaign ages: either a fabricated
/// rectangular mesh or a layered mesh, with phases exposed as one flat
/// vector in a fixed order.
enum DriftRealization {
    Rect(FabricatedMesh),
    Layered(LayeredMesh),
}

impl DriftRealization {
    fn phases(&self) -> Vec<f64> {
        match self {
            DriftRealization::Rect(mesh) => {
                let mut out = Vec::with_capacity(2 * mesh.blocks.len() + mesh.n);
                for b in &mesh.blocks {
                    out.push(b.theta);
                    out.push(b.phi);
                }
                out.extend_from_slice(&mesh.output_phases);
                out
            }
            DriftRealization::Layered(mesh) => {
                let mut out = Vec::new();
                for layer in mesh.phase_layers() {
                    out.extend_from_slice(layer);
                }
                out.extend_from_slice(mesh.output_phases());
                out
            }
        }
    }

    fn set_phases(&mut self, phases: &[f64]) {
        match self {
            DriftRealization::Rect(mesh) => {
                let mut it = phases.iter();
                for b in &mut mesh.blocks {
                    b.theta = *it.next().unwrap();
                    b.phi = *it.next().unwrap();
                }
                for p in &mut mesh.output_phases {
                    *p = *it.next().unwrap();
                }
                assert!(it.next().is_none(), "phase count mismatch");
            }
            DriftRealization::Layered(mesh) => {
                let mut it = phases.iter();
                for layer in mesh.phase_layers_mut() {
                    for p in layer.iter_mut() {
                        *p = *it.next().unwrap();
                    }
                }
                for p in mesh.output_phases_mut() {
                    *p = *it.next().unwrap();
                }
                assert!(it.next().is_none(), "phase count mismatch");
            }
        }
    }

    fn fidelity(&self, target: &CMatrix) -> f64 {
        match self {
            DriftRealization::Rect(mesh) => mesh.fidelity(target),
            DriftRealization::Layered(mesh) => {
                metrics::unitary_fidelity(target, &mesh.transfer_matrix())
            }
        }
    }
}

/// Quantizes a phase into the nearest of `levels` PCM fractions of the
/// full turn, returning the stored fraction in `[0, 1]`.
fn quantize_phase(phase: f64, levels: u32) -> f64 {
    let f = phase.rem_euclid(TAU) / TAU;
    let steps = (levels - 1) as f64;
    (f * steps).round() / steps
}

/// Fraction after `age_s` seconds of amorphous relaxation — the same
/// law as `PcmCell::apply_drift` applied once from the stored state.
fn drifted_fraction(stored: f64, nu: f64, age_s: f64) -> f64 {
    (stored + nu * (1.0 + age_s.max(0.0)).ln()).clamp(0.0, 1.0)
}

/// The campaign's shared target: a Haar-like unitary that is *exactly*
/// representable by an ideal-coupler layered mesh, so every
/// architecture competes on the same footing (the analytic
/// decompositions handle any unitary, and Fldzhyan's optimizer is not
/// penalized for a capped sweep budget). Deterministic in `(n, seed)`.
pub fn layered_target(n: usize, seed: u64) -> (LayeredMesh, CMatrix) {
    let mut rng = StdRng::seed_from_u64(parallel::split_seed(seed, 0));
    let mut generator = LayeredMesh::universal(n);
    generator.randomize_phases(&mut rng);
    let target = generator.transfer_matrix();
    (generator, target)
}

/// Runs one architecture's calibration-under-drift campaign at size `n`.
///
/// The mesh is programmed once (analytically for the rectangular
/// architectures, error-aware warm-started polish for Fldzhyan — its
/// phases start at the target's generating values and re-optimize
/// against the *fabricated* couplers), phases are quantized into PCM
/// levels, and the campaign then alternates drift steps with
/// threshold-triggered re-programming of the stored levels.
///
/// Deterministic in `(arch, n, cfg, seed)`; the target depends only on
/// `(n, seed)`, so all four architectures of one campaign age against
/// the same unitary.
pub fn drift_campaign(
    arch: MeshArchitecture,
    n: usize,
    cfg: &DriftCampaignConfig,
    seed: u64,
) -> DriftTrace {
    let (generator, target) = layered_target(n, seed);
    let arch_index = MeshArchitecture::ALL
        .iter()
        .position(|a| *a == arch)
        .unwrap() as u64;
    let mut rng = StdRng::seed_from_u64(parallel::split_seed(seed, 1 + arch_index));

    let mut realization = match arch {
        MeshArchitecture::Clements | MeshArchitecture::ClementsCompact => {
            let program = clements::decompose(&target);
            DriftRealization::Rect(FabricatedMesh::fabricate(
                &program,
                cfg.coupler_sigma,
                &mut rng,
            ))
        }
        MeshArchitecture::Reck => {
            let program = reck::decompose(&target);
            DriftRealization::Rect(FabricatedMesh::fabricate(
                &program,
                cfg.coupler_sigma,
                &mut rng,
            ))
        }
        MeshArchitecture::Fldzhyan => {
            let mut mesh = generator;
            mesh.perturb_couplers(&mut rng, cfg.coupler_sigma);
            mesh.program_unitary(&target, cfg.polish);
            DriftRealization::Layered(mesh)
        }
    };

    let fresh_fidelity = realization.fidelity(&target);
    let stored: Vec<f64> = realization
        .phases()
        .iter()
        .map(|&p| quantize_phase(p, cfg.levels))
        .collect();
    let stored_phases: Vec<f64> = stored.iter().map(|&f| f * TAU).collect();
    // Per-cell drift coefficients: fabrication-frozen dispersion.
    let nus: Vec<f64> = stored
        .iter()
        .map(|_| {
            (cfg.nu * (1.0 + cfg.nu_sigma * neuropulsim_linalg::random::gaussian(&mut rng)))
                .max(0.0)
        })
        .collect();
    realization.set_phases(&stored_phases);
    let stored_fidelity = realization.fidelity(&target);
    let floor = cfg.retain_frac * stored_fidelity;

    let mut age = 0.0f64;
    let mut recalibrations = 0usize;
    let mut min_fidelity = f64::INFINITY;
    let mut worst_excursion = f64::INFINITY;
    let mut sum = 0.0f64;
    let mut final_fidelity = stored_fidelity;
    for _ in 0..cfg.steps {
        age += cfg.seconds_per_step;
        let drifted: Vec<f64> = stored
            .iter()
            .zip(&nus)
            .map(|(&f, &nu)| drifted_fraction(f, nu, age) * TAU)
            .collect();
        realization.set_phases(&drifted);
        let mut fidelity = realization.fidelity(&target);
        worst_excursion = worst_excursion.min(fidelity);
        if fidelity < floor {
            // Recalibrate: re-program every PCM cell back onto its
            // stored level, which also resets the relaxation clock.
            realization.set_phases(&stored_phases);
            age = 0.0;
            recalibrations += 1;
            fidelity = stored_fidelity;
        }
        min_fidelity = min_fidelity.min(fidelity);
        sum += fidelity;
        final_fidelity = fidelity;
    }
    DriftTrace {
        arch,
        n,
        fresh_fidelity,
        stored_fidelity,
        floor,
        min_fidelity,
        worst_excursion,
        mean_fidelity: if cfg.steps > 0 {
            sum / cfg.steps as f64
        } else {
            stored_fidelity
        },
        final_fidelity,
        recalibrations,
        steps: cfg.steps,
    }
}

/// Runs the campaign for all four architectures against one shared
/// target, fanned out over up to `threads` workers; deterministic in
/// `(n, cfg, seed)` and independent of the thread count.
pub fn drift_campaign_all(
    n: usize,
    cfg: &DriftCampaignConfig,
    seed: u64,
    threads: usize,
) -> Vec<DriftTrace> {
    parallel::par_map_indexed(MeshArchitecture::ALL.len(), threads, |i| {
        drift_campaign(MeshArchitecture::ALL[i], n, cfg, seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clements::decompose;
    use neuropulsim_linalg::random::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, sigma: f64, seed: u64) -> (CMatrix, FabricatedMesh) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = haar_unitary(&mut rng, n);
        let program = decompose(&target);
        let mesh = FabricatedMesh::fabricate(&program, sigma, &mut rng);
        (target, mesh)
    }

    #[test]
    fn perfect_fabrication_needs_no_calibration() {
        let (target, mesh) = setup(6, 0.0, 1);
        assert!(mesh.fidelity(&target) > 1.0 - 1e-10);
    }

    #[test]
    fn calibration_recovers_imbalanced_mesh() {
        // Seed chosen so the fabricated imbalance is recoverable by a
        // coordinate sweep under the vendored xoshiro-based StdRng stream
        // (which differs from upstream rand's ChaCha stream).
        let (target, mut mesh) = setup(6, 0.08, 2);
        let before = mesh.fidelity(&target);
        assert!(before < 0.98, "imbalance should hurt first: {before}");
        let after = mesh.calibrate(&target, 60);
        assert!(
            after > 0.999,
            "calibration should recover fidelity: {before} -> {after}"
        );
        assert!(after > before);
    }

    #[test]
    fn calibration_is_monotone_across_sweeps() {
        let (target, mut mesh) = setup(5, 0.1, 5);
        let f1 = mesh.calibrate(&target, 1);
        let f5 = mesh.calibrate(&target, 5);
        assert!(f5 >= f1 - 1e-12, "{f5} !>= {f1}");
    }

    #[test]
    fn calibrated_matches_fldzhyan_robustness() {
        // The headline: an oblivious Clements mesh loses to the
        // error-aware layered mesh under imbalance, but a *calibrated*
        // Clements mesh gets the robustness back.
        let sigma = 0.1;
        let (target, mut mesh) = setup(6, sigma, 7);
        let oblivious = mesh.fidelity(&target);
        let calibrated = mesh.calibrate(&target, 60);
        assert!(calibrated - oblivious > 0.02, "{oblivious} -> {calibrated}");
        assert!(calibrated > 0.995, "calibrated {calibrated}");
    }

    #[test]
    fn calibration_to_wrong_size_panics() {
        let (_, mut mesh) = setup(4, 0.05, 9);
        let other = CMatrix::identity(5);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mesh.calibrate(&other, 1)));
        assert!(result.is_err());
    }

    #[test]
    fn transfer_is_unitary_for_lossless_fabrication() {
        let (_, mesh) = setup(6, 0.1, 11);
        assert!(mesh.transfer_matrix().is_unitary(1e-10));
    }

    #[test]
    fn drift_law_matches_pcm_cell() {
        use neuropulsim_photonics::pcm::{PcmCell, PcmMaterial};
        for &(f0, nu, age) in &[(0.2, 1e-3, 50.0), (0.9, 5e-3, 1e4), (0.0, 1e-2, 3.0)] {
            let mut cell = PcmCell::new(PcmMaterial::Gsst);
            cell.set_state(f0);
            cell.apply_drift(age, nu);
            let ours = drifted_fraction(f0, nu, age);
            assert!(
                (cell.crystalline_fraction() - ours).abs() < 1e-15,
                "f0={f0} nu={nu} age={age}: {} vs {ours}",
                cell.crystalline_fraction()
            );
        }
    }

    #[test]
    fn quantization_rounds_to_nearest_level() {
        assert_eq!(quantize_phase(0.0, 2), 0.0);
        assert_eq!(quantize_phase(TAU * 0.74, 101), 0.74);
        // Wrapping: a negative phase lands on the equivalent fraction.
        assert!((quantize_phase(-TAU * 0.25, 4096) - 0.75).abs() < 1e-3);
    }

    #[test]
    fn drift_campaign_recalibrates_and_holds_the_floor() {
        let cfg = DriftCampaignConfig {
            steps: 24,
            seconds_per_step: 30.0,
            nu: 3e-3,
            polish: ProgramOptions {
                max_sweeps: 20,
                tol: 1e-10,
            },
            ..DriftCampaignConfig::default()
        };
        let traces = drift_campaign_all(6, &cfg, 21, 2);
        assert_eq!(traces.len(), MeshArchitecture::ALL.len());
        for t in &traces {
            assert!(
                t.min_fidelity >= t.floor - 1e-12,
                "{}: min {} below floor {}",
                t.arch,
                t.min_fidelity,
                t.floor
            );
            assert!(
                t.worst_excursion < t.stored_fidelity - 1e-4,
                "{}: drift should be visible ({} vs {})",
                t.arch,
                t.worst_excursion,
                t.stored_fidelity
            );
            // 4096-level storage quantizes phases to ~1e-3 rad; the
            // fidelity moves only marginally (either direction — the
            // programmed point need not be a perfect optimum).
            assert!(
                (t.stored_fidelity - t.fresh_fidelity).abs() < 1e-3,
                "{}: stored {} vs fresh {}",
                t.arch,
                t.stored_fidelity,
                t.fresh_fidelity
            );
            assert_eq!(t.steps, 24);
        }
        // The error-oblivious analytic meshes lean on the recalibration
        // loop; the error-aware layered mesh both starts higher and
        // needs fewer recalibrations — its tolerance pays off.
        let by_arch = |a: MeshArchitecture| traces.iter().find(|t| t.arch == a).unwrap();
        let clements = by_arch(MeshArchitecture::Clements);
        let fldzhyan = by_arch(MeshArchitecture::Fldzhyan);
        assert!(clements.recalibrations >= 1, "clements never recalibrated");
        assert!(
            fldzhyan.fresh_fidelity > clements.fresh_fidelity,
            "error-aware programming should beat oblivious decomposition under imbalance"
        );
        assert!(fldzhyan.recalibrations <= clements.recalibrations);
        // Determinism across thread counts.
        assert_eq!(traces, drift_campaign_all(6, &cfg, 21, 1));
    }
}

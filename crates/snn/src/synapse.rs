//! Non-volatile photonic synapses: PCM patches on waveguides whose
//! transmission is the synaptic weight (Feldmann et al., *Nature* 2019 —
//! the work the paper's §3 builds its SNN vision on).
//!
//! Crystallizing the patch *absorbs* more light, so SET pulses
//! **depress** the weight and (partial) amorphization **potentiates** it.
//! The accumulation behaviour of partial SET pulses gives the graded,
//! multilevel weight updates STDP needs.

use neuropulsim_photonics::pcm::{PcmCell, PcmMaterial, PcmProgramming};
use neuropulsim_photonics::units::TELECOM_WAVELENGTH;
use std::f64::consts::TAU;

/// A PCM synapse: weight = normalized optical transmission of the patch.
///
/// # Examples
///
/// ```
/// use neuropulsim_snn::synapse::PcmSynapse;
///
/// let mut s = PcmSynapse::new();
/// assert!((s.weight() - 1.0).abs() < 1e-12); // amorphous = transparent
/// s.depress();
/// assert!(s.weight() < 1.0);
/// s.potentiate();
/// // Potentiation re-amorphizes toward full transmission.
/// assert!(s.weight() > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PcmSynapse {
    cell: PcmCell,
    levels: u32,
    level: u32,
    gamma: f64,
    patch_length: f64,
}

impl PcmSynapse {
    /// Creates a fully potentiated (amorphous) GST synapse with 16 levels.
    pub fn new() -> Self {
        PcmSynapse::with_config(PcmMaterial::Gst225, 16)
    }

    /// Creates a synapse with the given material and level count.
    ///
    /// The patch is sized so the fully crystalline state transmits ~10% —
    /// a usable weight dynamic range.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn with_config(material: PcmMaterial, levels: u32) -> Self {
        assert!(levels >= 2, "synapse needs at least 2 levels");
        let gamma = 0.3; // strong overlap: patch sits on the waveguide core
                         // Absorption at full crystallization: field t = exp(-2 pi k g L / lambda).
                         // Pick L so that power transmission at x=1 is ~0.1 (field ~0.316).
        let k_c = material.effective_index(1.0).im.max(1e-6);
        let target_field_t: f64 = 0.316;
        let patch_length = -target_field_t.ln() * TELECOM_WAVELENGTH / (TAU * gamma * k_c);
        PcmSynapse {
            cell: PcmCell::with_programming(material, PcmProgramming::default()),
            levels,
            level: 0,
            gamma,
            patch_length,
        }
    }

    /// The synaptic weight: patch *power* transmission normalized to the
    /// amorphous state, in `(0, 1]`.
    pub fn weight(&self) -> f64 {
        let x = self.cell.crystalline_fraction();
        self.transmission(x) / self.transmission(0.0)
    }

    fn transmission(&self, x: f64) -> f64 {
        let k = self.cell.material().effective_index(x).im;
        // Power transmission: exp(-2 * alpha_field * L).
        (-2.0 * TAU / TELECOM_WAVELENGTH * self.gamma * k * self.patch_length).exp()
    }

    /// The current discrete level (0 = amorphous = strongest weight).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Number of programmable levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Depresses the weight by one level (one SET pulse accumulates
    /// crystallization). Saturates at the weakest level.
    pub fn depress(&mut self) {
        if self.level + 1 < self.levels {
            self.level += 1;
            self.cell.program_level(self.level, self.levels);
        }
    }

    /// Potentiates the weight by one level (partial melt-quench
    /// re-amorphization). Saturates at the strongest level.
    pub fn potentiate(&mut self) {
        if self.level > 0 {
            self.level -= 1;
            self.cell.program_level(self.level, self.levels);
        }
    }

    /// Applies a signed number of plasticity steps: positive potentiates,
    /// negative depresses.
    pub fn apply_steps(&mut self, steps: i32) {
        for _ in 0..steps.unsigned_abs() {
            if steps > 0 {
                self.potentiate();
            } else {
                self.depress();
            }
        }
    }

    /// Programs directly to a weight in `[0, 1]` (nearest level).
    ///
    /// # Panics
    ///
    /// Panics if `w` is outside `[0, 1]`.
    pub fn set_weight(&mut self, w: f64) {
        assert!((0.0..=1.0).contains(&w), "weight must be in [0, 1]");
        // Find the level whose weight is closest.
        let mut best = 0u32;
        let mut best_err = f64::INFINITY;
        for l in 0..self.levels {
            let x = l as f64 / (self.levels - 1) as f64;
            let wl = self.transmission(x) / self.transmission(0.0);
            let err = (wl - w).abs();
            if err < best_err {
                best_err = err;
                best = l;
            }
        }
        self.level = best;
        self.cell.program_level(best, self.levels);
    }

    /// Total programming energy spent on this synapse so far \[J\].
    pub fn programming_energy(&self) -> f64 {
        self.cell.programming_energy()
    }

    /// Total number of programming pulses applied so far.
    pub fn pulse_count(&self) -> u64 {
        self.cell.pulse_count()
    }

    /// Applies PCM retention drift to the patch: amorphous-phase
    /// relaxation shifts the crystalline fraction (and hence the weight)
    /// by `nu * ln(1 + t)` until the next programming pulse snaps the
    /// cell back onto its quantized level. Delegates to
    /// [`PcmCell::apply_drift`], the same model the accelerator's
    /// attenuator drift uses.
    pub fn apply_drift(&mut self, elapsed_s: f64, nu: f64) {
        self.cell.apply_drift(elapsed_s, nu);
    }

    /// Static hold power — zero, the non-volatility selling point.
    pub fn hold_power(&self) -> f64 {
        0.0
    }
}

impl Default for PcmSynapse {
    fn default() -> Self {
        PcmSynapse::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_starts_at_one_and_is_monotone_in_level() {
        let mut s = PcmSynapse::new();
        assert!((s.weight() - 1.0).abs() < 1e-12);
        let mut prev = s.weight();
        for _ in 0..(s.levels() - 1) {
            s.depress();
            let w = s.weight();
            assert!(w < prev, "weight must fall with each SET pulse");
            prev = w;
        }
    }

    #[test]
    fn weight_dynamic_range_is_usable() {
        let mut s = PcmSynapse::new();
        for _ in 0..s.levels() {
            s.depress();
        }
        let w_min = s.weight();
        assert!(w_min < 0.25, "fully depressed weight {w_min} too strong");
        assert!(
            w_min > 0.001,
            "fully depressed weight {w_min} unusably dark"
        );
    }

    #[test]
    fn depress_saturates() {
        let mut s = PcmSynapse::with_config(PcmMaterial::Gst225, 4);
        for _ in 0..10 {
            s.depress();
        }
        assert_eq!(s.level(), 3);
    }

    #[test]
    fn potentiate_saturates() {
        let mut s = PcmSynapse::new();
        s.potentiate();
        assert_eq!(s.level(), 0);
    }

    #[test]
    fn potentiation_costs_reset_energy() {
        let mut s = PcmSynapse::new();
        s.depress();
        s.depress();
        let e = s.programming_energy();
        s.potentiate();
        assert!(s.programming_energy() > e, "amorphization is not free");
        assert_eq!(s.hold_power(), 0.0);
    }

    #[test]
    fn apply_steps_signed() {
        let mut s = PcmSynapse::new();
        s.apply_steps(-3);
        assert_eq!(s.level(), 3);
        s.apply_steps(2);
        assert_eq!(s.level(), 1);
        s.apply_steps(0);
        assert_eq!(s.level(), 1);
    }

    #[test]
    fn set_weight_roundtrip() {
        let mut s = PcmSynapse::new();
        for target in [1.0, 0.7, 0.4, 0.2] {
            s.set_weight(target);
            // Quantized: within one level spacing of the target.
            assert!(
                (s.weight() - target).abs() < 0.2,
                "target {target}, got {}",
                s.weight()
            );
        }
    }

    #[test]
    #[should_panic(expected = "weight must be in")]
    fn set_weight_rejects_out_of_range() {
        PcmSynapse::new().set_weight(1.5);
    }
}

//! Spiking neuron models for photonic SNNs.
//!
//! Two levels of abstraction:
//!
//! - [`PhotonicNeuron`] wraps the full Yamada excitable-laser ODEs from
//!   [`neuropulsim_photonics::laser`] — the ground-truth device model;
//! - [`LifNeuron`] is a fast leaky-integrate-and-fire behavioural model
//!   whose threshold and refractory period are calibrated against the
//!   Yamada dynamics, used to simulate whole networks cheaply.
//!
//! The calibration claim (LIF reproduces the laser's threshold / spike /
//! refractory behaviour) is enforced by tests in this module.

use neuropulsim_photonics::laser::{YamadaLaser, YamadaParams};

/// The one true LIF update: advances a single neuron's `(v,
/// refractory_left)` state by one step of length `dt` under drive
/// `input`, returning `true` on a spike.
///
/// Every engine in this crate — [`LifNeuron::step`], [`NeuronArray::step`]
/// and the event-driven sparse engine in [`crate::sparse`] — funnels
/// through this function, so their floating-point behaviour is identical
/// *by construction*: same expressions, same rounding, same spike
/// decisions. The conformance suite (`oracle::snn_ref`) checks the
/// result bit-for-bit against an independently written reference.
#[inline(always)]
pub fn lif_update(
    v: &mut f64,
    refractory_left: &mut f64,
    tau: f64,
    threshold: f64,
    refractory: f64,
    input: f64,
    dt: f64,
) -> bool {
    if *refractory_left > 0.0 {
        *refractory_left -= dt;
        *v = 0.0;
        return false;
    }
    *v += (input - *v / tau) * dt;
    if *v >= threshold {
        *v = 0.0;
        *refractory_left = refractory;
        true
    } else {
        false
    }
}

/// A neuron driven by the full Yamada excitable-laser model.
///
/// Inputs arrive as gain perturbations (optical pumping by upstream
/// spikes); the output is the laser's intensity spike train.
#[derive(Debug, Clone, PartialEq)]
pub struct PhotonicNeuron {
    laser: YamadaLaser,
    /// Gain kick per unit of weighted input.
    input_gain: f64,
}

impl PhotonicNeuron {
    /// Creates a neuron with default Yamada parameters and the given
    /// input coupling gain.
    pub fn new(input_gain: f64) -> Self {
        let mut laser = YamadaLaser::new(YamadaParams::default());
        laser.settle();
        PhotonicNeuron { laser, input_gain }
    }

    /// Injects a weighted input (an upstream spike through a synapse of
    /// weight `w`) and evolves for `duration` normalized time units.
    /// Returns `true` if the neuron spiked during the window.
    pub fn excite(&mut self, w: f64, duration: f64) -> bool {
        let before = self.laser.spike_count();
        self.laser.perturb_gain(self.input_gain * w);
        let _ = self.laser.run(duration);
        self.laser.spike_count() > before
    }

    /// Evolves quietly for `duration` units (recovery).
    pub fn relax(&mut self, duration: f64) {
        let _ = self.laser.run(duration);
    }

    /// Total spikes fired since creation/settle.
    pub fn spike_count(&self) -> usize {
        self.laser.spike_count()
    }

    /// Borrow the underlying laser.
    pub fn laser(&self) -> &YamadaLaser {
        &self.laser
    }
}

/// A leaky-integrate-and-fire neuron, the behavioural stand-in for the
/// excitable laser in network-scale simulations.
///
/// Dynamics per step of length `dt`:
/// `v += (input - v / tau) * dt`; on `v >= threshold` (outside the
/// refractory window) the neuron emits a spike and resets.
///
/// # Examples
///
/// ```
/// use neuropulsim_snn::neuron::LifNeuron;
///
/// let mut n = LifNeuron::default();
/// let mut spiked = false;
/// for _ in 0..100 {
///     spiked |= n.step(1.0, 0.1);
/// }
/// assert!(spiked);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifNeuron {
    /// Membrane potential (dimensionless).
    v: f64,
    /// Leak time constant.
    pub tau: f64,
    /// Firing threshold.
    pub threshold: f64,
    /// Refractory period (time units).
    pub refractory: f64,
    refractory_left: f64,
}

impl LifNeuron {
    /// Creates a neuron with explicit parameters.
    pub fn new(tau: f64, threshold: f64, refractory: f64) -> Self {
        LifNeuron {
            v: 0.0,
            tau,
            threshold,
            refractory,
            refractory_left: 0.0,
        }
    }

    /// Current membrane potential.
    pub fn potential(&self) -> f64 {
        self.v
    }

    /// `true` if the neuron is inside its refractory window.
    pub fn is_refractory(&self) -> bool {
        self.refractory_left > 0.0
    }

    /// Advances one step of length `dt` under input drive `input`.
    /// Returns `true` if the neuron fires on this step.
    pub fn step(&mut self, input: f64, dt: f64) -> bool {
        lif_update(
            &mut self.v,
            &mut self.refractory_left,
            self.tau,
            self.threshold,
            self.refractory,
            input,
            dt,
        )
    }

    /// Resets potential and refractory state.
    pub fn reset(&mut self) {
        self.v = 0.0;
        self.refractory_left = 0.0;
    }
}

impl Default for LifNeuron {
    /// Parameters calibrated to the default Yamada operating point:
    /// threshold comparable to the laser's dynamic excitability threshold
    /// (~0.5 gain-kick units) and a refractory period of ~50 normalized
    /// units (the gain-recovery timescale `1/gamma`).
    fn default() -> Self {
        LifNeuron::new(10.0, 0.5, 50.0)
    }
}

/// A population of LIF neurons in structure-of-arrays layout: one
/// contiguous plane per state variable instead of a `Vec<LifNeuron>`.
///
/// Network-scale simulation touches every neuron every timestep; keeping
/// each state variable contiguous lets those sweeps stream through cache
/// (and autovectorize) instead of striding over interleaved structs. The
/// per-neuron dynamics are exactly [`LifNeuron::step`], enforced by test.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuronArray {
    v: Vec<f64>,
    tau: Vec<f64>,
    threshold: Vec<f64>,
    refractory: Vec<f64>,
    refractory_left: Vec<f64>,
}

impl NeuronArray {
    /// Creates `count` neurons sharing the same parameters.
    pub fn uniform(count: usize, tau: f64, threshold: f64, refractory: f64) -> Self {
        NeuronArray {
            v: vec![0.0; count],
            tau: vec![tau; count],
            threshold: vec![threshold; count],
            refractory: vec![refractory; count],
            refractory_left: vec![0.0; count],
        }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Membrane potential of neuron `j`.
    pub fn potential(&self, j: usize) -> f64 {
        self.v[j]
    }

    /// Sets the firing threshold of neuron `j`.
    pub fn set_threshold(&mut self, j: usize, threshold: f64) {
        self.threshold[j] = threshold;
    }

    /// Advances neuron `j` one step of length `dt` under drive `input`;
    /// returns `true` if it fires. Same dynamics as [`LifNeuron::step`].
    pub fn step(&mut self, j: usize, input: f64, dt: f64) -> bool {
        lif_update(
            &mut self.v[j],
            &mut self.refractory_left[j],
            self.tau[j],
            self.threshold[j],
            self.refractory[j],
            input,
            dt,
        )
    }

    /// Resets every neuron's potential and refractory state.
    pub fn reset_all(&mut self) {
        self.v.fill(0.0);
        self.refractory_left.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lif_integrates_and_fires() {
        let mut n = LifNeuron::new(10.0, 1.0, 5.0);
        let mut fired = 0;
        for _ in 0..200 {
            if n.step(0.5, 0.1) {
                fired += 1;
            }
        }
        assert!(fired > 0, "constant drive above threshold must fire");
    }

    #[test]
    fn lif_subthreshold_never_fires() {
        let mut n = LifNeuron::new(10.0, 1.0, 5.0);
        // Steady state of v is input * tau = 0.05 * 10 = 0.5 < threshold.
        for _ in 0..2000 {
            assert!(!n.step(0.05, 0.1));
        }
        assert!(n.potential() < 1.0);
    }

    #[test]
    fn lif_refractory_blocks_firing() {
        let mut n = LifNeuron::new(10.0, 0.5, 10.0);
        // Drive hard until first spike.
        let mut t_first = None;
        for k in 0..1000 {
            if n.step(2.0, 0.1) {
                t_first = Some(k);
                break;
            }
        }
        let t_first = t_first.expect("must fire");
        // Next spike cannot come within the refractory window (100 steps).
        let mut gap = 0;
        for _ in 0..1000 {
            gap += 1;
            if n.step(2.0, 0.1) {
                break;
            }
        }
        assert!(
            gap >= 100,
            "spike gap {gap} steps < refractory (first at {t_first})"
        );
    }

    #[test]
    fn lif_reset_clears_state() {
        let mut n = LifNeuron::default();
        let _ = n.step(5.0, 0.1);
        n.reset();
        assert_eq!(n.potential(), 0.0);
        assert!(!n.is_refractory());
    }

    #[test]
    fn neuron_array_matches_lif_step_for_step() {
        let mut single = LifNeuron::new(8.0, 1.1, 3.0);
        let mut array = NeuronArray::uniform(2, 8.0, 1.1, 3.0);
        // A drive pattern that crosses threshold and exercises refractory.
        for k in 0..400 {
            let input = 0.8 + 0.6 * ((k % 17) as f64 - 8.0) / 8.0;
            let a = single.step(input, 0.1);
            let b = array.step(0, input, 0.1);
            assert_eq!(a, b, "fire mismatch at step {k}");
            assert_eq!(single.potential(), array.potential(0), "v at step {k}");
        }
        // Neuron 1 was never stepped and stays at rest.
        assert_eq!(array.potential(1), 0.0);
        array.reset_all();
        assert_eq!(array.potential(0), 0.0);
        assert_eq!(array.len(), 2);
    }

    #[test]
    fn photonic_neuron_threshold_behaviour() {
        let mut n = PhotonicNeuron::new(1.0);
        assert!(!n.excite(0.1, 300.0), "weak input must not fire");
        n.relax(1000.0);
        assert!(n.excite(1.0, 300.0), "strong input must fire");
    }

    #[test]
    fn photonic_neuron_refractoriness() {
        // Near-threshold kicks (rest threshold ~0.76) expose the
        // refractory window; far-above-threshold kicks can re-fire early
        // (relative refractoriness), so probe just above threshold.
        let mut n = PhotonicNeuron::new(1.0);
        assert!(n.excite(0.85, 60.0), "suprathreshold kick fires");
        // ~20 units after the spike the gain is still depleted.
        assert!(!n.excite(0.85, 60.0), "refractory window must block");
        n.relax(2000.0);
        assert!(n.excite(0.85, 300.0), "recovers after relaxation");
    }

    #[test]
    fn lif_matches_laser_threshold_qualitatively() {
        // The LIF default threshold must separate the same weak/strong
        // inputs as the Yamada neuron (applied as one-step impulses).
        let weak = 0.1;
        let strong = 1.0;
        let impulse = |w: f64| {
            let mut n = LifNeuron::default();
            // Impulse: deliver w over one short step, then coast.
            let mut fired = n.step(w / 0.1, 0.1);
            for _ in 0..100 {
                fired |= n.step(0.0, 0.1);
            }
            fired
        };
        assert!(!impulse(weak));
        assert!(impulse(strong));
    }
}

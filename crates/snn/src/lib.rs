//! # neuropulsim-snn
//!
//! Photonic spiking neural networks for the paper's §3: excitable
//! Q-switched laser neurons, non-volatile PCM synapses with accumulation
//! behaviour, spike-timing-dependent plasticity and winner-take-all
//! unsupervised learning.
//!
//! - [`neuron`]: Yamada-laser neurons ([`neuron::PhotonicNeuron`]) and the
//!   calibrated fast LIF stand-in ([`neuron::LifNeuron`]);
//! - [`synapse`]: PCM synapses whose optical transmission is the weight;
//! - [`stdp`]: the pairwise exponential STDP window, quantized to PCM
//!   programming pulses;
//! - [`encoding`]: latency and rate spike codes;
//! - [`network`]: a feedforward WTA layer that learns spike patterns
//!   unsupervised (experiment E6);
//! - [`sparse`]: the event-driven engine — CSR synapses, fire-queue
//!   propagation and lazy leak, scaling to millions of neurons, with a
//!   bit-identical dense baseline.
//!
//! # Examples
//!
//! ```
//! use neuropulsim_snn::encoding::latency_encode;
//! use neuropulsim_snn::network::SpikingLayer;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut layer = SpikingLayer::new(4, 2, &mut rng);
//! let stimulus = latency_encode(&[1.0, 1.0, 1.0, 1.0], 20.0);
//! let response = layer.present(&stimulus, 30.0, 0.5, false);
//! assert_eq!(response.outputs.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod encoding;
pub mod network;
pub mod neuron;
pub mod sparse;
pub mod stdp;
pub mod synapse;

//! A feedforward photonic spiking layer with PCM synapses, STDP learning
//! and winner-take-all competition — the substrate for the paper's §3
//! "viability of photonic spiking neural networks and bio-inspired
//! learning rules" experiment (E6).

use crate::encoding::SpikeTrain;
use crate::neuron::NeuronArray;
use crate::stdp::StdpRule;
use crate::synapse::PcmSynapse;
use neuropulsim_linalg::parallel;
use neuropulsim_photonics::pcm::PcmMaterial;
use rand::Rng;

/// A fully connected spiking layer: `inputs` channels onto `neurons`
/// excitable neurons, each input–neuron pair bridged by a [`PcmSynapse`].
///
/// Learning follows STDP with winner-take-all lateral inhibition and a
/// simple homeostatic threshold adaptation, the standard recipe for
/// unsupervised pattern specialization.
///
/// Internally the layer is laid out structure-of-arrays for the timestep
/// hot loop: neuron state lives in a [`NeuronArray`], synapses in one
/// flat row-major vector, and — crucially — the synaptic weights are
/// **cached** in a flat `f64` plane. A [`PcmSynapse::weight`] read walks
/// the material model (complex effective index + `exp`), far too costly
/// to repeat per neuron per impulse per timestep; the cache is refreshed
/// only when a synapse is actually reprogrammed.
#[derive(Debug, Clone)]
pub struct SpikingLayer {
    inputs: usize,
    neurons: NeuronArray,
    /// Flat row-major synapses: `synapses[j * inputs + i]` bridges input
    /// `i` to neuron `j`.
    synapses: Vec<PcmSynapse>,
    /// Cached `PcmSynapse::weight()` per synapse, same indexing.
    weight_cache: Vec<f64>,
    /// Homeostatic threshold offsets per neuron.
    threshold_offset: Vec<f64>,
    /// Base firing threshold (before homeostatic offsets). Should sit
    /// below the expected drive of a matching pattern (sum of its active
    /// weights) but above spurious single-input drive.
    pub base_threshold: f64,
    /// The plasticity rule.
    pub rule: StdpRule,
    /// Enable winner-take-all lateral inhibition.
    pub inhibition: bool,
    /// Threshold boost added to a neuron each time it wins.
    pub homeostasis_boost: f64,
    /// Worker count for the per-timestep drive computation (1 = serial).
    /// Drives are pure reads of the weight cache, so any value yields
    /// bit-identical results; widths > 1 only pay off for large layers.
    pub drive_threads: usize,
}

/// Result of presenting one stimulus.
#[derive(Debug, Clone, PartialEq)]
pub struct Presentation {
    /// Output spike trains per neuron.
    pub outputs: Vec<SpikeTrain>,
    /// Index of the first neuron to spike, if any.
    pub winner: Option<usize>,
}

impl SpikingLayer {
    /// Creates a layer with random mid-range initial weights.
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0` or `neurons == 0`.
    pub fn new<R: Rng + ?Sized>(inputs: usize, neurons: usize, rng: &mut R) -> Self {
        assert!(inputs > 0 && neurons > 0, "layer must be non-empty");
        let synapses: Vec<PcmSynapse> = (0..neurons * inputs)
            .map(|_| {
                let mut s = PcmSynapse::with_config(PcmMaterial::Gst225, 16);
                s.set_weight(rng.gen_range(0.4..0.8));
                s
            })
            .collect();
        let weight_cache = synapses.iter().map(PcmSynapse::weight).collect();
        SpikingLayer {
            inputs,
            neurons: NeuronArray::uniform(neurons, 8.0, 1.2, 1e9),
            synapses,
            weight_cache,
            threshold_offset: vec![0.0; neurons],
            base_threshold: 1.2,
            rule: StdpRule::default(),
            inhibition: true,
            homeostasis_boost: 0.12,
            drive_threads: 1,
        }
    }

    /// Number of input channels.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of neurons.
    pub fn neurons(&self) -> usize {
        self.neurons.len()
    }

    /// The weight matrix as a borrowed flat row-major view
    /// (`[neuron * inputs + input]`) — no per-call allocation.
    pub fn weights(&self) -> &[f64] {
        &self.weight_cache
    }

    /// The incoming weight row of neuron `j` (one entry per input).
    pub fn weight_row(&self, j: usize) -> &[f64] {
        &self.weight_cache[j * self.inputs..(j + 1) * self.inputs]
    }

    /// Total PCM programming energy spent on learning so far \[J\].
    pub fn learning_energy(&self) -> f64 {
        self.synapses.iter().map(|s| s.programming_energy()).sum()
    }

    /// Presents one stimulus (a spike train per input channel) for
    /// `duration` time units at resolution `dt`. Neuron state is reset
    /// before the presentation (trial-based protocol). If `learn` is set,
    /// STDP updates are applied when a neuron wins.
    ///
    /// Each input spike delivers an impulse equal to the synaptic weight
    /// to every (non-inhibited) downstream neuron. With winner-take-all
    /// inhibition, the first neuron to fire suppresses the others for the
    /// rest of the trial.
    ///
    /// # Panics
    ///
    /// Panics if `stimulus.len() != inputs`.
    pub fn present(
        &mut self,
        stimulus: &[SpikeTrain],
        duration: f64,
        dt: f64,
        learn: bool,
    ) -> Presentation {
        assert_eq!(stimulus.len(), self.inputs, "stimulus size mismatch");
        self.neurons.reset_all();
        let n_neurons = self.neurons.len();
        let steps = (duration / dt).ceil() as usize;
        let mut outputs = vec![SpikeTrain::new(); n_neurons];
        let mut winner: Option<usize> = None;
        // Per-trial buffers, allocated once; the per-step loop is
        // allocation-free apart from recording output spikes.
        let mut last_pre: Vec<Option<f64>> = vec![None; self.inputs];
        let mut spike_cursor = vec![0usize; self.inputs];
        let mut inhibited = vec![false; n_neurons];
        let mut impulses: Vec<usize> = Vec::with_capacity(self.inputs);
        let mut drives = vec![0.0; n_neurons];
        let mut fired_this_step: Vec<(usize, f64)> = Vec::with_capacity(n_neurons);

        for step in 0..steps {
            let t = step as f64 * dt;
            // Which inputs spike in [t, t + dt)?
            impulses.clear();
            for (i, train) in stimulus.iter().enumerate() {
                let times = train.times();
                while spike_cursor[i] < times.len() && times[spike_cursor[i]] < t + dt {
                    impulses.push(i);
                    last_pre[i] = Some(times[spike_cursor[i]]);
                    spike_cursor[i] += 1;
                }
            }
            self.compute_drives(&impulses, &inhibited, &mut drives);
            // Step every active neuron, collecting simultaneous firers so
            // the winner of a same-step race is the neuron with the
            // largest drive margin — not the lowest index (a tie-break
            // that would otherwise let neuron 0 hog every pattern).
            fired_this_step.clear();
            for j in 0..n_neurons {
                if inhibited[j] {
                    continue;
                }
                let effective_threshold = self.base_threshold + self.threshold_offset[j];
                self.neurons.set_threshold(j, effective_threshold);
                if self.neurons.step(j, drives[j] / dt, dt) {
                    fired_this_step.push((j, drives[j] - effective_threshold));
                }
            }
            if !fired_this_step.is_empty() {
                let step_winner: Vec<usize> = if self.inhibition {
                    // Largest margin wins the race; the rest are quenched
                    // by the lateral inhibition before their pulse forms.
                    let &(j, _) = fired_this_step
                        .iter()
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite margin"))
                        .expect("nonempty");
                    vec![j]
                } else {
                    fired_this_step.iter().map(|&(j, _)| j).collect()
                };
                for &j in &step_winner {
                    outputs[j].push(t);
                    if winner.is_none() {
                        winner = Some(j);
                    }
                    if learn {
                        self.apply_stdp(j, &last_pre, t);
                        self.threshold_offset[j] += self.homeostasis_boost;
                    }
                }
                if self.inhibition {
                    let j_win = step_winner[0];
                    for (k, flag) in inhibited.iter_mut().enumerate() {
                        if k != j_win {
                            *flag = true;
                        }
                    }
                }
            }
        }
        // Slow homeostatic decay for everyone (keeps thresholds bounded).
        for off in &mut self.threshold_offset {
            *off = (*off - 0.01).max(0.0);
        }
        Presentation { outputs, winner }
    }

    /// Impulse drive per neuron: the sum of cached weights of this step's
    /// spiking inputs. Pure reads of the weight cache, so fanning rows
    /// out over `drive_threads` scoped workers cannot change the result.
    fn compute_drives(&self, impulses: &[usize], inhibited: &[bool], drives: &mut [f64]) {
        let inputs = self.inputs;
        let weights = &self.weight_cache;
        let fill = |start: usize, chunk: &mut [f64]| {
            for (k, d) in chunk.iter_mut().enumerate() {
                let j = start + k;
                if inhibited[j] {
                    *d = 0.0;
                    continue;
                }
                let row = &weights[j * inputs..(j + 1) * inputs];
                let mut acc = 0.0;
                for &i in impulses {
                    acc += row[i];
                }
                *d = acc;
            }
        };
        if self.drive_threads > 1 {
            parallel::par_chunks_mut(drives, self.drive_threads, fill);
        } else {
            fill(0, drives);
        }
    }

    /// STDP on a post spike by neuron `j` at `t_post`: potentiate
    /// synapses whose input fired before (within the window), depress
    /// synapses whose input has not fired this trial (presynaptic-absence
    /// depression — the variant that gives fast pattern selectivity on
    /// WTA layers). Refreshes the weight cache for the touched row.
    fn apply_stdp(&mut self, j: usize, last_pre: &[Option<f64>], t_post: f64) {
        let row = &mut self.synapses[j * self.inputs..(j + 1) * self.inputs];
        let cache_row = &mut self.weight_cache[j * self.inputs..(j + 1) * self.inputs];
        for (i, (syn, w)) in row.iter_mut().zip(cache_row.iter_mut()).enumerate() {
            match last_pre[i] {
                Some(t_pre) => self.rule.apply(syn, t_post - t_pre + 1e-9),
                None => syn.depress(),
            }
            *w = syn.weight();
        }
    }

    /// Trains on labelled patterns for `epochs` passes and returns the
    /// winner map: for each pattern index, the neuron that responds.
    ///
    /// Patterns are presented latency-encoded over a 20-unit window.
    pub fn train_patterns(&mut self, patterns: &[Vec<f64>], epochs: usize) -> Vec<Option<usize>> {
        let t_window = 20.0;
        for _ in 0..epochs {
            for p in patterns {
                let stimulus = crate::encoding::latency_encode(p, t_window);
                let _ = self.present(&stimulus, t_window * 1.5, 0.5, true);
            }
        }
        // Evaluate with homeostatic offsets cleared so responsiveness
        // reflects the learned weights alone.
        for off in &mut self.threshold_offset {
            *off = 0.0;
        }
        patterns
            .iter()
            .map(|p| {
                let stimulus = crate::encoding::latency_encode(p, t_window);
                self.present(&stimulus, t_window * 1.5, 0.5, false).winner
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::latency_encode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn orthogonal_patterns() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0],
        ]
    }

    #[test]
    fn layer_construction() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = SpikingLayer::new(9, 3, &mut rng);
        assert_eq!(layer.inputs(), 9);
        assert_eq!(layer.neurons(), 3);
        let w = layer.weights();
        assert_eq!(w.len(), 3 * 9);
        assert_eq!(layer.weight_row(0).len(), 9);
        for &wi in w {
            assert!((0.0..=1.0).contains(&wi));
        }
    }

    #[test]
    fn weight_cache_tracks_programmed_synapses() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut layer = SpikingLayer::new(9, 3, &mut rng);
        let before = layer.weights().to_vec();
        let _ = layer.train_patterns(&orthogonal_patterns(), 2);
        let after = layer.weights().to_vec();
        assert_ne!(before, after, "learning must move some weights");
        // The cache must agree with the ground-truth synapse model.
        for (e, &w) in after.iter().enumerate() {
            let truth = layer.synapses[e].weight();
            assert_eq!(w, truth, "cache stale at flat index {e}");
        }
    }

    #[test]
    fn parallel_drive_is_bit_identical() {
        let patterns = orthogonal_patterns();
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(21);
            let mut layer = SpikingLayer::new(9, 3, &mut rng);
            layer.drive_threads = threads;
            let winners = layer.train_patterns(&patterns, 6);
            (winners, layer.weights().to_vec())
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn strong_stimulus_elicits_a_winner() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = SpikingLayer::new(9, 3, &mut rng);
        let stim = latency_encode(&[1.0; 9], 20.0);
        let p = layer.present(&stim, 30.0, 0.5, false);
        assert!(
            p.winner.is_some(),
            "nine coincident-ish inputs should fire someone"
        );
    }

    #[test]
    fn empty_stimulus_elicits_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = SpikingLayer::new(4, 2, &mut rng);
        let stim = vec![SpikeTrain::new(); 4];
        let p = layer.present(&stim, 30.0, 0.5, false);
        assert!(p.winner.is_none());
        assert!(p.outputs.iter().all(SpikeTrain::is_empty));
    }

    #[test]
    fn wta_inhibition_limits_simultaneous_winners() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = SpikingLayer::new(9, 3, &mut rng);
        layer.inhibition = true;
        let stim = latency_encode(&[1.0; 9], 20.0);
        let p = layer.present(&stim, 30.0, 0.5, false);
        let firing_neurons = p.outputs.iter().filter(|t| !t.is_empty()).count();
        assert!(
            firing_neurons <= 1,
            "WTA should allow at most one responder"
        );
    }

    #[test]
    fn stdp_learning_specializes_neurons() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = SpikingLayer::new(9, 3, &mut rng);
        let patterns = orthogonal_patterns();
        let winners = layer.train_patterns(&patterns, 12);
        // Every pattern gets a responder...
        assert!(
            winners.iter().all(Option::is_some),
            "all patterns should elicit a winner, got {winners:?}"
        );
        // ...and responders are distinct (each neuron specialized).
        let mut seen = std::collections::HashSet::new();
        for w in winners.iter().flatten() {
            seen.insert(*w);
        }
        assert_eq!(
            seen.len(),
            patterns.len(),
            "each pattern should claim its own neuron, winners {winners:?}"
        );
    }

    #[test]
    fn learning_shapes_weights_toward_patterns() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut layer = SpikingLayer::new(9, 3, &mut rng);
        let patterns = orthogonal_patterns();
        let winners = layer.train_patterns(&patterns, 12);
        for (p_idx, winner) in winners.iter().enumerate() {
            let j = winner.expect("winner exists");
            let row = layer.weight_row(j);
            let on: f64 = patterns[p_idx]
                .iter()
                .enumerate()
                .filter(|(_, &v)| v > 0.0)
                .map(|(i, _)| row[i])
                .sum::<f64>()
                / 3.0;
            let off: f64 = patterns[p_idx]
                .iter()
                .enumerate()
                .filter(|(_, &v)| v == 0.0)
                .map(|(i, _)| row[i])
                .sum::<f64>()
                / 6.0;
            assert!(
                on > off,
                "pattern {p_idx}: winner {j} on-weights {on} !> off-weights {off}"
            );
        }
    }

    #[test]
    fn learning_consumes_pcm_energy() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = SpikingLayer::new(9, 3, &mut rng);
        let e0 = layer.learning_energy();
        let _ = layer.train_patterns(&orthogonal_patterns(), 3);
        assert!(layer.learning_energy() > e0);
    }

    #[test]
    #[should_panic(expected = "stimulus size mismatch")]
    fn present_rejects_wrong_arity() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut layer = SpikingLayer::new(4, 2, &mut rng);
        let stim = vec![SpikeTrain::new(); 3];
        let _ = layer.present(&stim, 10.0, 0.5, false);
    }
}

//! Spike-timing-dependent plasticity (STDP) — the bio-inspired learning
//! rule the paper's §3 proposes to implement with PCM accumulation.
//!
//! The canonical pairwise exponential window:
//!
//! ```text
//!   dw(dt) = +A_plus  * exp(-dt / tau_plus)    if dt > 0 (pre before post)
//!   dw(dt) = -A_minus * exp(+dt / tau_minus)   if dt < 0 (post before pre)
//! ```
//!
//! where `dt = t_post - t_pre`. On PCM hardware the continuous `dw` is
//! realized as a discrete number of SET/partial-RESET pulses, which
//! [`StdpRule::steps`] computes for a synapse with a given level count.

use crate::synapse::PcmSynapse;

/// Parameters of the pairwise exponential STDP window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StdpRule {
    /// Potentiation amplitude (weight units) at `dt -> 0+`.
    pub a_plus: f64,
    /// Depression amplitude (weight units) at `dt -> 0-`.
    pub a_minus: f64,
    /// Potentiation decay constant (time units).
    pub tau_plus: f64,
    /// Depression decay constant (time units).
    pub tau_minus: f64,
}

impl StdpRule {
    /// A commonly used asymmetric window: slightly stronger depression,
    /// equal time constants.
    pub fn new(a_plus: f64, a_minus: f64, tau_plus: f64, tau_minus: f64) -> Self {
        StdpRule {
            a_plus,
            a_minus,
            tau_plus,
            tau_minus,
        }
    }

    /// The continuous weight change for a pre→post delay
    /// `dt = t_post - t_pre`.
    pub fn delta_w(&self, dt: f64) -> f64 {
        if dt == 0.0 {
            0.0
        } else if dt > 0.0 {
            self.a_plus * (-dt / self.tau_plus).exp()
        } else {
            -self.a_minus * (dt / self.tau_minus).exp()
        }
    }

    /// The number of discrete plasticity steps (positive = potentiate)
    /// that realizes `delta_w(dt)` on a synapse with `levels` levels and
    /// unit weight range.
    pub fn steps(&self, dt: f64, levels: u32) -> i32 {
        let dw = self.delta_w(dt);
        let step_size = 1.0 / (levels.max(2) - 1) as f64;
        (dw / step_size).round() as i32
    }

    /// Applies the rule for one spike pair to a PCM synapse.
    pub fn apply(&self, synapse: &mut PcmSynapse, dt: f64) {
        let steps = self.steps(dt, synapse.levels());
        synapse.apply_steps(steps);
    }
}

impl Default for StdpRule {
    /// `A+ = 0.2, A- = 0.22, tau+ = tau- = 20` time units — a window that
    /// moves a 16-level synapse by up to ~3 levels per causal pair.
    fn default() -> Self {
        StdpRule::new(0.2, 0.22, 20.0, 20.0)
    }
}

/// An online STDP tracker for one synapse: remembers the last pre- and
/// post-synaptic spike times and applies the nearest-pair rule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StdpTracker {
    last_pre: Option<f64>,
    last_post: Option<f64>,
}

impl StdpTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a presynaptic spike at time `t`; if a postsynaptic spike
    /// happened earlier, applies the (negative-`dt`) depression branch.
    pub fn on_pre(&mut self, t: f64, rule: &StdpRule, synapse: &mut PcmSynapse) {
        self.last_pre = Some(t);
        if let Some(t_post) = self.last_post {
            rule.apply(synapse, t_post - t);
        }
    }

    /// Records a postsynaptic spike at time `t`; if a presynaptic spike
    /// happened earlier, applies the (positive-`dt`) potentiation branch.
    pub fn on_post(&mut self, t: f64, rule: &StdpRule, synapse: &mut PcmSynapse) {
        self.last_post = Some(t);
        if let Some(t_pre) = self.last_pre {
            rule.apply(synapse, t - t_pre);
        }
    }

    /// Clears spike memory (between trials).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_signs() {
        let r = StdpRule::default();
        assert!(r.delta_w(5.0) > 0.0, "causal pair potentiates");
        assert!(r.delta_w(-5.0) < 0.0, "anti-causal pair depresses");
        assert_eq!(r.delta_w(0.0), 0.0);
    }

    #[test]
    fn window_decays_with_delay() {
        let r = StdpRule::default();
        assert!(r.delta_w(1.0) > r.delta_w(10.0));
        assert!(r.delta_w(10.0) > r.delta_w(100.0));
        assert!(r.delta_w(-1.0) < r.delta_w(-10.0));
    }

    #[test]
    fn window_peak_amplitudes() {
        let r = StdpRule::new(0.3, 0.4, 10.0, 10.0);
        assert!((r.delta_w(1e-9) - 0.3).abs() < 1e-6);
        assert!((r.delta_w(-1e-9) + 0.4).abs() < 1e-6);
    }

    #[test]
    fn steps_quantize_the_window() {
        let r = StdpRule::default();
        // Near-coincident causal pair on a 16-level synapse:
        // 0.2 / (1/15) = 3 steps.
        assert_eq!(r.steps(0.1, 16), 3);
        // Long delay: no change.
        assert_eq!(r.steps(200.0, 16), 0);
        // Anti-causal: negative steps.
        assert!(r.steps(-0.1, 16) < 0);
    }

    #[test]
    fn apply_moves_synapse_in_the_right_direction() {
        let r = StdpRule::default();
        let mut s = PcmSynapse::new();
        // Depress from full weight (potentiation saturates at level 0).
        r.apply(&mut s, -1.0);
        let depressed = s.weight();
        assert!(depressed < 1.0);
        // Causal pair now potentiates back up.
        r.apply(&mut s, 1.0);
        assert!(s.weight() > depressed);
    }

    #[test]
    fn tracker_applies_on_both_orders() {
        let r = StdpRule::default();
        let mut s = PcmSynapse::new();
        s.apply_steps(-8); // mid-range start
        let w0 = s.weight();

        // pre at t=0, post at t=2 -> potentiation.
        let mut tr = StdpTracker::new();
        tr.on_pre(0.0, &r, &mut s);
        tr.on_post(2.0, &r, &mut s);
        assert!(s.weight() > w0, "causal order should potentiate");

        let w1 = s.weight();
        // post at t=10, pre at t=12 -> depression.
        let mut tr2 = StdpTracker::new();
        tr2.on_post(10.0, &r, &mut s);
        tr2.on_pre(12.0, &r, &mut s);
        assert!(s.weight() < w1, "anti-causal order should depress");
    }

    #[test]
    fn tracker_reset_forgets() {
        let r = StdpRule::default();
        let mut s = PcmSynapse::new();
        s.apply_steps(-8);
        let w = s.weight();
        let mut tr = StdpTracker::new();
        tr.on_pre(0.0, &r, &mut s);
        tr.reset();
        tr.on_post(1.0, &r, &mut s); // no remembered pre: no change
        assert_eq!(s.weight(), w);
    }
}

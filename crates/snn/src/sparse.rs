//! Event-driven sparse SNN engine: fire-queue propagation over CSR
//! synapses, scaling to millions of neurons.
//!
//! The per-tick pipeline (modeled on burst-engine NPU designs):
//!
//! 1. **propagate** — walk only the outgoing CSR rows of the neurons
//!    that fired last tick, accumulating drive into a *fire-candidate
//!    list* (the touched targets, plus externally injected neurons);
//! 2. **update** — step only the candidates: each one first *lazily
//!    catches up* the leak/refractory ticks it slept through, then
//!    integrates this tick's drive; the ones that cross threshold form
//!    the tick's *fire queue* (sorted by index — the canonical order);
//! 3. **plasticity** — pairwise STDP on the touched synapses only,
//!    driven by the *fire ledger* (last-fire times): potentiation over
//!    each firing neuron's incoming edges, depression over its outgoing
//!    edges, quantized to PCM programming pulses;
//! 4. **ledger** — record the queue's fire times and swap it in as the
//!    next tick's propagation source.
//!
//! Quiet neurons cost **zero** work per tick. A neuron that slept `k`
//! ticks replays exactly `k` zero-input [`lif_update`] steps when next
//! touched, so the engine is *bit-identical* to an eager dense stepper
//! — and the replay loop exits early once the state reaches the exact
//! fixed point (`v == +0.0`, not refractory), which every spiked neuron
//! reaches after its refractory window.
//!
//! Determinism: results are a pure function of the spec and input
//! schedule, never of [`EventNet::threads`]. Workers own contiguous
//! target ranges, every worker walks the fire queue in the same sorted
//! order, and each target's drive therefore accumulates in ascending
//! source order regardless of the partition — the same order the dense
//! baseline uses.
//!
//! [`DenseNet`] is the matched O(N·M) baseline: same spec, same
//! semantics, eager leak and a dense weight matrix — the engine the
//! ISSUE's speedup numbers are measured against.

use crate::neuron::lif_update;
use crate::stdp::StdpRule;
use crate::synapse::PcmSynapse;
use neuropulsim_linalg::parallel::split_seed;
use neuropulsim_photonics::pcm::PcmMaterial;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shared PCM weight model for a whole synapse population: one weight
/// per quantized level plus per-transition programming costs, all
/// derived from the ground-truth [`PcmSynapse`] material model.
///
/// A [`SynapseArray`] stores one byte of level per edge and reads
/// weights out of this table, so a million-synapse population pays the
/// complex-index evaluation only `levels` times, not per edge.
#[derive(Debug, Clone, PartialEq)]
pub struct PcmWeightTable {
    material: PcmMaterial,
    levels: u32,
    weights: Vec<f64>,
    /// Energy \[J\] of a one-level depression (`l -> l + 1`).
    depress_energy: Vec<f64>,
    /// Energy \[J\] of a one-level potentiation (`l -> l - 1`, indexed
    /// by the *starting* level; entry 0 is unused).
    potentiate_energy: Vec<f64>,
    depress_pulses: Vec<u64>,
    potentiate_pulses: Vec<u64>,
}

impl PcmWeightTable {
    /// Builds the table by walking a probe [`PcmSynapse`] through every
    /// level, so weights and per-step programming costs match the cell
    /// model exactly.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is outside `[2, 256]` (edge levels are stored
    /// as `u8`).
    pub fn new(material: PcmMaterial, levels: u32) -> Self {
        assert!(
            (2..=256).contains(&levels),
            "levels {levels} outside [2, 256]"
        );
        let mut probe = PcmSynapse::with_config(material, levels);
        let mut weights = Vec::with_capacity(levels as usize);
        let mut depress_energy = vec![0.0; levels as usize];
        let mut depress_pulses = vec![0u64; levels as usize];
        weights.push(probe.weight());
        for l in 0..levels as usize - 1 {
            let (e0, p0) = (probe.programming_energy(), probe.pulse_count());
            probe.depress();
            weights.push(probe.weight());
            depress_energy[l] = probe.programming_energy() - e0;
            depress_pulses[l] = probe.pulse_count() - p0;
        }
        let mut potentiate_energy = vec![0.0; levels as usize];
        let mut potentiate_pulses = vec![0u64; levels as usize];
        for l in (1..levels as usize).rev() {
            let (e0, p0) = (probe.programming_energy(), probe.pulse_count());
            probe.potentiate();
            potentiate_energy[l] = probe.programming_energy() - e0;
            potentiate_pulses[l] = probe.pulse_count() - p0;
        }
        PcmWeightTable {
            material,
            levels,
            weights,
            depress_energy,
            potentiate_energy,
            depress_pulses,
            potentiate_pulses,
        }
    }

    /// The material the table was built for.
    pub fn material(&self) -> PcmMaterial {
        self.material
    }

    /// Number of programmable levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Weight of a level (0 = amorphous = strongest).
    pub fn weight(&self, level: u8) -> f64 {
        self.weights[level as usize]
    }

    /// The whole per-level weight grid.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Per-level weights after `elapsed_s` seconds of retention drift
    /// with coefficient `nu` — each level's cell drifts off its
    /// quantized state exactly as [`PcmSynapse::apply_drift`] would.
    pub fn drifted_weights(&self, elapsed_s: f64, nu: f64) -> Vec<f64> {
        (0..self.levels)
            .map(|l| {
                let mut s = PcmSynapse::with_config(self.material, self.levels);
                for _ in 0..l {
                    s.depress();
                }
                s.apply_drift(elapsed_s, nu);
                s.weight()
            })
            .collect()
    }
}

/// Flat CSR synapse storage indexed by source neuron, with a CSC
/// mirror for the potentiation walk, level-quantized PCM weights and
/// programming-cost accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SynapseArray {
    neurons: usize,
    /// CSR row offsets by source: edges of source `s` live at
    /// `offsets[s]..offsets[s + 1]`.
    offsets: Vec<u32>,
    /// Target neuron per edge, ascending within each row.
    targets: Vec<u32>,
    /// Quantized PCM level per edge (0 = strongest weight).
    levels: Vec<u8>,
    /// Cached weight per edge (`table.weight(level)`, or a drifted
    /// value until the edge is next reprogrammed).
    weights: Vec<f64>,
    /// CSC column offsets by target.
    in_offsets: Vec<u32>,
    /// Source neuron per incoming edge, ascending within each column.
    in_sources: Vec<u32>,
    /// CSR edge index of each incoming edge.
    in_edges: Vec<u32>,
    table: PcmWeightTable,
    programming_energy: f64,
    programming_pulses: u64,
}

impl SynapseArray {
    /// Builds the array from an edge list. Self-loops and duplicate
    /// edges are dropped; `init_levels` assigns the starting level per
    /// *surviving* edge in `(source, target)`-sorted order (shorter
    /// slices repeat cyclically, an empty slice means level 0).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn new(
        neurons: usize,
        edges: &[(u32, u32)],
        init_levels: &[u8],
        table: PcmWeightTable,
    ) -> Self {
        let mut sorted: Vec<(u32, u32)> = edges
            .iter()
            .copied()
            .filter(|&(s, t)| s != t)
            .inspect(|&(s, t)| {
                assert!(
                    (s as usize) < neurons && (t as usize) < neurons,
                    "edge ({s}, {t}) out of range for {neurons} neurons"
                );
            })
            .collect();
        sorted.sort_unstable();
        sorted.dedup();
        let count = sorted.len();
        let max_level = (table.levels() - 1) as u8;

        let mut offsets = vec![0u32; neurons + 1];
        let mut targets = Vec::with_capacity(count);
        let mut levels = Vec::with_capacity(count);
        let mut weights = Vec::with_capacity(count);
        for (e, &(s, t)) in sorted.iter().enumerate() {
            offsets[s as usize + 1] += 1;
            targets.push(t);
            let level = if init_levels.is_empty() {
                0
            } else {
                init_levels[e % init_levels.len()].min(max_level)
            };
            levels.push(level);
            weights.push(table.weight(level));
        }
        for s in 0..neurons {
            offsets[s + 1] += offsets[s];
        }

        // CSC mirror: counting sort by target keeps sources ascending
        // within each column because the edge scan is source-ordered.
        let mut in_offsets = vec![0u32; neurons + 1];
        for &t in &targets {
            in_offsets[t as usize + 1] += 1;
        }
        for t in 0..neurons {
            in_offsets[t + 1] += in_offsets[t];
        }
        let mut cursor: Vec<u32> = in_offsets[..neurons].to_vec();
        let mut in_sources = vec![0u32; count];
        let mut in_edges = vec![0u32; count];
        for (e, &(s, t)) in sorted.iter().enumerate() {
            let slot = cursor[t as usize] as usize;
            in_sources[slot] = s;
            in_edges[slot] = e as u32;
            cursor[t as usize] += 1;
        }

        SynapseArray {
            neurons,
            offsets,
            targets,
            levels,
            weights,
            in_offsets,
            in_sources,
            in_edges,
            table,
            programming_energy: 0.0,
            programming_pulses: 0,
        }
    }

    /// Number of neurons the array spans.
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Number of synapses.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Outgoing row of `source`: `(targets, weights)`, targets
    /// ascending.
    pub fn row(&self, source: u32) -> (&[u32], &[f64]) {
        let a = self.offsets[source as usize] as usize;
        let b = self.offsets[source as usize + 1] as usize;
        (&self.targets[a..b], &self.weights[a..b])
    }

    /// Incoming column of `target`: `(sources, edge indices)`, sources
    /// ascending.
    pub fn incoming(&self, target: u32) -> (&[u32], &[u32]) {
        let a = self.in_offsets[target as usize] as usize;
        let b = self.in_offsets[target as usize + 1] as usize;
        (&self.in_sources[a..b], &self.in_edges[a..b])
    }

    /// Current weight of edge `e`.
    pub fn weight(&self, e: u32) -> f64 {
        self.weights[e as usize]
    }

    /// Current level of edge `e`.
    pub fn level(&self, e: u32) -> u8 {
        self.levels[e as usize]
    }

    /// All cached edge weights, CSR order.
    pub fn weights_flat(&self) -> &[f64] {
        &self.weights
    }

    /// All edge levels, CSR order.
    pub fn levels_flat(&self) -> &[u8] {
        &self.levels
    }

    /// The shared weight table.
    pub fn table(&self) -> &PcmWeightTable {
        &self.table
    }

    /// Total programming energy spent on plasticity so far \[J\].
    pub fn programming_energy(&self) -> f64 {
        self.programming_energy
    }

    /// Total programming pulses applied so far.
    pub fn programming_pulses(&self) -> u64 {
        self.programming_pulses
    }

    /// Applies `steps` signed plasticity steps to edge `e` (positive
    /// potentiates, matching [`PcmSynapse::apply_steps`]), walking one
    /// level at a time so saturation and per-step programming costs
    /// match the cell model exactly. Reprogramming snaps a drifted
    /// weight back onto the quantized grid.
    pub fn apply_steps(&mut self, e: u32, steps: i32) {
        if steps == 0 {
            return;
        }
        let e = e as usize;
        let mut level = self.levels[e];
        let max_level = (self.table.levels - 1) as u8;
        for _ in 0..steps.unsigned_abs() {
            if steps > 0 {
                if level == 0 {
                    break;
                }
                level -= 1;
                self.programming_energy += self.table.potentiate_energy[level as usize + 1];
                self.programming_pulses += self.table.potentiate_pulses[level as usize + 1];
            } else {
                if level == max_level {
                    break;
                }
                self.programming_energy += self.table.depress_energy[level as usize];
                self.programming_pulses += self.table.depress_pulses[level as usize];
                level += 1;
            }
        }
        self.levels[e] = level;
        self.weights[e] = self.table.weights[level as usize];
    }

    /// Applies retention drift to every synapse at once: each edge's
    /// cached weight moves to its level's drifted value (the per-level
    /// cells age identically) until the edge is next reprogrammed.
    pub fn apply_drift(&mut self, elapsed_s: f64, nu: f64) {
        let drifted = self.table.drifted_weights(elapsed_s, nu);
        for (w, &l) in self.weights.iter_mut().zip(&self.levels) {
            *w = drifted[l as usize];
        }
    }
}

/// A complete, engine-independent network description: both engines
/// (and the oracle reference) built from the same spec start
/// bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSpec {
    /// Neuron count.
    pub neurons: usize,
    /// Membrane time constant (must exceed `dt` so the leak is a
    /// contraction and quiet neurons can never fire).
    pub tau: f64,
    /// Firing threshold (must be positive).
    pub threshold: f64,
    /// Refractory period, in time units.
    pub refractory: f64,
    /// Timestep length.
    pub dt: f64,
    /// PCM material of the synapses.
    pub material: PcmMaterial,
    /// Programmable levels per synapse.
    pub levels: u32,
    /// STDP window.
    pub rule: StdpRule,
    /// Enable plasticity.
    pub plastic: bool,
    /// Directed edges `(source, target)`.
    pub edges: Vec<(u32, u32)>,
    /// Initial level per edge (see [`SynapseArray::new`]).
    pub init_levels: Vec<u8>,
}

impl NetSpec {
    /// A random sparse network: every neuron gets `fanout` outgoing
    /// synapses to distinct other neurons, with random initial levels.
    /// Edge generation derives per-source RNGs via
    /// [`split_seed`], so the graph is a pure function of `(seed,
    /// neurons, fanout, levels)`.
    ///
    /// # Panics
    ///
    /// Panics if `neurons < 2` or `fanout >= neurons`.
    pub fn random(seed: u64, neurons: usize, fanout: usize, levels: u32, plastic: bool) -> Self {
        assert!(neurons >= 2, "need at least 2 neurons");
        assert!(fanout < neurons, "fanout {fanout} >= neurons {neurons}");
        let mut edges = Vec::with_capacity(neurons * fanout);
        let mut init_levels = Vec::with_capacity(neurons * fanout);
        for src in 0..neurons {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, src as u64));
            let mut seen = std::collections::HashSet::with_capacity(fanout);
            while seen.len() < fanout {
                let tgt = rng.gen_range(0..neurons as u32);
                if tgt as usize != src && seen.insert(tgt) {
                    edges.push((src as u32, tgt));
                    init_levels.push(rng.gen_range(0..levels) as u8);
                }
            }
        }
        NetSpec {
            neurons,
            tau: 8.0,
            threshold: 1.0,
            refractory: 2.0,
            dt: 0.5,
            material: PcmMaterial::Gst225,
            levels,
            rule: StdpRule::default(),
            plastic,
            edges,
            init_levels,
        }
    }

    fn validate(&self) {
        assert!(self.neurons >= 1, "empty network");
        assert!(self.neurons <= u32::MAX as usize, "neuron index overflow");
        assert!(self.dt > 0.0, "dt must be positive");
        assert!(
            self.tau > self.dt,
            "tau {} must exceed dt {} (leak must contract)",
            self.tau,
            self.dt
        );
        assert!(self.threshold > 0.0, "threshold must be positive");
        assert!(self.refractory >= 0.0, "refractory must be non-negative");
    }
}

/// Pairwise STDP over the touched synapses of one tick's fire queue,
/// shared verbatim by [`EventNet`] and [`DenseNet`].
///
/// Canonical order (what the oracle reference also implements): first a
/// *potentiation phase* — for each firing neuron in queue order, every
/// incoming edge whose source has fired pairs `(t - t_pre)` — then a
/// *depression phase* — for each firing neuron, every outgoing edge
/// whose target has fired pairs `(t_post - t)`. The fire ledger is
/// updated only after both phases, so same-tick spikes pair against
/// strictly earlier partners.
fn stdp_tick(
    syn: &mut SynapseArray,
    fired: &[u32],
    last_fire: &[i64],
    t: u32,
    dt: f64,
    rule: &StdpRule,
) {
    let levels = syn.table().levels();
    for &n in fired {
        let (sources, edges) = syn.incoming(n);
        // Split borrows: collect the (edge, steps) pairs before the
        // mutable apply; columns are short (fan-in) so this stays cheap.
        let pending: Vec<(u32, i32)> = sources
            .iter()
            .zip(edges)
            .filter_map(|(&i, &e)| {
                let tp = last_fire[i as usize];
                (tp >= 0).then(|| {
                    let delta = (t as f64 - tp as f64) * dt;
                    (e, rule.steps(delta, levels))
                })
            })
            .collect();
        for (e, steps) in pending {
            syn.apply_steps(e, steps);
        }
    }
    for &n in fired {
        let (a, b) = (
            syn.offsets[n as usize] as usize,
            syn.offsets[n as usize + 1] as usize,
        );
        for e in a..b {
            let j = syn.targets[e];
            let tp = last_fire[j as usize];
            if tp >= 0 {
                let delta = (tp as f64 - t as f64) * dt;
                let steps = rule.steps(delta, levels);
                syn.apply_steps(e as u32, steps);
            }
        }
    }
}

/// Per-tick activity counters of the event-driven engine — the
/// evidence that cost scales with firing, not with `N * M`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickStats {
    /// Synaptic events delivered (fire-queue rows walked, edge by
    /// edge).
    pub events_delivered: u64,
    /// Candidate neurons stepped.
    pub candidates: u64,
    /// Lazy catch-up steps replayed.
    pub catch_up_steps: u64,
    /// Neurons that fired.
    pub fired: u64,
}

impl TickStats {
    fn add(&mut self, other: TickStats) {
        self.events_delivered += other.events_delivered;
        self.candidates += other.candidates;
        self.catch_up_steps += other.catch_up_steps;
        self.fired += other.fired;
    }
}

/// The event-driven engine. See the module docs for the pipeline; the
/// public contract is:
///
/// - [`EventNet::tick`] costs `O(fired * fanout + candidates)`, never
///   `O(neurons)`;
/// - results are bit-identical to [`DenseNet`] and thread-count
///   invariant;
/// - [`EventNet::flush`] settles every neuron to the current tick so
///   whole-state comparisons are meaningful.
#[derive(Debug, Clone)]
pub struct EventNet {
    tau: f64,
    threshold: f64,
    refractory: f64,
    dt: f64,
    rule: StdpRule,
    plastic: bool,
    /// Worker count for propagation + candidate update (1 = serial).
    /// Any value yields bit-identical results.
    pub threads: usize,
    syn: SynapseArray,
    v: Vec<f64>,
    refr_left: Vec<f64>,
    /// Ticks already applied to each neuron's state (lazy-leak clock).
    updated_through: Vec<u32>,
    drive: Vec<f64>,
    /// `stamp[j] == tick + 1` marks `drive[j]` as valid this tick.
    stamp: Vec<u32>,
    /// Fire ledger: last fire tick per neuron (-1 = never).
    last_fire: Vec<i64>,
    fired_prev: Vec<u32>,
    tick: u32,
    stats: TickStats,
    totals: TickStats,
}

/// One worker's mutable view of the neuron state, split at contiguous
/// index-range boundaries so scoped threads can own disjoint targets.
struct RangeView<'a> {
    lo: usize,
    hi: usize,
    v: &'a mut [f64],
    refr_left: &'a mut [f64],
    updated_through: &'a mut [u32],
    drive: &'a mut [f64],
    stamp: &'a mut [u32],
}

/// Propagate + update for one target range. Returns the sorted fired
/// list for the range and its activity counters.
#[allow(clippy::too_many_arguments)]
fn tick_range(
    view: &mut RangeView<'_>,
    syn: &SynapseArray,
    fired_prev: &[u32],
    injections: &[(u32, f64)],
    t: u32,
    tau: f64,
    threshold: f64,
    refractory: f64,
    dt: f64,
) -> (Vec<u32>, TickStats) {
    let (lo, hi) = (view.lo, view.hi);
    let mut stats = TickStats::default();
    let mut touched: Vec<u32> = Vec::new();
    // 1. Propagation: walk each fired row's sub-range inside [lo, hi).
    //    Queue order is ascending, so each target's drive accumulates
    //    in ascending-source order for ANY partition.
    for &src in fired_prev {
        let (tgts, ws) = syn.row(src);
        let a = tgts.partition_point(|&x| (x as usize) < lo);
        let b = a + tgts[a..].partition_point(|&x| (x as usize) < hi);
        for k in a..b {
            let jl = tgts[k] as usize - lo;
            if view.stamp[jl] != t + 1 {
                view.stamp[jl] = t + 1;
                view.drive[jl] = 0.0;
                touched.push(tgts[k]);
            }
            view.drive[jl] += ws[k];
            stats.events_delivered += 1;
        }
    }
    // 2. External injections, in schedule order.
    for &(j, amount) in injections {
        let j = j as usize;
        if j < lo || j >= hi {
            continue;
        }
        let jl = j - lo;
        if view.stamp[jl] != t + 1 {
            view.stamp[jl] = t + 1;
            view.drive[jl] = 0.0;
            touched.push(j as u32);
        }
        view.drive[jl] += amount;
    }
    // 3. Candidate update: lazy catch-up, then the driven step.
    touched.sort_unstable();
    let mut fired = Vec::new();
    for &ju in &touched {
        let jl = ju as usize - lo;
        let mut k = view.updated_through[jl];
        while k < t {
            // Exact fixed point: +0.0 and out of refractory means every
            // remaining zero-input step is the identity.
            if view.v[jl].to_bits() == 0 && view.refr_left[jl] <= 0.0 {
                break;
            }
            lif_update(
                &mut view.v[jl],
                &mut view.refr_left[jl],
                tau,
                threshold,
                refractory,
                0.0,
                dt,
            );
            stats.catch_up_steps += 1;
            k += 1;
        }
        let f = lif_update(
            &mut view.v[jl],
            &mut view.refr_left[jl],
            tau,
            threshold,
            refractory,
            view.drive[jl],
            dt,
        );
        view.updated_through[jl] = t + 1;
        stats.candidates += 1;
        if f {
            fired.push(ju);
        }
    }
    stats.fired = fired.len() as u64;
    (fired, stats)
}

impl EventNet {
    /// Builds the engine from a spec.
    pub fn new(spec: &NetSpec) -> Self {
        spec.validate();
        let table = PcmWeightTable::new(spec.material, spec.levels);
        let syn = SynapseArray::new(spec.neurons, &spec.edges, &spec.init_levels, table);
        let n = spec.neurons;
        EventNet {
            tau: spec.tau,
            threshold: spec.threshold,
            refractory: spec.refractory,
            dt: spec.dt,
            rule: spec.rule,
            plastic: spec.plastic,
            threads: 1,
            syn,
            v: vec![0.0; n],
            refr_left: vec![0.0; n],
            updated_through: vec![0; n],
            drive: vec![0.0; n],
            stamp: vec![0; n],
            last_fire: vec![-1; n],
            fired_prev: Vec::new(),
            tick: 0,
            stats: TickStats::default(),
            totals: TickStats::default(),
        }
    }

    /// Neuron count.
    pub fn neurons(&self) -> usize {
        self.v.len()
    }

    /// Current tick.
    pub fn tick_count(&self) -> u32 {
        self.tick
    }

    /// The synapse array.
    pub fn synapses(&self) -> &SynapseArray {
        &self.syn
    }

    /// Mutable synapse access (drift scenarios).
    pub fn synapses_mut(&mut self) -> &mut SynapseArray {
        &mut self.syn
    }

    /// Counters of the most recent tick.
    pub fn last_tick_stats(&self) -> TickStats {
        self.stats
    }

    /// Counters accumulated since construction.
    pub fn total_stats(&self) -> TickStats {
        self.totals
    }

    /// Fire ledger: last fire tick per neuron (-1 = never fired).
    pub fn fire_ledger(&self) -> &[i64] {
        &self.last_fire
    }

    /// Membrane potential of neuron `j` *as of the last tick it was
    /// touched* — call [`EventNet::flush`] first for a settled view.
    pub fn potential(&self, j: usize) -> f64 {
        self.v[j]
    }

    /// All membrane potentials (see [`EventNet::potential`]).
    pub fn potentials(&self) -> &[f64] {
        &self.v
    }

    /// Advances one tick: propagates last tick's fire queue through the
    /// CSR rows, integrates external `injections` (pairs of neuron
    /// index and drive), steps the candidates and applies STDP. Returns
    /// the neurons that fired this tick, ascending.
    pub fn tick(&mut self, injections: &[(u32, f64)]) -> &[u32] {
        let t = self.tick;
        let n = self.v.len();
        let workers = self.threads.max(1).min(n);
        let mut fired: Vec<u32>;
        let mut stats = TickStats::default();
        if workers <= 1 {
            let mut view = RangeView {
                lo: 0,
                hi: n,
                v: &mut self.v,
                refr_left: &mut self.refr_left,
                updated_through: &mut self.updated_through,
                drive: &mut self.drive,
                stamp: &mut self.stamp,
            };
            let (f, s) = tick_range(
                &mut view,
                &self.syn,
                &self.fired_prev,
                injections,
                t,
                self.tau,
                self.threshold,
                self.refractory,
                self.dt,
            );
            fired = f;
            stats.add(s);
        } else {
            // Contiguous ranges, first `rem` workers one item larger —
            // the same split rule as linalg::parallel::par_chunks_mut.
            let base = n / workers;
            let rem = n % workers;
            let mut views: Vec<RangeView<'_>> = Vec::with_capacity(workers);
            {
                let mut v_rest: &mut [f64] = &mut self.v;
                let mut r_rest: &mut [f64] = &mut self.refr_left;
                let mut u_rest: &mut [u32] = &mut self.updated_through;
                let mut d_rest: &mut [f64] = &mut self.drive;
                let mut s_rest: &mut [u32] = &mut self.stamp;
                let mut start = 0usize;
                for w in 0..workers {
                    let count = base + usize::from(w < rem);
                    let (v_c, v_t) = v_rest.split_at_mut(count);
                    let (r_c, r_t) = r_rest.split_at_mut(count);
                    let (u_c, u_t) = u_rest.split_at_mut(count);
                    let (d_c, d_t) = d_rest.split_at_mut(count);
                    let (s_c, s_t) = s_rest.split_at_mut(count);
                    v_rest = v_t;
                    r_rest = r_t;
                    u_rest = u_t;
                    d_rest = d_t;
                    s_rest = s_t;
                    views.push(RangeView {
                        lo: start,
                        hi: start + count,
                        v: v_c,
                        refr_left: r_c,
                        updated_through: u_c,
                        drive: d_c,
                        stamp: s_c,
                    });
                    start += count;
                }
            }
            let syn = &self.syn;
            let fired_prev = &self.fired_prev;
            let (tau, threshold, refractory, dt) =
                (self.tau, self.threshold, self.refractory, self.dt);
            let mut parts: Vec<(Vec<u32>, TickStats)> = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for mut view in views {
                    handles.push(scope.spawn(move || {
                        tick_range(
                            &mut view, syn, fired_prev, injections, t, tau, threshold, refractory,
                            dt,
                        )
                    }));
                }
                for h in handles {
                    parts.push(h.join().expect("sparse tick worker panicked"));
                }
            });
            // Ranges are ascending and each part is sorted, so plain
            // concatenation yields the canonical ascending fire queue.
            fired = Vec::new();
            for (f, s) in parts {
                fired.extend(f);
                stats.add(s);
            }
        }
        // 4. Plasticity on the touched synapses, then the ledger.
        if self.plastic && !fired.is_empty() {
            stdp_tick(
                &mut self.syn,
                &fired,
                &self.last_fire,
                t,
                self.dt,
                &self.rule,
            );
        }
        for &j in &fired {
            self.last_fire[j as usize] = t as i64;
        }
        self.stats = stats;
        self.totals.add(stats);
        self.fired_prev = fired;
        self.tick = t + 1;
        &self.fired_prev
    }

    /// Replays every neuron's outstanding leak/refractory ticks so the
    /// whole state vector reflects the current tick (used before
    /// whole-state comparisons; quiet production runs never need it).
    pub fn flush(&mut self) {
        let t = self.tick;
        for j in 0..self.v.len() {
            let mut k = self.updated_through[j];
            while k < t {
                if self.v[j].to_bits() == 0 && self.refr_left[j] <= 0.0 {
                    break;
                }
                lif_update(
                    &mut self.v[j],
                    &mut self.refr_left[j],
                    self.tau,
                    self.threshold,
                    self.refractory,
                    0.0,
                    self.dt,
                );
                k += 1;
            }
            self.updated_through[j] = t;
        }
    }
}

/// The matched dense baseline: identical semantics, eager leak, and a
/// dense `N x N` weight matrix walked row by row every tick —
/// `O(N * M)` work regardless of activity. Bit-identical to
/// [`EventNet`] by construction (additions of `+0.0` from absent or
/// silent edges are exact identities, and both engines accumulate each
/// target's drive in ascending source order).
#[derive(Debug, Clone)]
pub struct DenseNet {
    tau: f64,
    threshold: f64,
    refractory: f64,
    dt: f64,
    rule: StdpRule,
    plastic: bool,
    syn: SynapseArray,
    /// Source-major dense weights: `w_dense[src * n + tgt]`.
    w_dense: Vec<f64>,
    /// 1.0 where the neuron fired last tick, else 0.0.
    fired_mask: Vec<f64>,
    v: Vec<f64>,
    refr_left: Vec<f64>,
    drive: Vec<f64>,
    last_fire: Vec<i64>,
    fired_prev: Vec<u32>,
    tick: u32,
}

impl DenseNet {
    /// Builds the dense engine from the same spec as [`EventNet`].
    pub fn new(spec: &NetSpec) -> Self {
        spec.validate();
        let table = PcmWeightTable::new(spec.material, spec.levels);
        let syn = SynapseArray::new(spec.neurons, &spec.edges, &spec.init_levels, table);
        let n = spec.neurons;
        let mut w_dense = vec![0.0; n * n];
        for s in 0..n as u32 {
            let (tgts, ws) = syn.row(s);
            for (k, &t) in tgts.iter().enumerate() {
                w_dense[s as usize * n + t as usize] = ws[k];
            }
        }
        DenseNet {
            tau: spec.tau,
            threshold: spec.threshold,
            refractory: spec.refractory,
            dt: spec.dt,
            rule: spec.rule,
            plastic: spec.plastic,
            syn,
            w_dense,
            fired_mask: vec![0.0; n],
            v: vec![0.0; n],
            refr_left: vec![0.0; n],
            drive: vec![0.0; n],
            last_fire: vec![-1; n],
            fired_prev: Vec::new(),
            tick: 0,
        }
    }

    /// Neuron count.
    pub fn neurons(&self) -> usize {
        self.v.len()
    }

    /// The synapse array (shared STDP path with the sparse engine).
    pub fn synapses(&self) -> &SynapseArray {
        &self.syn
    }

    /// All membrane potentials (always settled — the dense engine steps
    /// every neuron every tick).
    pub fn potentials(&self) -> &[f64] {
        &self.v
    }

    /// Fire ledger: last fire tick per neuron (-1 = never fired).
    pub fn fire_ledger(&self) -> &[i64] {
        &self.last_fire
    }

    /// Advances one tick with the dense `O(N * M)` sweep. Returns the
    /// fired neurons, ascending.
    pub fn tick(&mut self, injections: &[(u32, f64)]) -> &[u32] {
        let t = self.tick;
        let n = self.v.len();
        // Propagation: every dense row, every tick.
        self.drive.fill(0.0);
        for s in 0..n {
            let f = self.fired_mask[s];
            let row = &self.w_dense[s * n..(s + 1) * n];
            for (d, &w) in self.drive.iter_mut().zip(row) {
                *d += w * f;
            }
        }
        for &(j, amount) in injections {
            self.drive[j as usize] += amount;
        }
        // Eager update of every neuron.
        let mut fired = Vec::new();
        for j in 0..n {
            let f = lif_update(
                &mut self.v[j],
                &mut self.refr_left[j],
                self.tau,
                self.threshold,
                self.refractory,
                self.drive[j],
                self.dt,
            );
            if f {
                fired.push(j as u32);
            }
        }
        if self.plastic && !fired.is_empty() {
            stdp_tick(
                &mut self.syn,
                &fired,
                &self.last_fire,
                t,
                self.dt,
                &self.rule,
            );
            // Mirror the touched rows/columns back into the dense matrix.
            for &m in &fired {
                let (sources, edges) = self.syn.incoming(m);
                for (&i, &e) in sources.iter().zip(edges) {
                    self.w_dense[i as usize * n + m as usize] = self.syn.weight(e);
                }
                let (tgts, ws) = self.syn.row(m);
                for (k, &j) in tgts.iter().enumerate() {
                    self.w_dense[m as usize * n + j as usize] = ws[k];
                }
            }
        }
        for &j in &self.fired_prev {
            self.fired_mask[j as usize] = 0.0;
        }
        for &j in &fired {
            self.last_fire[j as usize] = t as i64;
            self.fired_mask[j as usize] = 1.0;
        }
        self.fired_prev = fired;
        self.tick = t + 1;
        &self.fired_prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(plastic: bool) -> NetSpec {
        let mut spec = NetSpec::random(11, 24, 4, 16, plastic);
        spec.threshold = 0.9;
        spec
    }

    /// A deterministic injection schedule that reliably elicits spikes.
    fn schedule(spec: &NetSpec, ticks: usize, seed: u64) -> Vec<Vec<(u32, f64)>> {
        let kick = spec.threshold / spec.dt * 1.3;
        (0..ticks)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(split_seed(seed, t as u64));
                (0..3)
                    .map(|_| (rng.gen_range(0..spec.neurons as u32), kick))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn weight_table_matches_synapse_model() {
        let table = PcmWeightTable::new(PcmMaterial::Gst225, 16);
        let mut s = PcmSynapse::with_config(PcmMaterial::Gst225, 16);
        for l in 0..16u8 {
            assert_eq!(table.weight(l), s.weight(), "level {l}");
            s.depress();
        }
    }

    #[test]
    fn synapse_array_energy_matches_synapse_sequence() {
        let table = PcmWeightTable::new(PcmMaterial::Gst225, 16);
        let edges = [(0u32, 1u32)];
        let mut arr = SynapseArray::new(2, &edges, &[5], table);
        let mut s = PcmSynapse::with_config(PcmMaterial::Gst225, 16);
        s.apply_steps(-5);
        let (e0, p0) = (s.programming_energy(), s.pulse_count());
        for steps in [-3, 2, -20, 40, 1] {
            arr.apply_steps(0, steps);
            s.apply_steps(steps);
            assert_eq!(arr.level(0), s.level() as u8, "steps {steps}");
            assert_eq!(arr.weight(0), s.weight(), "steps {steps}");
        }
        // Energy is summed from precomputed per-transition deltas, so it
        // can differ from the cell's running total in the last ulp.
        let expected = s.programming_energy() - e0;
        assert!(
            (arr.programming_energy() - expected).abs() <= 1e-12 * expected,
            "energy {} vs {expected}",
            arr.programming_energy()
        );
        assert_eq!(arr.programming_pulses(), s.pulse_count() - p0);
    }

    #[test]
    fn csr_and_csc_are_consistent() {
        let spec = tiny_spec(false);
        let table = PcmWeightTable::new(spec.material, spec.levels);
        let arr = SynapseArray::new(spec.neurons, &spec.edges, &spec.init_levels, table);
        assert_eq!(arr.edge_count(), spec.neurons * 4);
        let mut seen = 0usize;
        for t in 0..spec.neurons as u32 {
            let (sources, edges) = arr.incoming(t);
            assert!(sources.windows(2).all(|w| w[0] < w[1]), "sources sorted");
            for (&s, &e) in sources.iter().zip(edges) {
                let (tgts, _) = arr.row(s);
                assert!(tgts.contains(&t), "edge {e} missing from row {s}");
                seen += 1;
            }
        }
        assert_eq!(seen, arr.edge_count());
    }

    #[test]
    fn event_and_dense_engines_are_bit_identical() {
        for plastic in [false, true] {
            let spec = tiny_spec(plastic);
            let schedule = schedule(&spec, 60, 3);
            let mut ev = EventNet::new(&spec);
            let mut dn = DenseNet::new(&spec);
            let mut any_fired = false;
            for inj in &schedule {
                let fe: Vec<u32> = ev.tick(inj).to_vec();
                let fd: Vec<u32> = dn.tick(inj).to_vec();
                assert_eq!(fe, fd, "fire queues diverged (plastic={plastic})");
                any_fired |= !fe.is_empty();
            }
            assert!(any_fired, "schedule must elicit spikes");
            ev.flush();
            for j in 0..spec.neurons {
                assert_eq!(
                    ev.potentials()[j].to_bits(),
                    dn.potentials()[j].to_bits(),
                    "potential bits differ at {j}"
                );
            }
            assert_eq!(ev.fire_ledger(), dn.fire_ledger());
            assert_eq!(
                ev.synapses().levels_flat(),
                dn.synapses().levels_flat(),
                "levels diverged"
            );
            for e in 0..ev.synapses().edge_count() as u32 {
                assert_eq!(
                    ev.synapses().weight(e).to_bits(),
                    dn.synapses().weight(e).to_bits()
                );
            }
        }
    }

    #[test]
    fn sparse_tick_is_thread_count_invariant() {
        let spec = tiny_spec(true);
        let schedule = schedule(&spec, 50, 9);
        let run = |threads: usize| {
            let mut net = EventNet::new(&spec);
            net.threads = threads;
            let mut raster = Vec::new();
            for inj in &schedule {
                raster.push(net.tick(inj).to_vec());
            }
            net.flush();
            let bits: Vec<u64> = net.potentials().iter().map(|v| v.to_bits()).collect();
            (raster, bits, net.synapses().levels_flat().to_vec())
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn quiet_neurons_cost_nothing() {
        let spec = tiny_spec(false);
        let mut net = EventNet::new(&spec);
        for _ in 0..10 {
            net.tick(&[]);
        }
        let s = net.total_stats();
        assert_eq!(s.events_delivered, 0);
        assert_eq!(s.candidates, 0);
        assert_eq!(s.catch_up_steps, 0);
    }

    #[test]
    fn plasticity_moves_weights_and_charges_energy() {
        let spec = tiny_spec(true);
        let schedule = schedule(&spec, 80, 5);
        let mut net = EventNet::new(&spec);
        let before = net.synapses().levels_flat().to_vec();
        for inj in &schedule {
            net.tick(inj);
        }
        assert_ne!(net.synapses().levels_flat(), &before[..], "no learning");
        assert!(net.synapses().programming_energy() > 0.0);
        assert!(net.synapses().programming_pulses() > 0);
    }

    #[test]
    fn drift_moves_cached_weights_until_reprogrammed() {
        let spec = tiny_spec(false);
        let mut net = EventNet::new(&spec);
        // Find an edge at a mid level so drift has room to move it.
        let e = (0..net.synapses().edge_count() as u32)
            .find(|&e| {
                let l = net.synapses().level(e);
                l > 0 && l < 15
            })
            .expect("mid-level edge");
        let clean = net.synapses().weight(e);
        net.synapses_mut().apply_drift(1e4, 0.02);
        let drifted = net.synapses().weight(e);
        assert_ne!(clean, drifted, "drift must move a mid-level weight");
        // Reprogramming snaps back onto the quantized grid.
        net.synapses_mut().apply_steps(e, -1);
        let l = net.synapses().level(e);
        assert_eq!(net.synapses().weight(e), net.synapses().table().weight(l));
    }

    #[test]
    fn random_spec_is_deterministic() {
        let a = NetSpec::random(5, 40, 6, 16, true);
        let b = NetSpec::random(5, 40, 6, 16, true);
        assert_eq!(a, b);
        let c = NetSpec::random(6, 40, 6, 16, true);
        assert_ne!(a.edges, c.edges);
    }
}

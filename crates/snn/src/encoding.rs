//! Spike encodings: turning analog feature vectors into spike trains for
//! the photonic SNN (sub-ns optical pulses in hardware).

/// A spike train on one channel: sorted spike times.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpikeTrain {
    times: Vec<f64>,
}

impl SpikeTrain {
    /// Creates an empty train.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a train from (unsorted) times.
    pub fn from_times(mut times: Vec<f64>) -> Self {
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite spike times"));
        SpikeTrain { times }
    }

    /// The sorted spike times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of spikes.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the train has no spikes.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Appends a spike (must be at or after the last spike).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded spike.
    pub fn push(&mut self, t: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "spike times must be non-decreasing");
        }
        self.times.push(t);
    }

    /// Number of spikes in `[t0, t1)`.
    pub fn count_in(&self, t0: f64, t1: f64) -> usize {
        self.times.iter().filter(|&&t| t >= t0 && t < t1).count()
    }

    /// Mean firing rate over `[0, duration)`.
    pub fn rate(&self, duration: f64) -> f64 {
        if duration <= 0.0 {
            return 0.0;
        }
        self.count_in(0.0, duration) as f64 / duration
    }
}

impl FromIterator<f64> for SpikeTrain {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        SpikeTrain::from_times(iter.into_iter().collect())
    }
}

/// Latency (time-to-first-spike) coding: larger values spike *earlier*.
///
/// A value `x in [0, 1]` maps to one spike at `t = t_max * (1 - x)`;
/// `x = 0` produces no spike.
///
/// # Panics
///
/// Panics if any value is outside `[0, 1]` or `t_max <= 0`.
///
/// # Examples
///
/// ```
/// use neuropulsim_snn::encoding::latency_encode;
///
/// let trains = latency_encode(&[1.0, 0.5, 0.0], 10.0);
/// assert_eq!(trains[0].times(), &[0.0]);
/// assert_eq!(trains[1].times(), &[5.0]);
/// assert!(trains[2].is_empty());
/// ```
pub fn latency_encode(values: &[f64], t_max: f64) -> Vec<SpikeTrain> {
    assert!(t_max > 0.0, "t_max must be positive");
    values
        .iter()
        .map(|&x| {
            assert!((0.0..=1.0).contains(&x), "values must be in [0, 1]");
            if x > 0.0 {
                SpikeTrain::from_times(vec![t_max * (1.0 - x)])
            } else {
                SpikeTrain::new()
            }
        })
        .collect()
}

/// Rate coding: value `x in [0, 1]` maps to a regular train of
/// `ceil(x * max_spikes)` evenly spaced spikes over `[0, duration)`.
///
/// # Panics
///
/// Panics if any value is outside `[0, 1]`, or `duration <= 0`.
pub fn rate_encode(values: &[f64], duration: f64, max_spikes: usize) -> Vec<SpikeTrain> {
    assert!(duration > 0.0, "duration must be positive");
    values
        .iter()
        .map(|&x| {
            assert!((0.0..=1.0).contains(&x), "values must be in [0, 1]");
            let count = (x * max_spikes as f64).ceil() as usize;
            let times: Vec<f64> = (0..count)
                .map(|k| duration * k as f64 / count.max(1) as f64)
                .collect();
            SpikeTrain::from_times(times)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_basics() {
        let mut t = SpikeTrain::new();
        assert!(t.is_empty());
        t.push(1.0);
        t.push(2.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.count_in(0.0, 1.5), 1);
        assert_eq!(t.count_in(0.0, 3.0), 2);
        assert!((t.rate(4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn push_rejects_out_of_order() {
        let mut t = SpikeTrain::from_times(vec![2.0]);
        t.push(1.0);
    }

    #[test]
    fn from_times_sorts() {
        let t = SpikeTrain::from_times(vec![3.0, 1.0, 2.0]);
        assert_eq!(t.times(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn latency_orders_by_value() {
        let trains = latency_encode(&[0.9, 0.3, 0.6], 10.0);
        let t0 = trains[0].times()[0];
        let t1 = trains[1].times()[0];
        let t2 = trains[2].times()[0];
        assert!(t0 < t2 && t2 < t1, "bigger value fires earlier");
    }

    #[test]
    fn rate_encode_scales_count() {
        let trains = rate_encode(&[1.0, 0.5, 0.0], 100.0, 10);
        assert_eq!(trains[0].len(), 10);
        assert_eq!(trains[1].len(), 5);
        assert_eq!(trains[2].len(), 0);
        // All spikes inside the window.
        assert_eq!(trains[0].count_in(0.0, 100.0), 10);
    }

    #[test]
    fn collect_from_iterator() {
        let t: SpikeTrain = [2.0, 1.0].into_iter().collect();
        assert_eq!(t.times(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn latency_rejects_out_of_range() {
        let _ = latency_encode(&[1.5], 10.0);
    }
}

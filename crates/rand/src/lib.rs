//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *exact* API subset it consumes: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`] and
//! [`rngs::mock::StepRng`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and
//! statistically solid for simulation workloads. Streams are *not*
//! bit-compatible with upstream `rand`; every consumer in this repo only
//! relies on determinism within one build, never on specific values.
//!
//! Keeping the module paths identical to upstream (`rand::Rng`,
//! `rand::rngs::StdRng`, …) lets the whole workspace switch back to the
//! real crate by flipping one line in the workspace `Cargo.toml`.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible generator APIs (never produced by the
/// generators in this shim; exists so `RngCore` signatures match).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random generator error")
    }
}

impl std::error::Error for Error {}

/// The low-level generator interface: raw words and byte fills.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A uniform double in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] from uniform raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // 53-bit grid including both endpoints.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo draw: bias is < 2^-64 * span, negligible for the
                // simulation-scale spans used in this workspace.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard seeding/stream-splitting mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would lock the generator at zero; SplitMix64
            // cannot produce four zero outputs in a row, but guard anyway.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::RngCore;

        /// A generator that counts up from `initial` by `increment` —
        /// upstream rand's `StepRng`, used for noiseless code paths.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a stepping generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let k: usize = rng.gen_range(0..7);
            assert!(k < 7);
            let j = rng.gen_range(3..=5u32);
            assert!((3..=5).contains(&j));
            let y = rng.gen_range(-0.25..=0.25f64);
            assert!((-0.25..=0.25).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_small_int_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values drawn: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn unit_f64_stays_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = StepRng::new(7, 3);
        assert_eq!(rng.next_u64(), 7);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 13);
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }

    #[test]
    fn trait_objects_and_reborrows_work() {
        // The workspace passes `&mut R` where `R: Rng + ?Sized`.
        fn takes_dyn(rng: &mut dyn RngCore) -> u64 {
            rng.next_u64()
        }
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let _ = takes_dyn(&mut rng);
        let _ = takes_generic(&mut rng);
    }
}
